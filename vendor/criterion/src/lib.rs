//! Offline stand-in for the subset of the `criterion` benchmark harness this
//! workspace uses: [`Criterion::benchmark_group`], the group configuration
//! builders, [`Bencher::iter`], [`BenchmarkId`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this harness performs a
//! wall-clock measurement: it warms up for `warm_up_time`, then runs timed
//! batches until `measurement_time` elapses (at least `sample_size`
//! iterations) and prints the mean, minimum and maximum iteration time.
//! `cargo bench` output therefore stays human-readable and comparable
//! across runs on the same machine, which is all the reproduction needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the function untimed before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target duration of the timed measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measures a benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Measures a benchmark function that borrows a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The stand-in reports per benchmark, so this is
    /// only a marker that mirrors criterion's API.)
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// The timing loop handed to the closure of a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    /// Times `f`, first warming up and then collecting samples until the
    /// measurement time and the sample-size floor are both satisfied.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(f());
        }
        let measure_start = Instant::now();
        while self.samples < self.sample_size as u64
            || measure_start.elapsed() < self.measurement_time
        {
            let t0 = Instant::now();
            black_box(f());
            let elapsed = t0.elapsed();
            self.samples += 1;
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.max = self.max.max(elapsed);
        }
    }

    fn report(&self, label: &str) {
        if self.samples == 0 {
            println!("{label:<50} (no samples)");
            return;
        }
        let mean = self.total / u32::try_from(self.samples).unwrap_or(u32::MAX).max(1);
        println!(
            "{label:<50} time: [{:>12.3?} {mean:>12.3?} {:>12.3?}]  ({} samples)",
            self.min, self.max, self.samples
        );
    }
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
