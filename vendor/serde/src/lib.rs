//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` (and `#[serde(skip)]` on a few
//! fields) but never actually serializes anything, so these derives expand
//! to nothing. The `serde` helper attribute is declared so the inert
//! field/variant attributes keep compiling.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive macro.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive macro.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
