//! Offline stand-in for the subset of `proptest` this workspace uses: the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, range and
//! `any::<T>()` strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike the real proptest this runner does **not** shrink failing inputs;
//! it samples each strategy from a generator seeded deterministically from
//! the test's name, so every `cargo test` run replays the identical case
//! sequence and a failure report can be reproduced by re-running the test.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Namespace mirror of proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Runtime configuration of a generated property test.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic SplitMix64 generator used to sample strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each property replays the
    /// same case sequence on every run.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name keeps distinct properties decorrelated.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Bias from the modulo is negligible for the small ranges the
        // workspace samples and irrelevant for a test-input generator.
        self.next_u64() % bound
    }
}

/// A source of sampled values for one property-test argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).checked_sub(self.start as u64)
                    .filter(|&s| s > 0)
                    .expect("empty or inverted range strategy");
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as u64;
                let end = *self.end() as u64;
                assert!(start <= end, "inverted range strategy");
                let span = end.wrapping_sub(start).wrapping_add(1);
                let draw = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (start + draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Produces arbitrary values of a type, for [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy over the full value space of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of admissible collection lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Returns a strategy producing `Vec`s whose length lies in `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..16, flag in any::<bool>()) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg,)+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    let _: () = $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n{}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        error,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}
