//! Offline stand-in for the subset of the `rand` crate this workspace uses:
//! a seedable [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — statistically fine for test-pattern
//! campaigns and shuffles, deterministic for a given seed, and entirely
//! dependency-free. It makes no attempt to be bit-compatible with the real
//! `rand` crate's `StdRng` stream.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the same construction rand itself uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        // Multiply-shift bounded sampling; the modulo bias of a plain `%`
        // would be irrelevant here, but this is just as cheap.
        (((self.next_u64() >> 32) * bound as u64) >> 32) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}
