//! Top-level umbrella crate for the reproduction of
//! *"On-Line Functionally Untestable Fault Identification in Embedded
//! Processor Cores"* (Bernardi et al., DATE 2013).
//!
//! The actual functionality lives in the workspace crates; this crate only
//! re-exports them so that the repository-level examples and integration
//! tests have a single convenient dependency.
//!
//! # Quickstart
//!
//! ```
//! use untestable_repro::prelude::*;
//!
//! // Build the industrial-like SoC case study and identify every source of
//! // on-line functional untestability described in the paper.
//! let soc = SocBuilder::small().build();
//! let report = IdentificationFlow::new(FlowConfig::default())
//!     .run(&soc)
//!     .expect("identification flow");
//! assert!(report.total_untestable() > 0);
//! ```

pub use atpg;
pub use cpu;
pub use dft;
pub use faultmodel;
pub use netlist;
pub use online_untestable;

/// Commonly used types from every workspace crate.
pub mod prelude {
    pub use atpg::analysis::{AnalysisConfig, StructuralAnalysis};
    pub use cpu::soc::{Soc, SocBuilder};
    pub use dft::scan::ScanConfig;
    pub use faultmodel::{FaultClass, FaultList, StuckAt};
    pub use netlist::frontend::{load_netlist, Format};
    pub use netlist::{CellKind, Netlist, NetlistBuilder};
    pub use online_untestable::design::{ConstraintSpec, Design, NetlistDesign};
    pub use online_untestable::flow::{FlowConfig, IdentificationFlow};
    pub use online_untestable::report::IdentificationReport;
}
