//! End-to-end tests of the identification service, driven over real HTTP
//! against an in-process daemon: the happy path, backpressure, cancellation,
//! the supervised worker pool under injected panics and stalls, the result
//! cache, and graceful shutdown.
//!
//! The central invariant: every accepted job reaches a terminal state, and a
//! `done` verdict is bit-identical (modulo the run-dependent `phases`
//! timings) to the one a fault-free run produces.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use untestabled::{client, serve, JsonValue, Service, ServiceConfig};

const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

/// A self-cleaning per-test temp directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("untestabled-svc-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// One in-process daemon on an ephemeral port with its own state directory.
struct TestServer {
    addr: String,
    service: Arc<Service>,
    serve_thread: Option<JoinHandle<std::io::Result<()>>>,
    _dir: TempDir,
}

impl TestServer {
    fn start(tag: &str, tune: impl FnOnce(&mut ServiceConfig)) -> TestServer {
        let dir = TempDir::new(tag);
        let mut config = ServiceConfig {
            state_dir: dir.0.clone(),
            workers: 2,
            queue_capacity: 8,
            max_retries: 2,
            backoff: Duration::from_millis(10),
            enable_chaos: true,
            ..ServiceConfig::default()
        };
        tune(&mut config);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let service = Service::start(config).unwrap();
        let serve_service = Arc::clone(&service);
        let serve_thread = std::thread::spawn(move || serve(listener, serve_service));
        TestServer {
            addr,
            service,
            serve_thread: Some(serve_thread),
            _dir: dir,
        }
    }

    /// Submits a body, asserting acceptance, and returns `(id, state, cached)`.
    fn submit(&self, body: &str) -> (u64, String, bool) {
        let response = client::submit(&self.addr, body).unwrap();
        assert_eq!(response.status, 202, "refused: {}", response.body);
        let doc = response.json().unwrap();
        (
            doc.get("id").and_then(JsonValue::as_u64).unwrap(),
            doc.get("state")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string(),
            doc.get("cached").and_then(JsonValue::as_bool).unwrap(),
        )
    }

    fn wait_state(&self, id: u64, state: &str, timeout: Duration) {
        let started = Instant::now();
        loop {
            let doc = client::job_status(&self.addr, id).unwrap().json().unwrap();
            let current = doc.get("state").and_then(JsonValue::as_str).unwrap_or("");
            if current == state {
                return;
            }
            assert!(
                started.elapsed() < timeout,
                "job {id} is `{current}`, not `{state}`, after {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Hard shutdown; asserts the serve loop exits cleanly.
    fn stop(mut self) {
        self.service.request_shutdown(true);
        self.serve_thread.take().unwrap().join().unwrap().unwrap();
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(thread) = self.serve_thread.take() {
            self.service.request_shutdown(true);
            let _ = thread.join();
        }
    }
}

fn c17_body(extra: &str) -> String {
    format!("{{\"circuit\": {}{extra}}}", JsonValue::string(C17))
}

/// The report with the run-dependent `phases` timings removed: everything
/// left must be bit-identical across retries, restarts and fault injection.
fn verdict_of(doc: &JsonValue) -> String {
    let report = doc.get("report").expect("done job carries a report");
    let fields = report
        .as_object()
        .expect("report is an object")
        .iter()
        .filter(|(name, _)| name.as_str() != "phases")
        .cloned()
        .collect();
    JsonValue::Object(fields).to_string()
}

#[test]
fn submit_runs_to_done_with_a_report() {
    let server = TestServer::start("happy", |_| {});

    let health = client::request(&server.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let ready = client::request(&server.addr, "GET", "/readyz", None).unwrap();
    assert_eq!(ready.status, 200);

    let (id, state, cached) = server.submit(&c17_body(""));
    assert_eq!(state, "queued");
    assert!(!cached);
    let doc = client::wait_terminal(&server.addr, id, Duration::from_secs(60)).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(doc.get("attempts").and_then(JsonValue::as_u64), Some(1));
    let report = doc.get("report").unwrap();
    assert!(
        report
            .get("design")
            .and_then(JsonValue::as_str)
            .is_some_and(|name| !name.is_empty()),
        "report carries a design name"
    );
    assert!(
        report
            .get("total_faults")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    assert!(report.get("counts").is_some());

    server.stop();
}

#[test]
fn unknown_jobs_and_endpoints_are_clean_404s() {
    let server = TestServer::start("notfound", |_| {});
    assert_eq!(client::job_status(&server.addr, 999).unwrap().status, 404);
    assert_eq!(client::cancel(&server.addr, 999).unwrap().status, 404);
    assert_eq!(
        client::request(&server.addr, "GET", "/jobs/not-a-number", None)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(&server.addr, "GET", "/nope", None)
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(&server.addr, "DELETE", "/healthz", None)
            .unwrap()
            .status,
        405
    );
    let bad = client::submit(&server.addr, "{not json").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("invalid JSON"), "{}", bad.body);
    server.stop();
}

#[test]
fn queue_overflow_is_503_with_retry_after() {
    let server = TestServer::start("backpressure", |config| {
        config.workers = 1;
        config.queue_capacity = 1;
    });
    // Pin the single worker on a long (cancellable) stall.
    let stall = c17_body(", \"chaos\": {\"stall_attempts\": 1, \"stall_ms\": 30000}");
    let (stalled_id, _, _) = server.submit(&stall);
    server.wait_state(stalled_id, "running", Duration::from_secs(10));

    // Fill the queue, then overflow it.
    let (queued_id, _, _) = server.submit(&c17_body(""));
    let refused = client::submit(&server.addr, &c17_body("")).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(refused.body.contains("queue full"), "{}", refused.body);
    // The refused submission left no job behind.
    let refused_doc = refused.json().unwrap();
    assert!(refused_doc.get("id").is_none());

    // Unpin: cancellation ends the stall, the queued job completes, and the
    // freed capacity accepts new work again.
    assert_eq!(
        client::cancel(&server.addr, stalled_id).unwrap().status,
        200
    );
    let stalled = client::wait_terminal(&server.addr, stalled_id, Duration::from_secs(60)).unwrap();
    assert_eq!(
        stalled.get("state").and_then(JsonValue::as_str),
        Some("cancelled")
    );
    let queued = client::wait_terminal(&server.addr, queued_id, Duration::from_secs(60)).unwrap();
    assert_eq!(
        queued.get("state").and_then(JsonValue::as_str),
        Some("done")
    );
    let (retry_id, _, _) = server.submit(&c17_body(""));
    client::wait_terminal(&server.addr, retry_id, Duration::from_secs(60)).unwrap();
    server.stop();
}

#[test]
fn cancelling_a_running_job_concludes_cancelled() {
    let server = TestServer::start("cancel", |config| {
        config.workers = 1;
    });
    let stall = c17_body(", \"chaos\": {\"stall_attempts\": 1, \"stall_ms\": 30000}");
    let (id, _, _) = server.submit(&stall);
    server.wait_state(id, "running", Duration::from_secs(10));
    let response = client::cancel(&server.addr, id).unwrap();
    assert_eq!(response.status, 200);
    let doc = client::wait_terminal(&server.addr, id, Duration::from_secs(60)).unwrap();
    assert_eq!(
        doc.get("state").and_then(JsonValue::as_str),
        Some("cancelled")
    );
    // Cancelling a terminal job is idempotent.
    let again = client::cancel(&server.addr, id).unwrap().json().unwrap();
    assert_eq!(
        again.get("state").and_then(JsonValue::as_str),
        Some("cancelled")
    );
    server.stop();
}

#[test]
fn a_panicked_attempt_is_retried_and_the_verdict_is_bit_identical() {
    let server = TestServer::start("panic-retry", |_| {});

    let (clean_id, _, _) = server.submit(&c17_body(""));
    let clean = client::wait_terminal(&server.addr, clean_id, Duration::from_secs(60)).unwrap();
    assert_eq!(clean.get("state").and_then(JsonValue::as_str), Some("done"));

    // First attempt panics its worker; supervision respawns the worker and
    // retries the job, which must then conclude with the same verdict.
    let chaotic = c17_body(", \"chaos\": {\"panic_attempts\": 1}");
    let (chaos_id, _, _) = server.submit(&chaotic);
    let doc = client::wait_terminal(&server.addr, chaos_id, Duration::from_secs(60)).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(doc.get("attempts").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(verdict_of(&doc), verdict_of(&clean));

    server.stop();
}

#[test]
fn a_poison_pill_job_is_quarantined_and_the_pool_survives() {
    let server = TestServer::start("quarantine", |config| {
        config.workers = 1;
        config.max_retries = 2;
    });
    // Panics on every attempt: exhausts the retry budget (1 + max_retries
    // attempts) and is quarantined as terminal `failed`.
    let poison = c17_body(", \"chaos\": {\"panic_attempts\": 1000000}");
    let (id, _, _) = server.submit(&poison);
    let doc = client::wait_terminal(&server.addr, id, Duration::from_secs(60)).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("failed"));
    assert_eq!(doc.get("attempts").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(
        doc.get("abort_reason").and_then(JsonValue::as_str),
        Some("panicked")
    );
    let error = doc.get("error").and_then(JsonValue::as_str).unwrap();
    assert!(error.contains("retry budget exhausted"), "{error}");

    // The single-worker pool survived three panics: a clean job still runs.
    let (clean_id, _, _) = server.submit(&c17_body(""));
    let clean = client::wait_terminal(&server.addr, clean_id, Duration::from_secs(60)).unwrap();
    assert_eq!(clean.get("state").and_then(JsonValue::as_str), Some("done"));
    server.stop();
}

#[test]
fn a_stall_ignoring_cancellation_is_abandoned_and_the_pool_survives() {
    let server = TestServer::start("watchdog", |config| {
        config.workers = 1;
        config.max_retries = 1;
        config.attempt_timeout = Some(Duration::from_millis(150));
        config.kill_grace = Duration::from_millis(100);
    });
    // Stalls past the watchdog limit and ignores the cooperative cancel, so
    // the monitor must abandon the attempt and respawn the worker slot.
    let stall = c17_body(
        ", \"chaos\": {\"stall_attempts\": 1000000, \"stall_ms\": 2000, \
         \"ignore_cancel\": true}",
    );
    let (id, _, _) = server.submit(&stall);
    let doc = client::wait_terminal(&server.addr, id, Duration::from_secs(60)).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("failed"));
    assert_eq!(
        doc.get("abort_reason").and_then(JsonValue::as_str),
        Some("timeout")
    );
    let error = doc.get("error").and_then(JsonValue::as_str).unwrap();
    assert!(error.contains("worker abandoned"), "{error}");

    // The respawned slot still serves clean work.
    let (clean_id, _, _) = server.submit(&c17_body(""));
    let clean = client::wait_terminal(&server.addr, clean_id, Duration::from_secs(60)).unwrap();
    assert_eq!(clean.get("state").and_then(JsonValue::as_str), Some("done"));
    server.stop();
}

#[test]
fn engine_level_failure_injection_still_converges_bit_identically() {
    let server = TestServer::start("engine-chaos", |_| {});

    let (clean_id, _, _) = server.submit(&c17_body(""));
    let clean = client::wait_terminal(&server.addr, clean_id, Duration::from_secs(60)).unwrap();
    assert_eq!(clean.get("state").and_then(JsonValue::as_str), Some("done"));

    // A panic injected *inside* the proof campaign: the engine's own panic
    // isolation books the fault as a nondeterministic abort and the campaign
    // still concludes — with every other verdict identical.
    let chaotic = c17_body(", \"chaos\": {\"engine\": {\"panic_on\": 0}}");
    let (chaos_id, _, _) = server.submit(&chaotic);
    let doc = client::wait_terminal(&server.addr, chaos_id, Duration::from_secs(60)).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));

    let totals = |doc: &JsonValue| {
        let report = doc.get("report").cloned().unwrap();
        (
            report.get("total_faults").and_then(JsonValue::as_u64),
            report
                .get("online_untestable_total")
                .and_then(JsonValue::as_u64),
        )
    };
    assert_eq!(totals(&doc).0, totals(&clean).0);
    server.stop();
}

#[test]
fn identical_resubmission_is_served_from_the_cache() {
    let server = TestServer::start("cache", |_| {});
    let (first_id, _, first_cached) = server.submit(&c17_body(""));
    assert!(!first_cached);
    let first = client::wait_terminal(&server.addr, first_id, Duration::from_secs(60)).unwrap();
    assert_eq!(first.get("state").and_then(JsonValue::as_str), Some("done"));
    let fingerprint = first
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();

    // Same circuit and config: served synchronously from the cache.
    let (second_id, state, cached) = server.submit(&c17_body(""));
    assert_ne!(second_id, first_id);
    assert_eq!(state, "done");
    assert!(cached);
    let second = client::job_status(&server.addr, second_id)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(
        second.get("cached").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(verdict_of(&second), verdict_of(&first));

    // A different config is a different fingerprint — not a cache hit.
    let (third_id, state, cached) = server.submit(&c17_body(", \"config\": {\"backtrack\": 7}"));
    assert_eq!(state, "queued");
    assert!(!cached);
    let third = client::wait_terminal(&server.addr, third_id, Duration::from_secs(60)).unwrap();
    assert_ne!(
        third.get("fingerprint").and_then(JsonValue::as_str),
        Some(fingerprint.as_str())
    );

    // A corrupted cache entry is discarded and recomputed, never served.
    let cache_path = server
        ._dir
        .0
        .join("cache")
        .join(format!("{fingerprint}.json"));
    assert!(cache_path.is_file(), "cache entry missing: {cache_path:?}");
    std::fs::write(&cache_path, "{\"fingerprint\": \"feedface\", \"repo").unwrap();
    let (fourth_id, state, cached) = server.submit(&c17_body(""));
    assert_eq!(state, "queued");
    assert!(!cached);
    assert!(!cache_path.is_file(), "corrupted entry was not discarded");
    let fourth = client::wait_terminal(&server.addr, fourth_id, Duration::from_secs(60)).unwrap();
    assert_eq!(verdict_of(&fourth), verdict_of(&first));

    server.stop();
}

#[test]
fn graceful_shutdown_drains_the_backlog() {
    let server = TestServer::start("drain", |config| {
        config.workers = 1;
    });
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(server.submit(&c17_body("")).0);
    }
    let response = client::shutdown(&server.addr, false).unwrap();
    assert_eq!(response.status, 200);

    // While draining (the drain may already have finished — then the
    // listener is gone and the requests fail to connect, which is fine):
    // not ready, and new submissions are refused.
    if let Ok(ready) = client::request(&server.addr, "GET", "/readyz", None) {
        assert_eq!(ready.status, 503);
    }
    if let Ok(refused) = client::submit(&server.addr, &c17_body("")) {
        assert_eq!(refused.status, 503);
    }

    // The serve loop exits only after every accepted job is terminal.
    let service = Arc::clone(&server.service);
    let mut server = server;
    server.serve_thread.take().unwrap().join().unwrap().unwrap();
    assert!(service.is_shutdown_complete());
    assert_eq!(service.open_jobs(), 0);
    // Status endpoints went down with the listener; the journals hold the
    // terminal states.
    for id in ids {
        let result = server
            ._dir
            .0
            .join("jobs")
            .join(id.to_string())
            .join("result.json");
        let text = std::fs::read_to_string(&result).unwrap();
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
    }
}

#[test]
fn chaos_is_refused_without_the_flag() {
    let server = TestServer::start("no-chaos", |config| {
        config.enable_chaos = false;
    });
    let refused = client::submit(
        &server.addr,
        &c17_body(", \"chaos\": {\"panic_attempts\": 1}"),
    )
    .unwrap();
    assert_eq!(refused.status, 400);
    assert!(refused.body.contains("--enable-chaos"), "{}", refused.body);
    server.stop();
}

#[test]
fn job_deadline_expires_as_a_terminal_failure() {
    let server = TestServer::start("deadline", |config| {
        config.workers = 1;
    });
    // The deadline (measured from acceptance) expires during the stall; the
    // monitor propagates it into the attempt's cancel token and the job
    // concludes `failed`/`timeout` — the same mechanism client cancellation
    // uses.
    let body = c17_body(
        ", \"config\": {\"deadline_ms\": 200}, \
         \"chaos\": {\"stall_attempts\": 1, \"stall_ms\": 30000}",
    );
    let (id, _, _) = server.submit(&body);
    let doc = client::wait_terminal(&server.addr, id, Duration::from_secs(60)).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("failed"));
    assert_eq!(
        doc.get("abort_reason").and_then(JsonValue::as_str),
        Some("timeout")
    );
    assert_eq!(
        doc.get("error").and_then(JsonValue::as_str),
        Some("deadline exceeded")
    );
    server.stop();
}
