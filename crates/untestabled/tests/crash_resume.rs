//! The crash-safety contract, end to end against the real daemon binary:
//! `kill -9` mid-campaign, restart on the same state directory, and the
//! job's verdict is bit-identical to an uninterrupted fault-free run — even
//! when the kill (or the test) leaves a torn trailing record in the proof
//! journal. A resubmission after the resume is served from the result cache,
//! and a graceful shutdown exits 0.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use untestabled::{client, JsonValue};

fn circuit(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../circuits")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// A self-cleaning per-test temp directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("untestabled-crash-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The daemon binary under test, on an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(state_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_untestabled"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--state-dir",
                state_dir.to_str().unwrap(),
                "--workers",
                "1",
                "--enable-chaos",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon binary spawns");
        // Scrape the bound address from the startup line.
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon prints its address");
        let addr = line
            .trim()
            .strip_prefix("untestabled: listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        client::wait_healthy(&addr, Duration::from_secs(30)).unwrap();
        Daemon { child, addr }
    }

    /// SIGKILL — the process gets no chance to flush or clean up.
    fn kill_nine(mut self) {
        self.child.kill().unwrap();
        self.child.wait().unwrap();
    }

    /// Graceful shutdown over HTTP; returns the daemon's captured stderr and
    /// asserts exit status 0.
    fn shutdown_graceful(mut self) -> String {
        let response = client::shutdown(&self.addr, false).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let status = self.child.wait().unwrap();
        let mut stderr = String::new();
        if let Some(mut pipe) = self.child.stderr.take() {
            pipe.read_to_string(&mut stderr).ok();
        }
        assert!(
            status.success(),
            "drained daemon exited {status:?}; stderr:\n{stderr}"
        );
        stderr
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn submit_accepted(addr: &str, body: &str) -> (u64, String, bool) {
    let response = client::submit(addr, body).unwrap();
    assert_eq!(response.status, 202, "refused: {}", response.body);
    let doc = response.json().unwrap();
    (
        doc.get("id").and_then(JsonValue::as_u64).unwrap(),
        doc.get("state")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string(),
        doc.get("cached").and_then(JsonValue::as_bool).unwrap(),
    )
}

/// The report with the run-dependent `phases` timings removed.
fn verdict_of(doc: &JsonValue) -> String {
    let report = doc.get("report").expect("done job carries a report");
    let fields = report
        .as_object()
        .expect("report is an object")
        .iter()
        .filter(|(name, _)| name.as_str() != "phases")
        .cloned()
        .collect();
    JsonValue::Object(fields).to_string()
}

#[test]
fn kill_nine_mid_campaign_resumes_bit_identically() {
    let clean_body = format!(
        "{{\"circuit\": {}, \"constraints\": {}, \"config\": {{\"threads\": 2}}}}",
        JsonValue::string(circuit("synth_c432.bench")),
        JsonValue::string(circuit("synth_c432.mission"))
    );
    // The victim run injects an engine-level stall on fault index 0: with
    // two proof threads, one worker wedges on fault 0 while the other keeps
    // journalling verdicts from later chunks — a campaign deterministically
    // held mid-flight, with real progress on disk to kill.
    let stalled_body = format!(
        "{}, \"chaos\": {{\"engine\": {{\"stall_on\": 0}}}}}}",
        clean_body.strip_suffix('}').unwrap()
    );

    // Reference: the same job on a pristine daemon, uninterrupted.
    let reference_dir = TempDir::new("reference");
    let reference_daemon = Daemon::spawn(&reference_dir.0);
    let (reference_id, _, _) = submit_accepted(&reference_daemon.addr, &clean_body);
    let reference = client::wait_terminal(
        &reference_daemon.addr,
        reference_id,
        Duration::from_secs(300),
    )
    .unwrap();
    assert_eq!(
        reference.get("state").and_then(JsonValue::as_str),
        Some("done")
    );
    let reference_verdict = verdict_of(&reference);
    reference_daemon.shutdown_graceful();

    // Victim: submit, wait for journalled proof progress, then SIGKILL.
    let state_dir = TempDir::new("victim");
    let victim = Daemon::spawn(&state_dir.0);
    let (id, _, _) = submit_accepted(&victim.addr, &stalled_body);
    assert_eq!(id, 1);
    let job_dir = state_dir.0.join("jobs").join("1");
    let checkpoint = job_dir.join("campaign.ckpt");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let verdicts = std::fs::read_to_string(&checkpoint)
            .map(|text| text.lines().filter(|l| l.starts_with("fault ")).count())
            .unwrap_or(0);
        if verdicts >= 10 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign journalled only {verdicts} verdicts"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    victim.kill_nine();
    assert!(
        !job_dir.join("result.json").exists(),
        "the job concluded before the kill; the test killed nothing"
    );

    // What survived the kill, up to the last complete record: the resumed
    // campaign must preserve it verbatim (verdicts are only appended).
    let surviving = std::fs::read(&checkpoint).unwrap();
    let valid_prefix = match surviving.iter().rposition(|&b| b == b'\n') {
        Some(last_newline) => surviving[..=last_newline].to_vec(),
        None => Vec::new(),
    };
    assert!(!valid_prefix.is_empty(), "no journalled progress survived");

    // Inject a torn trailing write on top of whatever the kill left: the
    // loader must drop exactly this unterminated record and keep the rest.
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&checkpoint)
            .unwrap();
        file.write_all(b"fault o TORN_MID_WRI").unwrap();
    }

    // The injected stall is a stand-in for a transient environmental hang,
    // so it does not recur on the rerun: re-journal the request without the
    // chaos section (circuit, constraints and config are unchanged, so the
    // campaign fingerprint — and with it the checkpoint and the cache key —
    // stays the same).
    std::fs::write(job_dir.join("request.json"), &clean_body).unwrap();

    // Restart on the same state directory: the interrupted job is recovered,
    // re-enqueued, and resumes from the journal instead of re-proving.
    let restarted = Daemon::spawn(&state_dir.0);
    let resumed = client::wait_terminal(&restarted.addr, 1, Duration::from_secs(300)).unwrap();
    assert_eq!(
        resumed.get("state").and_then(JsonValue::as_str),
        Some("done")
    );
    assert_eq!(verdict_of(&resumed), reference_verdict);
    assert_eq!(
        resumed.get("fingerprint").and_then(JsonValue::as_str),
        reference.get("fingerprint").and_then(JsonValue::as_str)
    );

    // The journalled prefix was preserved verbatim and the torn record is
    // gone — the campaign appended after it rather than rewriting history.
    let final_journal = std::fs::read(&checkpoint).unwrap();
    assert!(
        final_journal.starts_with(&valid_prefix),
        "resume rewrote the surviving journal prefix"
    );
    assert!(
        !final_journal.windows(4).any(|w| w == b"TORN"),
        "the torn record survived into the resumed journal"
    );
    assert!(
        final_journal.len() > valid_prefix.len(),
        "the resumed campaign journalled nothing new"
    );

    // An identical resubmission is now a cache hit, served terminal `done`
    // at acceptance.
    let (resubmit_id, state, cached) = submit_accepted(&restarted.addr, &clean_body);
    assert_ne!(resubmit_id, 1);
    assert_eq!(state, "done");
    assert!(cached);
    let resubmitted = client::job_status(&restarted.addr, resubmit_id)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(verdict_of(&resubmitted), reference_verdict);

    // Graceful shutdown drains and exits 0; the restart warned about the
    // torn record it dropped.
    let stderr = restarted.shutdown_graceful();
    assert!(
        stderr.contains("dropped torn trailing record"),
        "missing torn-record warning; stderr:\n{stderr}"
    );
}
