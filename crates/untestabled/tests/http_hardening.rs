//! Hardening of the HTTP request layer: truncated, oversized and
//! byte-mutated requests must always produce a clean 4xx/5xx rejection (or
//! a valid parse) — never a panic, and never an unbounded read.
//!
//! This is the same campaign the netlist frontends run: a byte-level
//! mutation engine over well-formed seeds, plus the exhaustive
//! truncate-at-every-byte sweep.

use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use untestabled::{read_request, HttpError, Limits, Request};

/// A well-formed submission (the body is deliberately *not* valid JSON for
/// the service — the HTTP layer under test does not look inside bodies).
const POST_SEED: &str = "POST /jobs HTTP/1.1\r\nHost: localhost:3999\r\nContent-Type: application/json\r\nContent-Length: 24\r\n\r\n{\"circuit\": \"INPUT(a)\"}\n";

const GET_SEED: &str =
    "GET /jobs/7?verbose=1 HTTP/1.1\r\nHost: localhost:3999\r\nAccept: application/json\r\n\r\n";

const DELETE_SEED: &str = "DELETE /jobs/7 HTTP/1.0\r\nHost: localhost\r\n\r\n";

const SEEDS: [&str; 3] = [POST_SEED, GET_SEED, DELETE_SEED];

/// Small limits so the mutation campaign can actually cross them.
fn tight_limits() -> Limits {
    Limits {
        request_line: 256,
        headers: 512,
        body: 1024,
    }
}

/// Parses under a panic guard. `Err(_)` from the guard is the property
/// violation we are hunting: a parser panic instead of an `HttpError`.
fn parse_guarded(bytes: &[u8], limits: &Limits) -> Result<Result<Request, HttpError>, String> {
    let owned = bytes.to_vec();
    let limits = *limits;
    catch_unwind(AssertUnwindSafe(move || {
        read_request(&mut Cursor::new(owned), &limits)
    }))
    .map_err(|panic| {
        let message = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("request parser panicked: {message}")
    })
}

/// The hardening contract on one input: no panic, and any rejection carries
/// a 4xx/5xx status and a non-empty message.
fn assert_contract(bytes: &[u8], limits: &Limits) -> Result<(), TestCaseError> {
    match parse_guarded(bytes, limits) {
        Ok(Ok(_)) => Ok(()),
        Ok(Err(e)) => {
            prop_assert!(
                (400..600).contains(&e.status),
                "rejection outside 4xx/5xx: {e:?}"
            );
            prop_assert!(!e.message.is_empty(), "empty rejection message: {e:?}");
            Ok(())
        }
        Err(panic) => Err(TestCaseError::fail(format!(
            "{panic}\ninput:\n{}",
            String::from_utf8_lossy(bytes)
        ))),
    }
}

/// One byte-level mutation step, decoded from three sampled integers.
fn mutate(bytes: &mut Vec<u8>, op: u8, position: usize, payload: u8) {
    if bytes.is_empty() {
        bytes.push(payload);
        return;
    }
    let at = position % bytes.len();
    match op % 5 {
        // Truncate: the torn-request shape.
        0 => bytes.truncate(at),
        // Overwrite one byte with arbitrary garbage.
        1 => bytes[at] = payload,
        // Insert one arbitrary byte.
        2 => bytes.insert(at, payload),
        // Delete a short run.
        3 => {
            let end = (at + 1 + payload as usize % 8).min(bytes.len());
            bytes.drain(at..end);
        }
        // Duplicate a short run (repeated headers, doubled CRLFs).
        _ => {
            let end = (at + 1 + payload as usize % 16).min(bytes.len());
            let run: Vec<u8> = bytes[at..end].to_vec();
            bytes.splice(at..at, run);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Randomly mutated requests parse or get rejected cleanly, under both
    /// the production limits and deliberately tight ones. Each sampled word
    /// packs one mutation step: op in the low byte, position in the middle,
    /// payload on top.
    #[test]
    fn mutated_requests_never_panic(
        seed in 0usize..3,
        steps in prop::collection::vec(any::<u64>(), 1..8),
        tight in any::<bool>(),
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        for &word in &steps {
            let op = (word & 0xff) as u8;
            let position = ((word >> 8) & 0xffff) as usize;
            let payload = ((word >> 24) & 0xff) as u8;
            mutate(&mut bytes, op, position, payload);
        }
        let limits = if tight { tight_limits() } else { Limits::default() };
        assert_contract(&bytes, &limits)?;
    }
}

/// Every byte-boundary truncation of every seed: the exhaustive version of
/// the torn-request case. A truncated request must never hang the reader or
/// panic — only parse (when the cut lands after a complete request) or map
/// to a clean 4xx.
#[test]
fn every_truncation_parses_or_rejects_cleanly() {
    for seed in SEEDS {
        for cut in 0..=seed.len() {
            if let Err(panic) = assert_contract(&seed.as_bytes()[..cut], &Limits::default()) {
                panic!("truncation at byte {cut}: {panic}");
            }
        }
    }
}

/// Oversized requests map to their specific limit statuses, under arbitrary
/// inflation factors.
#[test]
fn oversized_requests_map_to_limit_statuses() {
    let limits = tight_limits();
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4096));
    assert_eq!(
        parse_guarded(long_line.as_bytes(), &limits)
            .unwrap()
            .unwrap_err()
            .status,
        414
    );
    let fat_headers = format!(
        "GET /x HTTP/1.1\r\n{}\r\n",
        "X-Pad: 0123456789abcdef\r\n".repeat(64)
    );
    assert_eq!(
        parse_guarded(fat_headers.as_bytes(), &limits)
            .unwrap()
            .unwrap_err()
            .status,
        431
    );
    let heavy_body = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n{}",
        "b".repeat(4096)
    );
    assert_eq!(
        parse_guarded(heavy_body.as_bytes(), &limits)
            .unwrap()
            .unwrap_err()
            .status,
        413
    );
    // A huge *declared* length is refused before any buffering.
    let liar = "POST /jobs HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n";
    let err = parse_guarded(liar.as_bytes(), &limits)
        .unwrap()
        .unwrap_err();
    assert!(err.status == 413 || err.status == 400, "{err:?}");
}

/// The seeds themselves parse — otherwise the mutation campaign starts from
/// garbage and exercises nothing deep.
#[test]
fn seeds_parse_cleanly() {
    for seed in SEEDS {
        let request = parse_guarded(seed.as_bytes(), &Limits::default())
            .unwrap()
            .unwrap_or_else(|e| panic!("seed rejected: {e:?}\n{seed}"));
        assert!(request.path.starts_with("/jobs"));
    }
}
