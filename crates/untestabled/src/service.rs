//! The supervised identification service: a bounded queue feeding a worker
//! pool, a monitor enforcing deadlines and tearing down stalled attempts,
//! retries with exponential backoff up to a budget, crash-safe per-job
//! journals, and a content-addressed result cache.
//!
//! Invariant: **every accepted job reaches a terminal state**, across worker
//! panics, stalls, cancellations and whole-process kills — and a concluded
//! verdict is bit-identical to the one an uninterrupted, fault-free run
//! produces (the proof campaign journals per-verdict and resumes
//! deterministically; see `atpg::checkpoint`).

use crate::job::{JobRequest, JobState};
use crate::queue::{JobQueue, QueueFull};
use atpg::checkpoint::campaign_fingerprint;
use atpg::proof::ProofConfig;
use atpg::CancelToken;
use netlist::frontend::parse_netlist;
use online_untestable::flow::{FlowConfig, IdentificationFlow, ProofStageConfig};
use online_untestable::{ConstraintSpec, JsonValue, NetlistDesign};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning of the service; the defaults suit an interactive daemon.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root of the persistent job state (`jobs/<id>/…` and `cache/…`).
    pub state_dir: PathBuf,
    /// Worker threads running identification attempts.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are refused with
    /// backpressure (503 + `Retry-After`), never buffered unboundedly.
    pub queue_capacity: usize,
    /// Retries after a retryable attempt failure (panic, stall) before the
    /// job is quarantined as terminal `failed`.
    pub max_retries: u32,
    /// Base retry backoff; doubles per attempt.
    pub backoff: Duration,
    /// Watchdog limit per attempt: past it the attempt's cancel token is
    /// cancelled, and [`kill_grace`](Self::kill_grace) later a still-running
    /// attempt is abandoned and its worker slot respawned. `None` disables
    /// the watchdog.
    pub attempt_timeout: Option<Duration>,
    /// Grace between the watchdog's cooperative cancel and the teardown of
    /// an attempt that ignores it.
    pub kill_grace: Duration,
    /// Accept `chaos` sections in submissions (failure injection for the
    /// robustness suite). Off in production.
    pub enable_chaos: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            state_dir: PathBuf::from("untestabled-state"),
            workers: 2,
            queue_capacity: 16,
            max_retries: 2,
            backoff: Duration::from_millis(100),
            attempt_timeout: None,
            kill_grace: Duration::from_millis(500),
            enable_chaos: false,
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The daemon is draining for shutdown (503).
    Draining,
    /// The body failed validation (400, with the reason).
    Invalid(String),
    /// The queue is at capacity (503 + `Retry-After`).
    Full,
    /// The job journal could not be written (500).
    Internal(String),
}

/// The mutable half of a job; everything behind one mutex.
struct JobRecord {
    state: JobState,
    attempts: u32,
    /// Attempt epoch: bumped when an attempt starts and when the monitor
    /// abandons one, so a conclusion from a torn-down attempt is ignored.
    epoch: u64,
    cancel: CancelToken,
    cancel_requested: bool,
    /// The watchdog cancelled this attempt for exceeding `attempt_timeout`.
    stalled: bool,
    attempt_started: Option<Instant>,
    escalated_at: Option<Instant>,
    retry_at: Option<Instant>,
    deadline: Option<Instant>,
    error: Option<String>,
    abort_reason: Option<String>,
    cached: bool,
    report: Option<JsonValue>,
    fingerprint: u64,
}

struct Job {
    id: u64,
    request: JobRequest,
    record: Mutex<JobRecord>,
}

struct AttemptInfo {
    epoch: u64,
    number: u32,
    token: CancelToken,
    remaining: Option<Duration>,
    checkpoint: PathBuf,
}

/// The service: shared by the HTTP server, the worker pool and the monitor.
pub struct Service {
    config: ServiceConfig,
    queue: JobQueue,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    hard_stop: AtomicBool,
    shutdown_complete: AtomicBool,
    monitor_stop: AtomicBool,
    retire: AtomicUsize,
    live_workers: AtomicUsize,
}

fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

impl Service {
    /// Creates (or re-opens) the state directory, recovers every journalled
    /// job — terminal results are reloaded, interrupted jobs re-enqueued —
    /// and starts the worker pool and the monitor.
    pub fn start(config: ServiceConfig) -> std::io::Result<Arc<Service>> {
        std::fs::create_dir_all(config.state_dir.join("jobs"))?;
        std::fs::create_dir_all(config.state_dir.join("cache"))?;
        let workers = config.workers.max(1);
        let service = Arc::new(Service {
            queue: JobQueue::new(config.queue_capacity.max(1)),
            config,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            hard_stop: AtomicBool::new(false),
            shutdown_complete: AtomicBool::new(false),
            monitor_stop: AtomicBool::new(false),
            retire: AtomicUsize::new(0),
            live_workers: AtomicUsize::new(0),
        });
        service.recover();
        for _ in 0..workers {
            service.spawn_worker();
        }
        {
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("untestabled-monitor".to_string())
                .spawn(move || service.monitor_loop())
                .expect("spawn monitor");
        }
        Ok(service)
    }

    // ------------------------------------------------------------------
    // Front-door API (called by the HTTP layer).
    // ------------------------------------------------------------------

    /// Accepts a `POST /jobs` body: validates, journals, consults the result
    /// cache, and enqueues. Returns `(id, state, cached)` on acceptance.
    pub fn submit(&self, body: &str) -> Result<(u64, JobState, bool), SubmitError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::Draining);
        }
        let request =
            JobRequest::from_json(body, self.config.enable_chaos).map_err(SubmitError::Invalid)?;
        let fingerprint = fingerprint_of(&request).map_err(SubmitError::Invalid)?;
        // Refuse before journalling when the queue is visibly full; the
        // authoritative check is the push below.
        if self.queue.len() >= self.config.queue_capacity {
            return Err(SubmitError::Full);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let dir = self.job_dir(id);
        std::fs::create_dir_all(&dir)
            .and_then(|()| write_atomic(&dir.join("request.json"), body))
            .map_err(|e| SubmitError::Internal(e.to_string()))?;

        let cached_report = if request.chaos.is_none() {
            self.cache_lookup(fingerprint)
        } else {
            None
        };
        let job = Arc::new(Job {
            id,
            request,
            record: Mutex::new(JobRecord {
                state: JobState::Queued,
                attempts: 0,
                epoch: 0,
                cancel: CancelToken::new(),
                cancel_requested: false,
                stalled: false,
                attempt_started: None,
                escalated_at: None,
                retry_at: None,
                deadline: None,
                error: None,
                abort_reason: None,
                cached: false,
                report: None,
                fingerprint,
            }),
        });
        if let Some(report) = cached_report {
            let mut record = job.record.lock().expect("job poisoned");
            record.state = JobState::Done;
            record.cached = true;
            record.report = Some(report);
            self.persist_terminal(&job, &record);
            drop(record);
            self.register(Arc::clone(&job));
            return Ok((id, JobState::Done, true));
        }
        {
            let mut record = job.record.lock().expect("job poisoned");
            record.deadline = job.request.config.deadline.map(|d| Instant::now() + d);
        }
        self.register(Arc::clone(&job));
        match self.queue.push_new(id) {
            Ok(()) => Ok((id, JobState::Queued, false)),
            Err(QueueFull) => {
                self.jobs.lock().expect("jobs poisoned").remove(&id);
                let _ = std::fs::remove_file(dir.join("request.json"));
                let _ = std::fs::remove_dir(&dir);
                Err(SubmitError::Full)
            }
        }
    }

    /// The status document for `GET /jobs/:id`; `None` for unknown ids.
    pub fn status_json(&self, id: u64) -> Option<String> {
        let job = self.job(id)?;
        let record = job.record.lock().expect("job poisoned");
        Some(job_json(&job, &record).to_string())
    }

    /// Cancels a job (`DELETE /jobs/:id`): queued jobs become terminal
    /// `cancelled` immediately, a running attempt's cancel token is
    /// cancelled (the same mechanism deadlines use) and the job concludes
    /// `cancelled` at the next engine poll point. Returns the status
    /// document, or `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<String> {
        let job = self.job(id)?;
        let mut record = job.record.lock().expect("job poisoned");
        if !record.state.is_terminal() {
            record.cancel_requested = true;
            record.cancel.cancel();
            if record.state == JobState::Queued {
                record.state = JobState::Cancelled;
                record.retry_at = None;
                self.persist_terminal(&job, &record);
            }
        }
        Some(job_json(&job, &record).to_string())
    }

    /// Whether the daemon is draining (readiness goes 503, submissions are
    /// refused).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Whether a requested shutdown has finished draining.
    pub fn is_shutdown_complete(&self) -> bool {
        self.shutdown_complete.load(Ordering::SeqCst)
    }

    /// Number of jobs currently in a non-terminal state.
    pub fn open_jobs(&self) -> usize {
        let jobs = self.jobs.lock().expect("jobs poisoned");
        jobs.values()
            .filter(|job| !job.record.lock().expect("job poisoned").state.is_terminal())
            .count()
    }

    /// Initiates shutdown and returns immediately; [`Service::is_shutdown_complete`]
    /// flips once the drain finishes.
    ///
    /// * graceful (`now == false`): stop accepting, let the queue drain and
    ///   every accepted job reach a terminal state, then release workers.
    /// * hard (`now == true`): cancel in-flight attempts (their concluded
    ///   verdicts are already journalled per-verdict) and drop the backlog;
    ///   interrupted and queued jobs stay journalled and are re-enqueued on
    ///   the next start.
    pub fn request_shutdown(self: &Arc<Self>, now: bool) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        let service = Arc::clone(self);
        std::thread::Builder::new()
            .name("untestabled-drain".to_string())
            .spawn(move || service.drain(now))
            .expect("spawn drain");
    }

    fn drain(&self, now: bool) {
        if now {
            self.hard_stop.store(true, Ordering::SeqCst);
            self.queue.close_and_clear();
            for job in self.snapshot() {
                let record = job.record.lock().expect("job poisoned");
                if record.state == JobState::Running {
                    record.cancel.cancel();
                }
            }
        }
        // Wait for every accepted job to leave Running (graceful mode also
        // waits for the backlog to drain into terminal states).
        loop {
            let open = self
                .snapshot()
                .into_iter()
                .filter(|job| {
                    let record = job.record.lock().expect("job poisoned");
                    record.state == JobState::Running || (!now && !record.state.is_terminal())
                })
                .count();
            if open == 0 && (now || self.queue.is_empty()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.queue.close();
        self.monitor_stop.store(true, Ordering::SeqCst);
        // Give workers a bounded window to observe the closed queue.
        let waited = Instant::now();
        while self.live_workers.load(Ordering::SeqCst) > 0
            && waited.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shutdown_complete.store(true, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Registry and persistence.
    // ------------------------------------------------------------------

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs poisoned").get(&id).cloned()
    }

    fn register(&self, job: Arc<Job>) {
        self.jobs.lock().expect("jobs poisoned").insert(job.id, job);
    }

    fn snapshot(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .expect("jobs poisoned")
            .values()
            .cloned()
            .collect()
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.config.state_dir.join("jobs").join(id.to_string())
    }

    fn cache_path(&self, fingerprint: u64) -> PathBuf {
        self.config
            .state_dir
            .join("cache")
            .join(format!("{fingerprint:016x}.json"))
    }

    /// A cached report for this fingerprint, or `None`. A corrupted or
    /// mismatched entry is discarded (and recomputed by the caller) — it is
    /// never served.
    fn cache_lookup(&self, fingerprint: u64) -> Option<JsonValue> {
        let path = self.cache_path(fingerprint);
        let text = std::fs::read_to_string(&path).ok()?;
        let valid = JsonValue::parse(&text).ok().and_then(|doc| {
            let recorded = doc.get("fingerprint")?.as_str()?.to_string();
            if recorded != format!("{fingerprint:016x}") {
                return None;
            }
            doc.get("report").cloned()
        });
        if valid.is_none() {
            let _ = std::fs::remove_file(&path);
        }
        valid
    }

    fn cache_store(&self, fingerprint: u64, report: &JsonValue) {
        let entry = JsonValue::Object(vec![
            (
                "fingerprint".to_string(),
                JsonValue::string(format!("{fingerprint:016x}")),
            ),
            ("report".to_string(), report.clone()),
        ]);
        let _ = write_atomic(&self.cache_path(fingerprint), &entry.to_string());
    }

    /// Journals a terminal state (atomic rename) and feeds the result cache.
    fn persist_terminal(&self, job: &Job, record: &JobRecord) {
        debug_assert!(record.state.is_terminal());
        let _ = write_atomic(
            &self.job_dir(job.id).join("result.json"),
            &job_json(job, record).to_string(),
        );
        if record.state == JobState::Done && !record.cached && job.request.chaos.is_none() {
            if let Some(report) = &record.report {
                self.cache_store(record.fingerprint, report);
            }
        }
    }

    /// Rebuilds the registry from the journals: a valid `result.json` is a
    /// terminal state; otherwise a valid `request.json` is an interrupted
    /// job, re-enqueued (its proof checkpoint replays concluded verdicts
    /// bit-identically); a job with neither is quarantined as `failed`.
    fn recover(&self) {
        let jobs_dir = self.config.state_dir.join("jobs");
        let Ok(entries) = std::fs::read_dir(&jobs_dir) else {
            return;
        };
        let mut max_id = 0u64;
        let mut resumed: Vec<u64> = Vec::new();
        for entry in entries.flatten() {
            let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(|name| name.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            let dir = entry.path();
            if let Some(job) = self.recover_terminal(id, &dir) {
                self.register(job);
                continue;
            }
            match self.recover_interrupted(id, &dir) {
                Ok(job) => {
                    self.register(job);
                    resumed.push(id);
                }
                Err(reason) => {
                    eprintln!("untestabled: job {id}: state lost after restart: {reason}");
                    let job = Arc::new(Job {
                        id,
                        request: JobRequest::placeholder(),
                        record: Mutex::new(JobRecord {
                            state: JobState::Failed,
                            error: Some(format!("job state lost after restart: {reason}")),
                            ..fresh_record()
                        }),
                    });
                    let record = job.record.lock().expect("job poisoned");
                    self.persist_terminal(&job, &record);
                    drop(record);
                    self.register(job);
                }
            }
        }
        self.next_id.store(max_id + 1, Ordering::SeqCst);
        resumed.sort_unstable();
        for id in resumed {
            self.queue.push_retry(id);
        }
    }

    fn recover_terminal(&self, id: u64, dir: &Path) -> Option<Arc<Job>> {
        let text = std::fs::read_to_string(dir.join("result.json")).ok()?;
        let doc = JsonValue::parse(&text).ok()?;
        let state = JobState::from_name(doc.get("state")?.as_str()?)?;
        if !state.is_terminal() {
            return None;
        }
        let fingerprint = doc
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .unwrap_or(0);
        // The request may be unreadable; terminal jobs never run again, so a
        // placeholder is fine.
        let request = std::fs::read_to_string(dir.join("request.json"))
            .ok()
            .and_then(|body| JobRequest::from_json(&body, true).ok())
            .unwrap_or_else(JobRequest::placeholder);
        Some(Arc::new(Job {
            id,
            request,
            record: Mutex::new(JobRecord {
                state,
                attempts: doc.get("attempts").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
                error: doc
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
                abort_reason: doc
                    .get("abort_reason")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
                cached: doc
                    .get("cached")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                report: doc.get("report").cloned(),
                fingerprint,
                ..fresh_record()
            }),
        }))
    }

    fn recover_interrupted(&self, id: u64, dir: &Path) -> Result<Arc<Job>, String> {
        let body = std::fs::read_to_string(dir.join("request.json"))
            .map_err(|e| format!("cannot read request.json: {e}"))?;
        // Chaos sections were accepted when the job was, so re-accept them
        // regardless of the current flag.
        let request = JobRequest::from_json(&body, true)?;
        let fingerprint = fingerprint_of(&request)?;
        Ok(Arc::new(Job {
            id,
            request,
            record: Mutex::new(JobRecord {
                fingerprint,
                ..fresh_record()
            }),
        }))
    }

    // ------------------------------------------------------------------
    // Worker pool and supervision.
    // ------------------------------------------------------------------

    fn spawn_worker(self: &Arc<Self>) {
        self.live_workers.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(self);
        std::thread::Builder::new()
            .name("untestabled-worker".to_string())
            .spawn(move || worker_main(service))
            .expect("spawn worker");
    }

    fn take_retirement(&self) -> bool {
        self.retire
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    fn run_attempt(self: &Arc<Self>, id: u64) {
        let Some(job) = self.job(id) else { return };
        let Some(attempt) = self.begin_attempt(&job) else {
            return;
        };
        let _guard = CrashGuard {
            service: Arc::clone(self),
            job: Arc::clone(&job),
            epoch: attempt.epoch,
        };
        if let Some(chaos) = &job.request.chaos {
            if attempt.number <= chaos.panic_attempts {
                panic!("chaos: injected worker panic on attempt {}", attempt.number);
            }
            if attempt.number <= chaos.stall_attempts {
                let stalled_at = Instant::now();
                while stalled_at.elapsed() < chaos.stall {
                    if !chaos.ignore_cancel && attempt.token.is_cancelled() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        let outcome = execute(&job, &attempt);
        self.conclude_attempt(&job, attempt.epoch, outcome);
    }

    fn begin_attempt(&self, job: &Arc<Job>) -> Option<AttemptInfo> {
        let mut record = job.record.lock().expect("job poisoned");
        if record.state != JobState::Queued {
            return None;
        }
        if record.cancel_requested {
            record.state = JobState::Cancelled;
            self.persist_terminal(job, &record);
            return None;
        }
        let now = Instant::now();
        if record.deadline.is_some_and(|d| now >= d) {
            record.state = JobState::Failed;
            record.error = Some("deadline exceeded".to_string());
            record.abort_reason = Some("timeout".to_string());
            self.persist_terminal(job, &record);
            return None;
        }
        record.state = JobState::Running;
        record.attempts += 1;
        record.epoch += 1;
        record.cancel = CancelToken::new();
        record.stalled = false;
        record.escalated_at = None;
        record.retry_at = None;
        record.attempt_started = Some(now);
        Some(AttemptInfo {
            epoch: record.epoch,
            number: record.attempts,
            token: record.cancel.clone(),
            remaining: record.deadline.map(|d| d.saturating_duration_since(now)),
            checkpoint: self.job_dir(job.id).join("campaign.ckpt"),
        })
    }

    fn conclude_attempt(
        &self,
        job: &Arc<Job>,
        epoch: u64,
        outcome: Result<(JsonValue, bool), String>,
    ) {
        let mut record = job.record.lock().expect("job poisoned");
        if record.epoch != epoch || record.state != JobState::Running {
            return; // The attempt was abandoned; a newer one owns the job.
        }
        match outcome {
            Err(message) => {
                record.state = JobState::Failed;
                record.error = Some(message);
                self.persist_terminal(job, &record);
            }
            Ok((report, deadline_hit)) => {
                if !deadline_hit {
                    record.state = JobState::Done;
                    record.report = Some(report);
                    self.persist_terminal(job, &record);
                } else if record.cancel_requested {
                    record.state = JobState::Cancelled;
                    self.persist_terminal(job, &record);
                } else if self.hard_stop.load(Ordering::SeqCst) {
                    // Shutdown interrupted the attempt: park the job; its
                    // journal re-enqueues it on the next start.
                    record.state = JobState::Queued;
                } else if record.deadline.is_some_and(|d| Instant::now() >= d) {
                    record.state = JobState::Failed;
                    record.error = Some("deadline exceeded".to_string());
                    record.abort_reason = Some("timeout".to_string());
                    self.persist_terminal(job, &record);
                } else {
                    // The watchdog cancelled a stalled attempt (or the stage
                    // timed out for another transient reason): retry.
                    self.retryable_failure(job, &mut record, "timeout", "attempt stalled");
                }
            }
        }
    }

    /// Books a retryable attempt failure: retry with exponential backoff
    /// while the budget lasts, then quarantine as terminal `failed` with the
    /// abort reason attached.
    fn retryable_failure(
        &self,
        job: &Arc<Job>,
        record: &mut MutexGuard<'_, JobRecord>,
        reason: &str,
        message: &str,
    ) {
        record.abort_reason = Some(reason.to_string());
        if record.attempts > self.config.max_retries {
            record.state = JobState::Failed;
            record.error = Some(format!(
                "{message}; retry budget exhausted after {} attempts",
                record.attempts
            ));
            self.persist_terminal(job, record);
        } else {
            let backoff = self.config.backoff * 2u32.pow(record.attempts.saturating_sub(1));
            record.state = JobState::Queued;
            record.retry_at = Some(Instant::now() + backoff);
        }
    }

    /// Called from a panicking worker's drop guard: the attempt dies with
    /// the thread, and the job is retried or quarantined.
    fn attempt_crashed(&self, job: &Arc<Job>, epoch: u64) {
        let mut record = job.record.lock().expect("job poisoned");
        if record.epoch != epoch || record.state != JobState::Running {
            return;
        }
        self.retryable_failure(job, &mut record, "panicked", "worker panicked");
    }

    fn queue_closed_for_shutdown(&self) -> bool {
        self.draining.load(Ordering::SeqCst) && self.shutdown_complete.load(Ordering::SeqCst)
    }

    /// The monitor: re-enqueues due retries, propagates job deadlines into
    /// cancel tokens, and supervises stalled attempts (cooperative cancel,
    /// then abandon-and-respawn after the grace period).
    fn monitor_loop(self: Arc<Self>) {
        while !self.monitor_stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            for job in self.snapshot() {
                let mut record = job.record.lock().expect("job poisoned");
                match record.state {
                    JobState::Queued if record.retry_at.is_some_and(|at| now >= at) => {
                        record.retry_at = None;
                        self.queue.push_retry(job.id);
                    }
                    JobState::Queued => {}
                    JobState::Running => {
                        if record.deadline.is_some_and(|d| now >= d) {
                            record.cancel.cancel();
                        }
                        if let Some(limit) = self.config.attempt_timeout {
                            let overdue = record
                                .attempt_started
                                .is_some_and(|started| now >= started + limit);
                            match record.escalated_at {
                                None if overdue => {
                                    record.stalled = true;
                                    record.escalated_at = Some(now);
                                    record.cancel.cancel();
                                }
                                Some(escalated) if now >= escalated + self.config.kill_grace => {
                                    // The attempt ignored the cancel: tear
                                    // the worker down (it retires once the
                                    // stuck call returns) and respawn.
                                    record.epoch += 1;
                                    self.retryable_failure(
                                        &job,
                                        &mut record,
                                        "timeout",
                                        "attempt stalled and ignored cancellation; worker abandoned",
                                    );
                                    self.retire.fetch_add(1, Ordering::SeqCst);
                                    self.spawn_worker();
                                }
                                _ => {}
                            }
                        }
                    }
                    _ => {}
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

struct CrashGuard {
    service: Arc<Service>,
    job: Arc<Job>,
    epoch: u64,
}

impl Drop for CrashGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.service.attempt_crashed(&self.job, self.epoch);
        }
    }
}

fn worker_main(service: Arc<Service>) {
    struct ExitGuard(Arc<Service>);
    impl Drop for ExitGuard {
        fn drop(&mut self) {
            self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
            // A panicked worker is torn down with its attempt; keep the pool
            // at strength unless the service is shutting down.
            if std::thread::panicking() && !self.0.queue_closed_for_shutdown() {
                self.0.spawn_worker();
            }
        }
    }
    let _guard = ExitGuard(Arc::clone(&service));
    loop {
        if service.take_retirement() {
            break;
        }
        let Some(id) = service.queue.pop() else { break };
        service.run_attempt(id);
    }
}

fn fresh_record() -> JobRecord {
    JobRecord {
        state: JobState::Queued,
        attempts: 0,
        epoch: 0,
        cancel: CancelToken::new(),
        cancel_requested: false,
        stalled: false,
        attempt_started: None,
        escalated_at: None,
        retry_at: None,
        deadline: None,
        error: None,
        abort_reason: None,
        cached: false,
        report: None,
        fingerprint: 0,
    }
}

/// The status document: the single schema served by `GET /jobs/:id`,
/// journalled to `result.json`, and embedded in the cache.
fn job_json(job: &Job, record: &JobRecord) -> JsonValue {
    let mut fields = vec![
        ("id".to_string(), job.id.into()),
        (
            "fingerprint".to_string(),
            JsonValue::string(format!("{:016x}", record.fingerprint)),
        ),
        ("state".to_string(), JsonValue::string(record.state.name())),
        ("attempts".to_string(), u64::from(record.attempts).into()),
        ("cached".to_string(), record.cached.into()),
    ];
    if let Some(error) = &record.error {
        fields.push(("error".to_string(), JsonValue::string(error)));
    }
    if let Some(reason) = &record.abort_reason {
        fields.push(("abort_reason".to_string(), JsonValue::string(reason)));
    }
    if let Some(report) = &record.report {
        fields.push(("report".to_string(), report.clone()));
    }
    JsonValue::Object(fields)
}

fn design_of(request: &JobRequest) -> Result<NetlistDesign, String> {
    let netlist =
        parse_netlist(&request.circuit, request.format).map_err(|e| format!("circuit: {e}"))?;
    match &request.constraints {
        Some(text) => {
            let spec = ConstraintSpec::parse(text).map_err(|e| format!("constraints: {e}"))?;
            NetlistDesign::with_constraints(netlist, &spec).map_err(|e| format!("constraints: {e}"))
        }
        None => Ok(NetlistDesign::new(netlist)),
    }
}

fn flow_config(job: &Job, attempt: Option<&AttemptInfo>) -> FlowConfig {
    let config = &job.request.config;
    FlowConfig {
        run_atpg_proof: true,
        proof: ProofStageConfig {
            backtrack_limit: config.backtrack,
            threads: config.threads,
            max_faults: config.max_proof,
            sample_seed: config.seed,
            use_sat: config.sat,
            sat_conflict_limit: config.sat_conflicts,
            stage_timeout: attempt.and_then(|a| a.remaining),
            fault_timeout: config.fault_timeout,
            checkpoint: attempt.map(|a| a.checkpoint.clone()),
            cancel: attempt.map(|a| a.token.clone()),
            failure_plan: job.request.chaos.as_ref().and_then(|chaos| chaos.engine),
            ..ProofStageConfig::default()
        },
        ..FlowConfig::full_pipeline()
    }
}

/// The campaign fingerprint the proof stage will key its checkpoint with —
/// computed identically here so the result cache shares the key.
fn fingerprint_of(request: &JobRequest) -> Result<u64, String> {
    use online_untestable::Design;
    let design = design_of(request)?;
    let probe = Job {
        id: 0,
        request: request.clone(),
        record: Mutex::new(fresh_record()),
    };
    let flow = IdentificationFlow::new(flow_config(&probe, None));
    let constraints = flow
        .mission_constraints(&design)
        .map_err(|e| format!("constraint discovery: {e}"))?;
    let engine = ProofConfig {
        backtrack_limit: request.config.backtrack,
        threads: request.config.threads,
        use_collapse: true,
        cone_clip: true,
        use_scoap: true,
        use_x_path: true,
        use_sat: request.config.sat,
        sat_conflict_limit: request.config.sat_conflicts,
        failure_plan: None,
    };
    Ok(campaign_fingerprint(
        design.netlist(),
        &constraints,
        &engine,
    ))
}

/// Runs one identification attempt; returns the report JSON and whether a
/// wall-clock deadline (or cancellation) cut the campaign short.
fn execute(job: &Arc<Job>, attempt: &AttemptInfo) -> Result<(JsonValue, bool), String> {
    let design = design_of(&job.request)?;
    let config = flow_config(job, Some(attempt));
    let report = IdentificationFlow::new(config)
        .run(&design)
        .map_err(|e| format!("identification flow: {e}"))?;
    let deadline_hit = report
        .engine_breakdown
        .as_ref()
        .is_some_and(|b| b.deadline_hit())
        || attempt.token.is_cancelled();
    Ok((report.to_json(), deadline_hit))
}

impl JobRequest {
    /// An inert request for jobs whose journal was lost; never executed
    /// (the record is terminal before registration).
    pub(crate) fn placeholder() -> JobRequest {
        JobRequest {
            circuit: String::new(),
            format: netlist::frontend::Format::Bench,
            constraints: None,
            config: crate::job::JobProofConfig::default(),
            chaos: None,
        }
    }
}
