//! A tiny blocking HTTP client for the service: used by the `untestable`
//! CLI subcommands, the integration tests and the CI smoke job. Speaks
//! exactly the subset the server does (`Connection: close`, JSON bodies).

use crate::JsonValue;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A completed exchange: status code, response headers and body.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw response body (JSON for every service endpoint).
    pub body: String,
}

impl HttpResponse {
    /// The body parsed as JSON, when it is JSON.
    pub fn json(&self) -> Option<JsonValue> {
        JsonValue::parse(&self.body).ok()
    }

    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:3999`).
///
/// # Errors
///
/// Propagates connection and socket errors; a malformed response status
/// line is reported as `InvalidData`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| raw.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
        })?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(head, body)| (head.to_string(), body.to_string()))
        .unwrap_or((raw, String::new()));
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// `POST /jobs` with the given JSON body.
pub fn submit(addr: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(addr, "POST", "/jobs", Some(body))
}

/// `GET /jobs/:id`.
pub fn job_status(addr: &str, id: u64) -> std::io::Result<HttpResponse> {
    request(addr, "GET", &format!("/jobs/{id}"), None)
}

/// `DELETE /jobs/:id`.
pub fn cancel(addr: &str, id: u64) -> std::io::Result<HttpResponse> {
    request(addr, "DELETE", &format!("/jobs/{id}"), None)
}

/// `POST /shutdown`, optionally hard (`mode=now`).
pub fn shutdown(addr: &str, now: bool) -> std::io::Result<HttpResponse> {
    let path = if now {
        "/shutdown?mode=now"
    } else {
        "/shutdown"
    };
    request(addr, "POST", path, None)
}

/// Polls `GET /jobs/:id` until the job reaches a terminal state, returning
/// its final status document.
///
/// # Errors
///
/// `TimedOut` when the job is still open after `timeout`; `InvalidData` on
/// a non-JSON status document.
pub fn wait_terminal(addr: &str, id: u64, timeout: Duration) -> std::io::Result<JsonValue> {
    let started = Instant::now();
    loop {
        let response = job_status(addr, id)?;
        let doc = response.json().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-JSON status")
        })?;
        let state = doc.get("state").and_then(JsonValue::as_str).unwrap_or("");
        if matches!(state, "done" | "failed" | "cancelled") {
            return Ok(doc);
        }
        if started.elapsed() > timeout {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("job {id} still `{state}` after {timeout:?}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls `GET /healthz` until the daemon answers (it may still be binding).
///
/// # Errors
///
/// `TimedOut` when the daemon never comes up within `timeout`.
pub fn wait_healthy(addr: &str, timeout: Duration) -> std::io::Result<()> {
    let started = Instant::now();
    loop {
        if let Ok(response) = request(addr, "GET", "/healthz", None) {
            if response.status == 200 {
                return Ok(());
            }
        }
        if started.elapsed() > timeout {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "daemon never became healthy",
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
