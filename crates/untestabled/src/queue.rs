//! A bounded job queue with backpressure: new submissions are refused when
//! the queue is full (the server maps that to `503` + `Retry-After`), while
//! retries of already-accepted jobs always fit — accepting a job is a
//! promise to drive it to a terminal state.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The queue is at capacity; the submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

struct QueueState {
    items: VecDeque<u64>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO of job ids.
pub struct JobQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    /// An empty queue refusing new submissions beyond `capacity`.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues a *new* submission, refusing it when the queue is at
    /// capacity (backpressure) or closed (shutdown).
    pub fn push_new(&self, id: u64) -> Result<(), QueueFull> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        state.items.push_back(id);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Re-enqueues an already-accepted job (a retry): never refused by the
    /// capacity bound — the job was admitted when the bound was checked.
    pub fn push_retry(&self, id: u64) {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return;
        }
        state.items.push_front(id);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until an id is available (returned) or the queue is closed
    /// *and* empty (`None` — the worker should exit).
    pub fn pop(&self) -> Option<u64> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(id) = state.items.pop_front() {
                return Some(id);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Number of queued ids.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending items still drain, new pushes are refused,
    /// and every blocked and future [`pop`](Self::pop) returns `None` once
    /// the backlog is empty.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Closes the queue *and* drops the backlog (hard shutdown: the dropped
    /// jobs stay journalled on disk and are re-enqueued on restart).
    pub fn close_and_clear(&self) -> Vec<u64> {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        let dropped = state.items.drain(..).collect();
        drop(state);
        self.available.notify_all();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_refuses_only_new_submissions() {
        let queue = JobQueue::new(2);
        queue.push_new(1).unwrap();
        queue.push_new(2).unwrap();
        assert_eq!(queue.push_new(3), Err(QueueFull));
        queue.push_retry(3);
        assert_eq!(queue.len(), 3);
        // Retries jump the line: an in-flight job finishes before new work.
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let queue = Arc::new(JobQueue::new(4));
        queue.push_new(1).unwrap();
        queue.close();
        assert_eq!(queue.push_new(2), Err(QueueFull));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
        let blocked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        assert_eq!(blocked.join().unwrap(), None);
    }
}
