//! The HTTP front end: one bounded-parse request per connection, routed to
//! the [`Service`]. Connections are handled serially with short socket
//! timeouts — every endpoint is a quick registry operation (identification
//! work happens on the worker pool), so a slow client can delay, never
//! wedge, the server.

use crate::http::{read_request, write_response, HttpError, Limits, Request};
use crate::service::{Service, SubmitError};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn error_body(message: &str) -> String {
    crate::JsonValue::Object(vec![(
        "error".to_string(),
        crate::JsonValue::string(message),
    )])
    .to_string()
}

fn respond(stream: &mut TcpStream, status: u16, headers: &[(&str, &str)], body: &str) {
    // The client may already be gone; nothing useful to do about it.
    let _ = write_response(stream, status, headers, body);
}

fn route(service: &Arc<Service>, request: &Request) -> (u16, Vec<(String, String)>, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, Vec::new(), "{\"status\":\"ok\"}".to_string()),
        ("GET", ["readyz"]) => {
            if service.is_draining() {
                (503, Vec::new(), "{\"status\":\"draining\"}".to_string())
            } else {
                (200, Vec::new(), "{\"status\":\"ready\"}".to_string())
            }
        }
        ("POST", ["jobs"]) => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(text) => text,
                Err(_) => return (400, Vec::new(), error_body("body is not UTF-8")),
            };
            match service.submit(body) {
                Ok((id, state, cached)) => {
                    let doc = crate::JsonValue::Object(vec![
                        ("id".to_string(), id.into()),
                        ("state".to_string(), crate::JsonValue::string(state.name())),
                        ("cached".to_string(), cached.into()),
                    ]);
                    (202, Vec::new(), doc.to_string())
                }
                Err(SubmitError::Draining) => {
                    (503, Vec::new(), error_body("draining for shutdown"))
                }
                Err(SubmitError::Full) => (
                    503,
                    vec![("Retry-After".to_string(), "1".to_string())],
                    error_body("job queue full; retry later"),
                ),
                Err(SubmitError::Invalid(message)) => (400, Vec::new(), error_body(&message)),
                Err(SubmitError::Internal(message)) => (500, Vec::new(), error_body(&message)),
            }
        }
        (method, ["jobs", id_text]) => match id_text.parse::<u64>() {
            Err(_) => (404, Vec::new(), error_body("no such job")),
            Ok(id) => match method {
                "GET" => match service.status_json(id) {
                    Some(body) => (200, Vec::new(), body),
                    None => (404, Vec::new(), error_body("no such job")),
                },
                "DELETE" => match service.cancel(id) {
                    Some(body) => (200, Vec::new(), body),
                    None => (404, Vec::new(), error_body("no such job")),
                },
                _ => (405, Vec::new(), error_body("method not allowed")),
            },
        },
        ("POST", ["shutdown"]) => {
            let now = request.query.split('&').any(|pair| pair == "mode=now");
            service.request_shutdown(now);
            (200, Vec::new(), "{\"status\":\"draining\"}".to_string())
        }
        ("GET" | "DELETE", ["jobs"]) | (_, ["healthz" | "readyz" | "shutdown"]) => {
            (405, Vec::new(), error_body("method not allowed"))
        }
        _ => (404, Vec::new(), error_body("no such endpoint")),
    }
}

fn handle(service: &Arc<Service>, mut stream: TcpStream, limits: &Limits) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    match read_request(&mut reader, limits) {
        Ok(request) => {
            let (status, headers, body) = route(service, &request);
            let header_refs: Vec<(&str, &str)> = headers
                .iter()
                .map(|(name, value)| (name.as_str(), value.as_str()))
                .collect();
            respond(&mut stream, status, &header_refs, &body);
        }
        Err(HttpError { status, message }) => {
            respond(&mut stream, status, &[], &error_body(&message));
        }
    }
}

/// Serves until a requested shutdown finishes draining, then returns. Status
/// polls keep working throughout the drain.
pub fn serve(listener: TcpListener, service: Arc<Service>) -> std::io::Result<()> {
    let limits = Limits::default();
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                handle(&service, stream, &limits);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if service.is_shutdown_complete() {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}
