//! The job model: what a client submits, how it progresses, and how both
//! are (de)serialized with the shared tiny JSON layer.

use atpg::FailurePlan;
use netlist::frontend::Format;
use online_untestable::JsonValue;
use std::time::Duration;

/// Proof-stage knobs a submission may set; everything is optional and
/// defaults match the `untestable` CLI.
#[derive(Clone, Debug, PartialEq)]
pub struct JobProofConfig {
    /// PODEM backtrack budget per fault.
    pub backtrack: usize,
    /// Escalate PODEM aborts to the SAT backend.
    pub sat: bool,
    /// Conflict budget per SAT escalation.
    pub sat_conflicts: u64,
    /// Cap the proof worklist at this many survivors.
    pub max_proof: Option<usize>,
    /// Sample the capped worklist with this seed instead of a prefix.
    pub seed: Option<u64>,
    /// Proof-stage worker threads *inside* this job (the service's worker
    /// pool provides cross-job parallelism, so the default is 1).
    pub threads: usize,
    /// Whole-job wall-clock deadline, measured from acceptance; expiry is a
    /// terminal failure, shared with client cancellation via the job's
    /// cancel token.
    pub deadline: Option<Duration>,
    /// Per-fault wall-clock limit inside the proof stage.
    pub fault_timeout: Option<Duration>,
}

impl Default for JobProofConfig {
    fn default() -> Self {
        JobProofConfig {
            backtrack: 32,
            sat: true,
            sat_conflicts: 20_000,
            max_proof: None,
            seed: None,
            threads: 1,
            deadline: None,
            fault_timeout: None,
        }
    }
}

/// Failure injection a submission may request when the daemon runs with
/// `--enable-chaos`; refused otherwise. Attempts are 1-based.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosSpec {
    /// Panic the worker thread at the start of the first `n` attempts
    /// (exercises supervision: teardown, respawn, retry with backoff).
    pub panic_attempts: u32,
    /// Stall the worker at the start of the first `n` attempts.
    pub stall_attempts: u32,
    /// How long a stalled attempt busy-waits.
    pub stall: Duration,
    /// Whether the stall ignores the attempt's cancel token (exercises the
    /// watchdog's abandon-and-respawn path instead of cooperative cancel).
    pub ignore_cancel: bool,
    /// Engine-level failure injection forwarded to the proof campaign.
    pub engine: Option<FailurePlan>,
}

/// One accepted submission, fully validated: the parse work happens once at
/// `POST /jobs` (and again on restart recovery) so worker attempts cannot
/// fail on malformed input.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// The netlist source text.
    pub circuit: String,
    /// Its frontend format.
    pub format: Format,
    /// Optional mission-constraint spec text (`force` / `mask` lines).
    pub constraints: Option<String>,
    /// Proof-stage configuration.
    pub config: JobProofConfig,
    /// Failure injection, only present under `--enable-chaos`.
    pub chaos: Option<ChaosSpec>,
}

/// Lifecycle of a job. `Done`, `Failed` and `Cancelled` are terminal: every
/// accepted job reaches one of them, even across process kills.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker (also the parked-for-retry state).
    Queued,
    /// An attempt is running on a worker.
    Running,
    /// Terminal: the campaign concluded; the report is attached.
    Done,
    /// Terminal: the retry budget is exhausted or the deadline expired.
    Failed,
    /// Terminal: the client cancelled the job.
    Cancelled,
}

impl JobState {
    /// Stable lower-case name used in responses and journals.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<JobState> {
        Some(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

fn duration_field(doc: &JsonValue, key: &str) -> Result<Option<Duration>, String> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(value) => {
            let ms = value
                .as_u64()
                .ok_or_else(|| format!("`{key}` must be a non-negative integer (milliseconds)"))?;
            Ok(Some(Duration::from_millis(ms)))
        }
    }
}

fn usize_field(doc: &JsonValue, key: &str, default: usize) -> Result<usize, String> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(value) => value
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_usize_field(doc: &JsonValue, key: &str) -> Result<Option<usize>, String> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(value) => value
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn bool_field(doc: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(value) => value
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

impl JobRequest {
    /// Parses and validates a `POST /jobs` body. `allow_chaos` gates the
    /// `chaos` section: refused with an explanation unless the daemon opted
    /// in. The circuit and constraint texts are parsed here so acceptance
    /// means an attempt can only fail for runtime reasons.
    pub fn from_json(body: &str, allow_chaos: bool) -> Result<JobRequest, String> {
        let doc = JsonValue::parse(body).map_err(|e| e.to_string())?;
        if doc.as_object().is_none() {
            return Err("request body must be a JSON object".to_string());
        }
        let circuit = doc
            .get("circuit")
            .and_then(JsonValue::as_str)
            .ok_or("`circuit` (netlist source text) is required")?
            .to_string();
        let format_name = doc
            .get("format")
            .and_then(JsonValue::as_str)
            .unwrap_or("bench");
        let format = Format::from_name(format_name)
            .ok_or_else(|| format!("unknown format `{format_name}`"))?;
        netlist::frontend::parse_netlist(&circuit, format).map_err(|e| format!("circuit: {e}"))?;
        let constraints = match doc.get("constraints") {
            None | Some(JsonValue::Null) => None,
            Some(value) => {
                let text = value
                    .as_str()
                    .ok_or("`constraints` must be the spec text as a string")?;
                online_untestable::ConstraintSpec::parse(text)
                    .map_err(|e| format!("constraints: {e}"))?;
                Some(text.to_string())
            }
        };

        let empty = JsonValue::Object(Vec::new());
        let config_doc = doc.get("config").unwrap_or(&empty);
        if config_doc.as_object().is_none() {
            return Err("`config` must be an object".to_string());
        }
        let defaults = JobProofConfig::default();
        let config = JobProofConfig {
            backtrack: usize_field(config_doc, "backtrack", defaults.backtrack)?,
            sat: bool_field(config_doc, "sat", defaults.sat)?,
            sat_conflicts: match config_doc.get("sat_conflicts") {
                None | Some(JsonValue::Null) => defaults.sat_conflicts,
                Some(value) => value
                    .as_u64()
                    .ok_or("`sat_conflicts` must be a non-negative integer")?,
            },
            max_proof: opt_usize_field(config_doc, "max_proof")?,
            seed: match config_doc.get("seed") {
                None | Some(JsonValue::Null) => None,
                Some(value) => Some(
                    value
                        .as_u64()
                        .ok_or("`seed` must be a non-negative integer")?,
                ),
            },
            threads: usize_field(config_doc, "threads", defaults.threads)?,
            deadline: duration_field(config_doc, "deadline_ms")?,
            fault_timeout: duration_field(config_doc, "fault_timeout_ms")?,
        };

        let chaos = match doc.get("chaos") {
            None | Some(JsonValue::Null) => None,
            Some(chaos_doc) => {
                if !allow_chaos {
                    return Err(
                        "failure injection refused: the daemon runs without --enable-chaos"
                            .to_string(),
                    );
                }
                if chaos_doc.as_object().is_none() {
                    return Err("`chaos` must be an object".to_string());
                }
                let engine = match chaos_doc.get("engine") {
                    None | Some(JsonValue::Null) => None,
                    Some(engine_doc) => Some(FailurePlan {
                        panic_on: opt_usize_field(engine_doc, "panic_on")?,
                        stall_on: opt_usize_field(engine_doc, "stall_on")?,
                        bogus_sat_model_on: opt_usize_field(engine_doc, "bogus_sat_model_on")?,
                    }),
                };
                Some(ChaosSpec {
                    panic_attempts: usize_field(chaos_doc, "panic_attempts", 0)? as u32,
                    stall_attempts: usize_field(chaos_doc, "stall_attempts", 0)? as u32,
                    stall: duration_field(chaos_doc, "stall_ms")?.unwrap_or(Duration::ZERO),
                    ignore_cancel: bool_field(chaos_doc, "ignore_cancel", false)?,
                    engine,
                })
            }
        };

        Ok(JobRequest {
            circuit,
            format,
            constraints,
            config,
            chaos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    fn body(extra: &str) -> String {
        format!("{{\"circuit\": {}{extra}}}", JsonValue::string(C17))
    }

    #[test]
    fn minimal_submission_defaults() {
        let request = JobRequest::from_json(&body(""), false).unwrap();
        assert_eq!(request.format, Format::Bench);
        assert_eq!(request.config, JobProofConfig::default());
        assert!(request.chaos.is_none());
    }

    #[test]
    fn config_fields_parse() {
        let request = JobRequest::from_json(
            &body(
                ", \"config\": {\"backtrack\": 8, \"sat\": false, \"deadline_ms\": 1500, \
                 \"threads\": 2, \"max_proof\": 10, \"seed\": 7}",
            ),
            false,
        )
        .unwrap();
        assert_eq!(request.config.backtrack, 8);
        assert!(!request.config.sat);
        assert_eq!(request.config.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(request.config.threads, 2);
        assert_eq!(request.config.max_proof, Some(10));
        assert_eq!(request.config.seed, Some(7));
    }

    #[test]
    fn invalid_submissions_are_rejected_with_reasons() {
        for (text, needle) in [
            ("{}".to_string(), "`circuit`"),
            ("[1]".to_string(), "object"),
            ("{\"circuit\": \"INPUT(a\"}".to_string(), "circuit:"),
            (body(", \"format\": \"vhdl\""), "unknown format"),
            (body(", \"constraints\": \"force bogus 2\""), "constraints:"),
            (body(", \"config\": {\"backtrack\": -3}"), "`backtrack`"),
            (body(", \"chaos\": {}"), "--enable-chaos"),
        ] {
            let err = JobRequest::from_json(&text, false).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn chaos_parses_when_enabled() {
        let request = JobRequest::from_json(
            &body(
                ", \"chaos\": {\"panic_attempts\": 1, \"stall_attempts\": 2, \"stall_ms\": 50, \
                 \"ignore_cancel\": true, \"engine\": {\"panic_on\": 0}}",
            ),
            true,
        )
        .unwrap();
        let chaos = request.chaos.unwrap();
        assert_eq!(chaos.panic_attempts, 1);
        assert_eq!(chaos.stall_attempts, 2);
        assert_eq!(chaos.stall, Duration::from_millis(50));
        assert!(chaos.ignore_cancel);
        assert_eq!(chaos.engine.unwrap().panic_on, Some(0));
    }

    #[test]
    fn state_names_round_trip() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::from_name(state.name()), Some(state));
        }
        assert!(!JobState::Queued.is_terminal());
        assert!(JobState::Done.is_terminal());
    }
}
