//! A hand-rolled, bounded HTTP/1.1 subset: exactly what the identification
//! service needs and nothing more (no keep-alive, no chunked bodies, no
//! multi-line headers).
//!
//! The parser is written for hostile input — it reads raw sockets — so every
//! read is bounded by [`Limits`], every rejection maps to a clean 4xx/5xx
//! status, and no input can make it panic, allocate unboundedly, or read
//! forever. The hardening property test drives it with truncated, oversized
//! and byte-mutated requests.

use std::io::{BufRead, Read, Write};

/// Upper bounds on every part of a request the parser will buffer.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum request-line length in bytes.
    pub request_line: usize,
    /// Maximum total header-block length in bytes.
    pub headers: usize,
    /// Maximum body length in bytes (declared *or* delivered).
    pub body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            request_line: 8 * 1024,
            headers: 16 * 1024,
            body: 8 * 1024 * 1024,
        }
    }
}

/// A parsed request: method, origin-form target split into path and query,
/// and the (possibly empty) body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST` or `DELETE` (anything else is rejected as 501).
    pub method: String,
    /// The path component of the target, e.g. `/jobs/3`.
    pub path: String,
    /// The query component without the `?`, empty when absent.
    pub query: String,
    /// The request body, sized by `Content-Length`.
    pub body: Vec<u8>,
}

/// A request rejection, carrying the HTTP status it maps to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// The response status code (4xx or 5xx).
    pub status: u16,
    /// Short human-readable reason, returned in the response body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// The canonical reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Reads one line (terminated by `\n`, with an optional preceding `\r`) of
/// at most `limit` bytes. A line longer than the limit fails with
/// `over_limit`; EOF before any terminator fails as a truncated request.
fn read_line_bounded(
    reader: &mut impl BufRead,
    limit: usize,
    over_limit: HttpError,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut limited = reader.take(limit as u64 + 1);
    limited
        .read_until(b'\n', &mut line)
        .map_err(|e| HttpError::new(400, format!("read error: {e}")))?;
    match line.last() {
        Some(b'\n') => {
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
        }
        Some(_) if line.len() > limit => return Err(over_limit),
        Some(_) => return Err(HttpError::new(400, "truncated request")),
        None => return Err(HttpError::new(400, "empty request")),
    }
    if line.len() > limit {
        return Err(over_limit);
    }
    String::from_utf8(line).map_err(|_| HttpError::new(400, "non-UTF-8 request header"))
}

/// Reads and validates one request from `reader` under the given limits.
///
/// # Errors
///
/// [`HttpError`] with the 4xx/5xx status the rejection maps to: 400 for
/// malformed or truncated requests, 411 for a missing `Content-Length` on a
/// body-carrying method, 413/414/431 for limit violations, 501 for
/// unsupported methods or transfer encodings, 505 for unsupported HTTP
/// versions.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let request_line = read_line_bounded(
        reader,
        limits.request_line,
        HttpError::new(414, "request line too long"),
    )?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if !matches!(method.as_str(), "GET" | "POST" | "DELETE") {
        return Err(HttpError::new(
            501,
            format!("method {method} not implemented"),
        ));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::new(505, "unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(400, "target must be origin-form"));
    }

    let mut content_length: Option<usize> = None;
    let mut header_bytes = 0usize;
    loop {
        let remaining = limits.headers.saturating_sub(header_bytes);
        let line = read_line_bounded(
            reader,
            remaining,
            HttpError::new(431, "header block too large"),
        )?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len() + 2;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, "malformed header line"))?;
        let name = name.trim();
        let value = value.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, "malformed header name"));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let length: usize = value
                .parse()
                .map_err(|_| HttpError::new(400, "malformed Content-Length"))?;
            if content_length.is_some_and(|prev| prev != length) {
                return Err(HttpError::new(400, "conflicting Content-Length"));
            }
            content_length = Some(length);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::new(501, "transfer encodings not implemented"));
        }
    }

    let body = match content_length {
        None if method == "POST" => return Err(HttpError::new(411, "Content-Length required")),
        None | Some(0) => Vec::new(),
        Some(length) => {
            if length > limits.body {
                return Err(HttpError::new(413, "body too large"));
            }
            let mut body = vec![0u8; length];
            reader
                .read_exact(&mut body)
                .map_err(|_| HttpError::new(400, "truncated body"))?;
            body
        }
    };

    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target, String::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Writes one `Connection: close` JSON response.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason_phrase(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n{body}")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes()), &Limits::default())
    }

    #[test]
    fn get_without_body() {
        let request = parse("GET /jobs/3?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/jobs/3");
        assert_eq!(request.query, "verbose=1");
        assert!(request.body.is_empty());
    }

    #[test]
    fn post_reads_exact_body() {
        let request = parse("POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"\"}extra").unwrap();
        assert_eq!(request.body, b"{\"\"}");
    }

    #[test]
    fn post_without_length_is_411() {
        assert_eq!(
            parse("POST /jobs HTTP/1.1\r\n\r\n").unwrap_err().status,
            411
        );
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse("POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn status_mapping() {
        assert_eq!(parse("PUT /x HTTP/1.1\r\n\r\n").unwrap_err().status, 501);
        assert_eq!(parse("GET /x HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(parse("GET x HTTP/1.1\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert_eq!(parse(&long).unwrap_err().status, 414);
        let fat = format!("GET /x HTTP/1.1\r\nA: {}\r\n\r\n", "b".repeat(17 * 1024));
        assert_eq!(parse(&fat).unwrap_err().status, 431);
        let heavy = "POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(parse(heavy).unwrap_err().status, 413);
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 503, &[("Retry-After", "1")], "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
