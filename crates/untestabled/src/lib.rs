//! `untestabled` — the identification service.
//!
//! The paper frames untestable-fault identification as a step engineers
//! re-run continuously as a design evolves. This crate lifts the campaign
//! survivability primitives of the `atpg` crate (budgets, cancel tokens,
//! panic isolation, checkpoint/resume) one layer up, into a long-running
//! daemon that stays correct and available while individual jobs panic,
//! stall, or get killed mid-write:
//!
//! * a std-only HTTP/1.1 server (`POST /jobs`, `GET /jobs/:id`,
//!   `DELETE /jobs/:id`, `GET /healthz`, `GET /readyz`, `POST /shutdown`)
//!   with bounded request parsing — no crates.io dependencies;
//! * a bounded job queue with backpressure (`503` + `Retry-After` when
//!   full, never unbounded memory);
//! * a supervised worker pool: a panicked worker is torn down and
//!   respawned, a stalled one is cancelled and, failing that, abandoned;
//!   its job is retried with exponential backoff up to a budget and then
//!   quarantined as terminal `failed`;
//! * per-request deadlines and client cancellation share one mechanism —
//!   the campaign's `Budget`/`CancelToken`;
//! * crash-safe job state: per-job journals plus the per-verdict proof
//!   checkpoint make a `kill -9` mid-campaign resume bit-identically on
//!   restart;
//! * a content-addressed result cache keyed by the campaign fingerprint;
//!   corrupted entries are discarded and recomputed, never served.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;
pub mod service;

pub use http::{read_request, write_response, HttpError, Limits, Request};
pub use job::{ChaosSpec, JobProofConfig, JobRequest, JobState};
pub use online_untestable::JsonValue;
pub use queue::{JobQueue, QueueFull};
pub use server::serve;
pub use service::{Service, ServiceConfig, SubmitError};
