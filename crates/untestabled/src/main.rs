//! The `untestabled` daemon binary: flag parsing, bind, serve, drain,
//! exit 0.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use untestabled::{serve, Service, ServiceConfig};

const USAGE: &str = "usage: untestabled [options]

Run the identification service: accept identification jobs over HTTP, run
them on a supervised worker pool with retries and crash-safe state, and
serve their verdicts.

options:
  --addr <host:port>        listen address (default 127.0.0.1:3999; use
                            port 0 for an ephemeral port — the bound
                            address is printed on startup)
  --state-dir <dir>         persistent job state root
                            (default ./untestabled-state)
  --workers <n>             identification worker threads (default 2)
  --queue-capacity <n>      bounded queue size; submissions beyond it get
                            503 + Retry-After (default 16)
  --max-retries <n>         retries after a panicked/stalled attempt before
                            the job is quarantined as failed (default 2)
  --backoff-ms <n>          base retry backoff, doubled per attempt
                            (default 100)
  --attempt-timeout-ms <n>  watchdog limit per attempt; past it the attempt
                            is cancelled and, failing that, its worker is
                            torn down and respawned (default: off)
  --kill-grace-ms <n>       grace between the watchdog's cancel and the
                            teardown of an attempt ignoring it (default 500)
  --enable-chaos            accept failure-injection sections in submissions
                            (test harness only)
  -h, --help                this message

endpoints: POST /jobs, GET /jobs/:id, DELETE /jobs/:id, GET /healthz,
GET /readyz, POST /shutdown[?mode=now]

exit status: 0 after a drained shutdown, 1 on any startup or serve error";

struct Options {
    addr: String,
    service: ServiceConfig,
}

fn parse_options() -> Result<Option<Options>, String> {
    let mut options = Options {
        addr: "127.0.0.1:3999".to_string(),
        service: ServiceConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        let parse_ms = |flag: &str, text: String| {
            text.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--addr" => options.addr = value("--addr")?,
            "--state-dir" => options.service.state_dir = PathBuf::from(value("--state-dir")?),
            "--workers" => {
                options.service.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-capacity" => {
                options.service.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--max-retries" => {
                options.service.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--backoff-ms" => {
                options.service.backoff = parse_ms("--backoff-ms", value("--backoff-ms")?)?
            }
            "--attempt-timeout-ms" => {
                options.service.attempt_timeout = Some(parse_ms(
                    "--attempt-timeout-ms",
                    value("--attempt-timeout-ms")?,
                )?)
            }
            "--kill-grace-ms" => {
                options.service.kill_grace = parse_ms("--kill-grace-ms", value("--kill-grace-ms")?)?
            }
            "--enable-chaos" => options.service.enable_chaos = true,
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    Ok(Some(options))
}

fn run(options: Options) -> Result<(), String> {
    let listener = TcpListener::bind(&options.addr)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    let service = Service::start(options.service).map_err(|e| format!("cannot start: {e}"))?;
    // Scraped by scripts and tests, especially with `--addr 127.0.0.1:0`.
    println!("untestabled: listening on {bound}");
    serve(listener, service).map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    match parse_options() {
        Ok(Some(options)) => match run(options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("untestabled: {message}");
                ExitCode::FAILURE
            }
        },
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("untestabled: {message}");
            ExitCode::FAILURE
        }
    }
}
