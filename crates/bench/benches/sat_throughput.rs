//! Throughput of the SAT escalation stage alone: the faults the committed
//! PODEM configuration (backtrack 16) aborts on, replayed through one
//! single-threaded [`atpg::SatProver`] at the committed 20,000-conflict
//! budget — the workload behind the `sat_throughput` section of
//! `BENCH_flow.json` and the fourth CI perf-smoke gate.
//!
//! The preparation (structural rules + SBST fault simulation to select the
//! survivors, then a PODEM-only proof run to find its aborts) happens once
//! outside the measured region; the measured region is the SAT replay of
//! the first [`bench::SAT_STAGE_SLICE`] aborts (the full worklist's
//! conflict-limited tail costs minutes per iteration). The full-worklist
//! portfolio run is also printed next to the PODEM-only run so the
//! abort-column conversion is visible in the bench output.

use bench::{ProofCampaign, SAT_STAGE_SLICE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn sat_throughput(c: &mut Criterion) {
    let campaign = ProofCampaign::prepare();
    println!("survivors               : {}", campaign.survivors());

    let podem_only = campaign.run_podem_only();
    println!(
        "PODEM alone             : {:.3} s, {} proven, {} aborted",
        podem_only.wall_clock.as_secs_f64(),
        podem_only.proven,
        podem_only.aborted
    );
    let portfolio = campaign.run();
    println!(
        "PODEM/SAT portfolio     : {:.3} s, {} proven ({} by SAT), {} aborted",
        portfolio.wall_clock.as_secs_f64(),
        portfolio.proven,
        portfolio.sat_proven,
        portfolio.aborted
    );

    let worklist = campaign.sat_escalation_worklist();
    let slice = &worklist[..SAT_STAGE_SLICE.min(worklist.len())];
    let sat = campaign.run_sat_stage(slice);
    println!(
        "SAT stage (slice)       : {} of {} aborts in, {} proven, {} testable, {} unresolved, \
         {:.3} s ({:.3} ms per concluded fault; committed numbers in BENCH_flow.json)",
        sat.attempted,
        worklist.len(),
        sat.proven,
        sat.test_exists,
        sat.unresolved,
        sat.wall_clock.as_secs_f64(),
        sat.ms_per_concluded_fault()
    );

    let mut group = c.benchmark_group("sat_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(20));
    group.bench_function("podem_abort_worklist_small_soc", |b| {
        b.iter(|| campaign.run_sat_stage(slice))
    });
    group.finish();
}

criterion_group!(benches, sat_throughput);
criterion_main!(benches);
