//! Table I — per-source counts of on-line functionally untestable faults on
//! the full industrial-like SoC, and the runtime of the identification flow
//! that produces them.

use bench::{industrial_soc, print_table1, run_flow};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn table1(c: &mut Criterion) {
    let soc = industrial_soc();
    let report = run_flow(&soc);
    print_table1(&report);

    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("identification_flow_industrial", |b| {
        b.iter(|| run_flow(&soc))
    });
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
