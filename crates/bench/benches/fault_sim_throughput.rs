//! Fault-simulation throughput on the industrial SoC SBST campaign — the
//! workload behind the §4 coverage-grading step and the engine the compiled
//! simulator (`atpg::compiled`) was built to accelerate.
//!
//! The campaign grades a seeded random sample of stuck-at faults against the
//! full four-program SBST suite, observing only the system bus. The bench
//! reports the end-to-end campaign wall-clock plus derived detected-faults/s
//! and vector-cycles/s figures; `BENCH_faultsim.json` at the repo root keeps
//! the measured pre/post numbers of the compiled-engine PR.
//!
//! The workload itself is defined once in `bench::FaultsimCampaign` and
//! shared with the `perf_smoke` CI gate, so the committed numbers and the
//! gate always replay the same campaign.

use bench::{industrial_soc, FaultsimCampaign, FAULTSIM_SAMPLE, FAULTSIM_SEED};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn fault_sim_throughput(c: &mut Criterion) {
    let soc = industrial_soc();
    let campaign = FaultsimCampaign::prepare(&soc, FAULTSIM_SAMPLE, FAULTSIM_SEED);
    let total_cycles = campaign.total_cycles();

    // One measured reference run for the report.
    let result = campaign.run();
    let secs = result.wall_clock.as_secs_f64();
    println!("--- SBST fault-simulation campaign (industrial SoC) -----------");
    println!("nets                    : {}", soc.netlist.num_nets());
    println!("faults simulated        : {}", result.faults);
    println!("suite vector cycles     : {total_cycles}");
    println!("faults detected         : {}", result.detected);
    println!("campaign wall-clock     : {secs:.3} s");
    println!(
        "detected faults per sec : {:.1}",
        result.detected as f64 / secs
    );
    // Nominal figure: cycles × 63-fault chunks scheduled, ignoring the work
    // the engine skips via batch-dropping and per-chunk early exit.
    println!(
        "nominal chunk-cycles/sec: {:.0}",
        (total_cycles * result.faults.div_ceil(63)) as f64 / secs
    );

    let mut group = c.benchmark_group("fault_sim_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10));
    group.bench_function("sbst_campaign_industrial_soc_1260_faults", |b| {
        b.iter(|| campaign.run())
    });
    group.finish();
}

criterion_group!(benches, fault_sim_throughput);
criterion_main!(benches);
