//! Fault-simulation throughput on the industrial SoC SBST campaign — the
//! workload behind the §4 coverage-grading step and the engine the compiled
//! simulator (`atpg::compiled`) was built to accelerate.
//!
//! The campaign grades a seeded random sample of stuck-at faults against the
//! full four-program SBST suite, observing only the system bus. The bench
//! reports the end-to-end campaign wall-clock plus derived detected-faults/s
//! and vector-cycles/s figures; `BENCH_faultsim.json` at the repo root keeps
//! the measured pre/post numbers of the compiled-engine PR.

use atpg::FaultSim;
use bench::industrial_soc;
use cpu::sbst::{standard_suite, suite_stimuli};
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::{FaultList, StuckAt};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Faults graded by the campaign (a fixed seeded sample = 20 packed chunks).
const SAMPLE: usize = 1_260;

fn fault_sim_throughput(c: &mut Criterion) {
    let soc = industrial_soc();
    let suite = standard_suite();
    let stimuli = suite_stimuli(&suite, &soc.interface, 2_000);
    let sim = FaultSim::new(&soc.netlist).expect("fault simulator");
    let bus = &soc.interface.bus_output_ports;

    let mut rng = rand::rngs::StdRng::seed_from_u64(2013);
    let mut faults: Vec<StuckAt> = FaultList::full_universe(&soc.netlist).faults().to_vec();
    faults.shuffle(&mut rng);
    let sample: Vec<StuckAt> = faults.into_iter().take(SAMPLE).collect();

    let batches: Vec<&[atpg::InputVector]> = stimuli.iter().map(|s| s.vectors.as_slice()).collect();
    let total_cycles: usize = batches.iter().map(|b| b.len()).sum();

    let campaign = || sim.detect_batches(&sample, &batches, bus);

    // One measured reference run for the report.
    let start = Instant::now();
    let detected_mask = campaign();
    let elapsed = start.elapsed();
    let detected = detected_mask.iter().filter(|&&d| d).count();
    let secs = elapsed.as_secs_f64();
    println!("--- SBST fault-simulation campaign (industrial SoC) -----------");
    println!("nets                    : {}", soc.netlist.num_nets());
    println!("faults simulated        : {}", sample.len());
    println!("suite vector cycles     : {total_cycles}");
    println!("faults detected         : {detected}");
    println!("campaign wall-clock     : {secs:.3} s");
    println!("detected faults per sec : {:.1}", detected as f64 / secs);
    // Nominal figure: cycles × 63-fault chunks scheduled, ignoring the work
    // the engine skips via batch-dropping and per-chunk early exit.
    println!(
        "nominal chunk-cycles/sec: {:.0}",
        (total_cycles * sample.len().div_ceil(63)) as f64 / secs
    );

    let mut group = c.benchmark_group("fault_sim_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(10));
    group.bench_function("sbst_campaign_industrial_soc_1260_faults", |b| {
        b.iter(campaign)
    });
    group.finish();
}

criterion_group!(benches, fault_sim_throughput);
criterion_main!(benches);
