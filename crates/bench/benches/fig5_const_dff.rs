//! Figure 5 — a D flip-flop (with active-low reset) whose value is constant 0
//! in mission mode: after tying its input and output, the structural analysis
//! leaves only the D stuck-at-1 and Q stuck-at-1 faults testable.

use atpg::analysis::StructuralAnalysis;
use atpg::ConstraintSet;
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::{FaultClass, FaultList, StuckAt};
use netlist::{NetlistBuilder, Reset};
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    // A single DFF with reset, fed and observed by functional logic.
    let mut b = NetlistBuilder::new("fig5");
    let ck = b.input("ck");
    let rstn = b.input("rstn");
    let d_in = b.input("d");
    let q = b.dff_r(d_in, ck, rstn, Reset::ActiveLow);
    let y = b.buf(q);
    b.output("y", y);
    let n = b.finish();
    let ff = n.sequential_cells()[0];

    // Mission configuration: the register always holds 0, so both its data
    // input and its output are tied to 0 (§3.3 case 1.a).
    let mut constraints = ConstraintSet::full_scan();
    constraints.tie_net(d_in, false);
    constraints.tie_net(q, false);
    let run = || {
        let mut faults = FaultList::full_universe(&n);
        StructuralAnalysis::with_constraints(constraints.clone())
            .run(&n, &mut faults)
            .expect("analysis");
        faults
    };
    let faults = run();

    println!("--- reproduced Figure 5 (constant DFF fault classification) ---");
    let d_pin = n.cell(ff).kind().data_pin().unwrap();
    let cases = [
        ("D stuck-at-0", StuckAt::input(ff, d_pin, false)),
        ("D stuck-at-1", StuckAt::input(ff, d_pin, true)),
        ("Q stuck-at-0", StuckAt::output(ff, false)),
        ("Q stuck-at-1", StuckAt::output(ff, true)),
    ];
    for (label, fault) in cases {
        println!("  {label:<15} {}", faults.class_of(fault).unwrap());
    }
    // The paper: "the structural analysis returns only 2 testable faults,
    // stuck-at-1 on D and stuck-at-1 on Q".
    assert!(faults.class_of(cases[0].1).unwrap().is_untestable());
    assert!(faults.class_of(cases[2].1).unwrap().is_untestable());
    assert_eq!(faults.class_of(cases[1].1), Some(FaultClass::Undetected));
    assert_eq!(faults.class_of(cases[3].1), Some(FaultClass::Undetected));

    let mut group = c.benchmark_group("fig5");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("const_dff_analysis", |b| b.iter(run));
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
