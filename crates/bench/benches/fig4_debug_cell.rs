//! Figure 4 — the debug-wrapped flip-flop: with the debug enable tied off and
//! the debug output unobserved, the DE stuck-at-0, the DI stuck-at faults and
//! every DO fault become on-line functionally untestable.

use atpg::analysis::StructuralAnalysis;
use atpg::ConstraintSet;
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::{FaultList, StuckAt};
use netlist::NetlistBuilder;
use std::time::Duration;

struct Fig4 {
    netlist: netlist::Netlist,
    mux: netlist::CellId,
    obs_buf: netlist::CellId,
    de: netlist::NetId,
    dbg_po: netlist::CellId,
}

fn build() -> Fig4 {
    // The Fig. 4 structure: FI/DI multiplexed by DE in front of a flip-flop,
    // whose value is also exported on a debug output DO.
    let mut b = NetlistBuilder::new("fig4");
    let ck = b.input("ck");
    let fi = b.input("fi");
    let di = b.input("di");
    let de = b.input("de");
    let d = b.mux2(fi, di, de);
    let q = b.dff(d, ck);
    let fo = b.buf(q);
    let dbg = b.buf(q);
    b.output("fo", fo);
    let dbg_po = b.output("do", dbg);
    let n = b.finish();
    Fig4 {
        mux: n.driver_of(d).unwrap(),
        obs_buf: n.driver_of(dbg).unwrap(),
        de,
        dbg_po,
        netlist: n,
    }
}

fn fig4(c: &mut Criterion) {
    let f = build();
    let mut constraints = ConstraintSet::full_scan();
    constraints.tie_net(f.de, false);
    constraints.mask_output(f.dbg_po);
    let run = || {
        let mut faults = FaultList::full_universe(&f.netlist);
        StructuralAnalysis::with_constraints(constraints.clone())
            .run(&f.netlist, &mut faults)
            .expect("analysis");
        faults
    };
    let faults = run();

    println!("--- reproduced Figure 4 (debug cell fault classification) ---");
    let show = |label: &str, fault: StuckAt| {
        let class = faults.class_of(fault).unwrap();
        println!("  {label:<18} {class}");
        class
    };
    // DE is the select pin (pin 2) of the mux, DI is pin 1, DO is the buffer.
    let de_sa0 = show("DE stuck-at-0", StuckAt::input(f.mux, 2, false));
    let di_sa0 = show("DI stuck-at-0", StuckAt::input(f.mux, 1, false));
    let di_sa1 = show("DI stuck-at-1", StuckAt::input(f.mux, 1, true));
    let do_sa0 = show("DO stuck-at-0", StuckAt::output(f.obs_buf, false));
    let do_sa1 = show("DO stuck-at-1", StuckAt::output(f.obs_buf, true));
    let de_sa1 = show("DE stuck-at-1", StuckAt::input(f.mux, 2, true));
    assert!(de_sa0.is_untestable());
    assert!(di_sa0.is_untestable() || di_sa1.is_untestable());
    assert!(do_sa0.is_untestable() && do_sa1.is_untestable());
    assert!(!de_sa1.is_untestable(), "DE stuck-at-1 must stay testable");

    let mut group = c.benchmark_group("fig4");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("debug_cell_analysis", |b| b.iter(run));
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
