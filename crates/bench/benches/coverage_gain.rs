//! §4 coverage claim — pruning the identified faults raises the SBST
//! coverage figure (the paper reports ≈ +13 percentage points). The bench
//! grades the SBST suite against a fault sample on the reduced SoC and
//! reports the coverage before/after pruning, then measures the fault-
//! simulation throughput.

use atpg::FaultSim;
use bench::small_soc;
use cpu::sbst::{grade_suite, standard_suite, suite_stimuli};
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::{FaultClass, StuckAt};
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

const SAMPLE: usize = 800;

fn coverage_gain(c: &mut Criterion) {
    let soc = small_soc();
    let (report, classified) = IdentificationFlow::new(FlowConfig::default())
        .run_with_faults(&soc)
        .expect("flow");

    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut faults: Vec<StuckAt> = classified.faults().to_vec();
    faults.shuffle(&mut rng);
    let sample: Vec<StuckAt> = faults.into_iter().take(SAMPLE).collect();

    let suite = standard_suite();
    let stimuli = suite_stimuli(&suite, &soc.interface, 2_000);
    let sim = FaultSim::new(&soc.netlist).expect("fault simulator");
    // Only the system bus is observable during the on-line test (§4).
    let bus = &soc.interface.bus_output_ports;
    let detected = grade_suite(&sim, &stimuli, &sample, bus);
    let detected_count = detected.iter().filter(|&&d| d).count();
    let untestable = sample
        .iter()
        .filter(|&&f| {
            classified
                .class_of(f)
                .map(FaultClass::is_untestable)
                .unwrap_or(false)
        })
        .count();
    let before = detected_count as f64 / sample.len() as f64;
    let after = detected_count as f64 / (sample.len() - untestable) as f64;
    println!("--- reproduced §4 coverage gain --------------------------------");
    println!(
        "identified on-line untestable (full design): {}",
        report.total_untestable()
    );
    println!("sampled faults                : {}", sample.len());
    println!("detected by the SBST suite    : {detected_count}");
    println!("untestable within the sample  : {untestable}");
    println!("coverage before pruning       : {:.1}%", before * 100.0);
    println!("coverage after pruning        : {:.1}%", after * 100.0);
    println!(
        "gain                          : {:+.1} points",
        (after - before) * 100.0
    );
    assert!(after >= before);

    // Benchmark the grading of one program against a smaller sample.
    let small_sample: Vec<StuckAt> = sample.iter().copied().take(126).collect();
    let alu_vectors = &stimuli[0].vectors;
    let mut group = c.benchmark_group("coverage_gain");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("fault_sim_alu_program_126_faults", |b| {
        b.iter(|| sim.detect_at(&small_sample, alu_vectors, bus).len())
    });
    group.finish();
}

criterion_group!(benches, coverage_gain);
criterion_main!(benches);
