//! Figure 1 — the containment of the fault categories in the on-line fault
//! universe: structurally untestable ⊆ functionally untestable ⊆ on-line
//! functionally untestable ⊆ fault universe.

use bench::small_soc;
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::FaultList;
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use std::time::Duration;

fn fig1(c: &mut Criterion) {
    let soc = small_soc();
    let (report, faults) = IdentificationFlow::new(FlowConfig::default())
        .run_with_faults(&soc)
        .expect("flow");

    let universe = faults.len();
    let structurally = report.baseline_structural;
    // "Functionally untestable" (without the on-line restrictions) is
    // approximated by the structural class plus the memory-map class: those
    // faults have no test program even with full pin access, whereas the
    // scan/debug classes are testable until the test structures are tied off.
    let functionally = structurally + report.count_for(faultmodel::UntestableSource::MemoryMap);
    let online = structurally + report.total_untestable();

    println!("--- reproduced Figure 1 (nested fault categories) ---");
    println!("fault universe                      : {universe}");
    println!("  on-line functionally untestable   : {online}");
    println!("    functionally untestable         : {functionally}");
    println!("      structurally untestable       : {structurally}");
    assert!(structurally <= functionally);
    assert!(functionally <= online);
    assert!(online <= universe);

    let mut group = c.benchmark_group("fig1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fault_universe_generation", |b| {
        b.iter(|| FaultList::full_universe(&soc.netlist).len())
    });
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
