//! Figure 6 — tying the output of a mission-constant address register lets
//! the tied value propagate into the downstream combinational logic, exposing
//! further structurally untestable faults there.

use atpg::analysis::StructuralAnalysis;
use atpg::ConstraintSet;
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::FaultList;
use netlist::NetlistBuilder;
use std::time::Duration;

fn fig6(c: &mut Criterion) {
    // An 8-bit "address register" feeding an adder and a comparator; the high
    // nibble of the register is constant in mission mode.
    let mut b = NetlistBuilder::new("fig6");
    let ck = b.input("ck");
    let d = b.input_bus("addr_d", 8);
    let q = b.register(&d, ck);
    let offset = b.input_bus("offset", 8);
    let zero = b.tie0();
    let (sum, _) = b.ripple_adder(&q, &offset, zero);
    let in_range = b.eq_const(&q, 0x12);
    b.output_bus("effective_addr", &sum);
    b.output("in_range", in_range);
    let n = b.finish();

    // Tie the high nibble of the register (input and output), as the §3.3
    // manipulation does for frozen address bits.
    let mut constraints = ConstraintSet::full_scan();
    for bit in 4..8 {
        constraints.tie_net(q[bit], false);
        constraints.tie_net(d[bit], false);
    }
    let run_tied = || {
        let mut faults = FaultList::full_universe(&n);
        let outcome = StructuralAnalysis::with_constraints(constraints.clone())
            .run(&n, &mut faults)
            .expect("analysis");
        outcome.total_untestable()
    };
    let run_baseline = || {
        let mut faults = FaultList::full_universe(&n);
        let outcome = StructuralAnalysis::with_constraints(ConstraintSet::full_scan())
            .run(&n, &mut faults)
            .expect("analysis");
        outcome.total_untestable()
    };

    let baseline = run_baseline();
    let tied = run_tied();
    println!("--- reproduced Figure 6 (tie propagation into downstream logic) ---");
    println!("untestable faults without ties : {baseline}");
    println!("untestable faults with ties    : {tied}");
    println!("additional faults exposed      : {}", tied - baseline);
    // The tied value must reach beyond the register itself: more faults than
    // just the 4*2 tied flip-flop outputs and 4*2 tied inputs are affected.
    assert!(tied > baseline + 16);

    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("tie_propagation_analysis", |b| b.iter(run_tied));
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
