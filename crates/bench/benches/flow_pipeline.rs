//! End-to-end wall-clock of the staged identification pipeline on the
//! reduced SoC — the workload behind `BENCH_flow.json` and the CI perf-smoke
//! gate.
//!
//! The pipeline is the full §4 loop: baseline structural analysis, the four
//! §3 screening rules, compiled-engine fault simulation of the SBST suite
//! (dropping everything the suite detects), and the constraint-aware PODEM
//! proof stage over a budgeted slice of the survivors. The bench prints the
//! per-stage fault-count deltas and timings, then measures the end-to-end
//! flow runtime.

use bench::{print_stage_table, quick_pipeline_config, small_soc};
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::UntestableSource;
use online_untestable::flow::IdentificationFlow;
use std::time::{Duration, Instant};

fn flow_pipeline(c: &mut Criterion) {
    let soc = small_soc();
    let flow = IdentificationFlow::new(quick_pipeline_config());

    // One measured reference run for the report.
    let start = Instant::now();
    let report = flow.run(&soc).expect("identification flow");
    let elapsed = start.elapsed();
    print_stage_table(&report);
    println!(
        "atpg-proof bucket       : {} faults proven untestable",
        report.count_for(UntestableSource::AtpgProof)
    );
    println!(
        "flow wall-clock         : {:.3} s (reference run; committed number in BENCH_flow.json)",
        elapsed.as_secs_f64()
    );

    let mut group = c.benchmark_group("flow_pipeline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(15));
    group.bench_function("staged_pipeline_small_soc", |b| {
        b.iter(|| flow.run(&soc).expect("identification flow"))
    });
    group.finish();
}

criterion_group!(benches, flow_pipeline);
criterion_main!(benches);
