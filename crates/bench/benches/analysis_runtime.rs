//! §4 runtime claim — "the modified circuit is analyzed by Tetramax in less
//! than 1 second": measure the runtime of our structural untestability
//! analysis on the manipulated industrial-like SoC.

use atpg::analysis::{AnalysisConfig, StructuralAnalysis};
use bench::industrial_soc;
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::FaultList;
use online_untestable::rules::debug_control_manipulation;
use std::time::{Duration, Instant};

fn analysis_runtime(c: &mut Criterion) {
    let soc = industrial_soc();
    let tied: Vec<(netlist::NetId, bool)> = soc.mission_tied_inputs().into_iter().collect();
    let manipulation = debug_control_manipulation(&tied);
    let config = AnalysisConfig {
        constraints: manipulation.to_constraints(),
        ..AnalysisConfig::default()
    };

    // One measured reference run for the report.
    let start = Instant::now();
    let mut faults = FaultList::full_universe(&soc.netlist);
    let outcome = StructuralAnalysis::new(AnalysisConfig {
        constraints: manipulation.to_constraints(),
        ..AnalysisConfig::default()
    })
    .run(&soc.netlist, &mut faults)
    .expect("analysis");
    let elapsed = start.elapsed();
    println!("--- reproduced §4 runtime claim -------------------------------");
    println!("fault universe          : {}", faults.len());
    println!("untestable identified   : {}", outcome.total_untestable());
    println!("analysis wall-clock     : {:.3} s", elapsed.as_secs_f64());
    println!("paper (TetraMAX)        : < 1 s");
    assert!(
        elapsed < Duration::from_secs(5),
        "analysis should complete within a few seconds"
    );

    let mut group = c.benchmark_group("analysis_runtime");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("structural_analysis_manipulated_soc", |b| {
        b.iter(|| {
            let mut faults = FaultList::full_universe(&soc.netlist);
            StructuralAnalysis::new(config.clone())
                .run(&soc.netlist, &mut faults)
                .expect("analysis")
                .total_untestable()
        })
    });
    group.finish();
}

criterion_group!(benches, analysis_runtime);
criterion_main!(benches);
