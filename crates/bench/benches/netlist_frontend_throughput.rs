//! Wall-clock of the netlist frontends: parse + design-rule validation of
//! the largest committed `.bench` circuit, plus a write→parse round-trip of
//! the industrial SoC through the structural Verilog frontend — the two
//! ingestion paths a serving-scale identification service would sit behind.

use bench::industrial_soc;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlist::frontend::{parse_netlist, Format};
use netlist::stats::stats;
use netlist::validate::{validate, ValidateOptions};
use netlist::verilog::write_verilog;
use std::time::{Duration, Instant};

fn largest_committed_circuit() -> (String, String) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../circuits");
    let mut largest: Option<(u64, String, String)> = None;
    for entry in std::fs::read_dir(&dir).expect("circuits/ exists") {
        let path = entry.expect("read_dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("bench") {
            continue;
        }
        let len = path.metadata().expect("metadata").len();
        if largest.as_ref().is_none_or(|(l, _, _)| len > *l) {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("read circuit");
            largest = Some((len, name, text));
        }
    }
    let (_, name, text) = largest.expect("at least one committed .bench circuit");
    (name, text)
}

fn parse_and_validate(text: &str, format: Format) -> netlist::Netlist {
    let netlist = parse_netlist(text, format).expect("committed circuit parses");
    let issues = validate(&netlist, ValidateOptions::default());
    assert!(issues.is_empty(), "{issues:?}");
    netlist
}

fn frontend_throughput(c: &mut Criterion) {
    let (name, text) = largest_committed_circuit();
    let netlist = parse_and_validate(&text, Format::Bench);
    let s = stats(&netlist);

    // One measured reference run for the report.
    let start = Instant::now();
    let runs = 200;
    for _ in 0..runs {
        black_box(parse_and_validate(&text, Format::Bench));
    }
    let per_parse = start.elapsed() / runs;
    println!("largest committed circuit : {name}");
    println!(
        "size                      : {} cells, {} nets, {} bytes of text",
        netlist.num_cells(),
        netlist.num_nets(),
        text.len()
    );
    println!(
        "parse+validate            : {:.3} ms ({:.1} Mcells/s)",
        per_parse.as_secs_f64() * 1e3,
        s.combinational_cells as f64 / per_parse.as_secs_f64() / 1e6
    );

    let soc = industrial_soc();
    let soc_text = write_verilog(&soc.netlist);
    println!(
        "industrial SoC Verilog    : {} cells, {} bytes of text",
        soc.netlist.num_cells(),
        soc_text.len()
    );

    let mut group = c.benchmark_group("netlist_frontend_throughput");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function(format!("bench_parse_validate_{name}"), |b| {
        b.iter(|| parse_and_validate(black_box(&text), Format::Bench))
    });
    group.bench_function("verilog_parse_validate_industrial_soc", |b| {
        b.iter(|| parse_and_validate(black_box(&soc_text), Format::Verilog))
    });
    group.finish();
}

criterion_group!(benches, frontend_throughput);
criterion_main!(benches);
