//! Memory-map ablation (§3.3) — the number of memory-map-induced on-line
//! untestable faults as a function of the mapped address-space size, from the
//! paper's small explanatory map to a full 4 GiB map.

use cpu::mem::{MemRegion, MemoryMap, RegionKind};
use cpu::soc::SocBuilder;
use criterion::{criterion_group, criterion_main, Criterion};
use faultmodel::UntestableSource;
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use std::time::Duration;

fn memmap_only_config() -> FlowConfig {
    FlowConfig {
        run_scan: false,
        run_debug_control: false,
        run_debug_observation: false,
        ..FlowConfig::default()
    }
}

fn memmap_sweep(c: &mut Criterion) {
    let maps = vec![
        ("example_5KiB", MemoryMap::date13_example()),
        ("case_study_160KiB", MemoryMap::date13_case_study()),
        (
            "large_32MiB",
            MemoryMap::new(vec![
                MemRegion::new(0x0000_0000, 0x0100_0000, RegionKind::Flash),
                MemRegion::new(0x4000_0000, 0x0100_0000, RegionKind::Ram),
            ]),
        ),
        (
            "full_4GiB",
            MemoryMap::new(vec![MemRegion::new(0, u32::MAX, RegionKind::Ram)]),
        ),
    ];

    println!("--- memory-map sweep (reduced SoC) -----------------------------");
    println!(
        "{:<22} {:>12} {:>10} {:>8}",
        "map", "frozen bits", "faults", "[%]"
    );
    let mut results = Vec::new();
    for (name, map) in &maps {
        let soc = SocBuilder::small().memory_map(map.clone()).build();
        let report = IdentificationFlow::new(memmap_only_config())
            .run(&soc)
            .expect("flow");
        let count = report.count_for(UntestableSource::MemoryMap);
        println!(
            "{:<22} {:>12} {:>10} {:>7.2}%",
            name,
            map.constant_address_bits().len(),
            count,
            100.0 * count as f64 / report.total_faults as f64
        );
        results.push((name.to_string(), count));
    }
    // Shape check: fewer frozen bits → fewer memory-map untestable faults.
    assert!(results[0].1 >= results[1].1);
    assert!(results[1].1 >= results[2].1);
    assert_eq!(results[3].1, 0, "a full map freezes no address bit");

    let soc = SocBuilder::small().build();
    let mut group = c.benchmark_group("memmap_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("memory_map_rule_case_study", |b| {
        b.iter(|| {
            IdentificationFlow::new(memmap_only_config())
                .run(&soc)
                .expect("flow")
                .count_for(UntestableSource::MemoryMap)
        })
    });
    group.finish();
}

criterion_group!(benches, memmap_sweep);
criterion_main!(benches);
