//! Figure 2 — the mux-scan flip-flop: which of the faults on its SI, SE and
//! SO connections are on-line functionally untestable. The paper's analysis
//! concludes that only the SE stuck-at-1 fault must be kept.

use criterion::{criterion_group, criterion_main, Criterion};
use dft::scan::{insert_scan, ScanConfig};
use dft::trace::{find_scan_in_ports, trace_scan_chains};
use faultmodel::StuckAt;
use netlist::NetlistBuilder;
use online_untestable::rules::scan_rule;
use std::time::Duration;

fn single_scan_cell() -> (netlist::Netlist, netlist::CellId) {
    let mut b = NetlistBuilder::new("fig2");
    let ck = b.input("ck");
    let d = b.input("d");
    let q = b.dff(d, ck);
    b.output("q", q);
    let mut n = b.finish();
    insert_scan(
        &mut n,
        &ScanConfig {
            num_chains: 1,
            insert_path_buffers: false,
            ..ScanConfig::default()
        },
    );
    let ff = n.sequential_cells()[0];
    (n, ff)
}

fn fig2(c: &mut Criterion) {
    let (n, ff) = single_scan_cell();
    let ports = find_scan_in_ports(&n, "scan_in");
    let trace = trace_scan_chains(&n, &ports, "scan_out").expect("trace");
    let result = scan_rule(&n, &trace, false);

    let kind = n.cell(ff).kind();
    let si = kind.scan_in_pin().unwrap();
    let se = kind.scan_enable_pin().unwrap();
    println!("--- reproduced Figure 2 (mux-scan cell fault classification) ---");
    for (label, fault) in [
        ("SI stuck-at-0", StuckAt::input(ff, si, false)),
        ("SI stuck-at-1", StuckAt::input(ff, si, true)),
        ("SE stuck-at-0", StuckAt::input(ff, se, false)),
        ("SE stuck-at-1", StuckAt::input(ff, se, true)),
    ] {
        let pruned = result.untestable.contains(&fault);
        println!(
            "  {label:<15} {}",
            if pruned {
                "on-line functionally untestable (pruned)"
            } else {
                "kept in the fault list"
            }
        );
    }
    // The paper's conclusion: SI s-a-0/1 and SE s-a-0 are pruned, SE s-a-1 is
    // the only one that needs to stay.
    assert!(result.untestable.contains(&StuckAt::input(ff, si, false)));
    assert!(result.untestable.contains(&StuckAt::input(ff, si, true)));
    assert!(result.untestable.contains(&StuckAt::input(ff, se, false)));
    assert!(!result.untestable.contains(&StuckAt::input(ff, se, true)));

    let mut group = c.benchmark_group("fig2");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("scan_rule_single_cell", |b| {
        b.iter(|| scan_rule(&n, &trace, false).untestable.len())
    });
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
