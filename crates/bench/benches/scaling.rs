//! Scaling ablation — identification-flow runtime and result size as a
//! function of the processor-core size (register-file depth), demonstrating
//! that the method stays cheap as the design grows.

use cpu::core_gen::CoreConfig;
use cpu::soc::SocBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netlist::stats::stats;
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use std::time::Duration;

fn scaling(c: &mut Criterion) {
    let sizes = [8usize, 16, 32];
    println!("--- scaling: core size vs identification results ---------------");
    println!(
        "{:>9} {:>10} {:>10} {:>12} {:>8}",
        "registers", "cells", "faults", "untestable", "[%]"
    );

    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for &num_regs in &sizes {
        let soc = SocBuilder::small()
            .core_config(CoreConfig {
                num_regs,
                btb_entries: 4,
                include_cycle_counter: true,
            })
            .build();
        let s = stats(&soc.netlist);
        let report = IdentificationFlow::new(FlowConfig::default())
            .run(&soc)
            .expect("flow");
        println!(
            "{:>9} {:>10} {:>10} {:>12} {:>7.1}%",
            num_regs,
            s.total_cells,
            report.total_faults,
            report.total_untestable(),
            100.0 * report.untestable_fraction()
        );
        group.bench_with_input(
            BenchmarkId::new("identification_flow", num_regs),
            &soc,
            |b, soc| {
                b.iter(|| {
                    IdentificationFlow::new(FlowConfig::default())
                        .run(soc)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
