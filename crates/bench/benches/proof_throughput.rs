//! Throughput of the cone-clipped, SCOAP-guided, collapse-scheduled proof
//! stage over the full survivor set of the reduced SoC — the workload behind
//! the `proof_throughput` section of `BENCH_flow.json` and the third CI
//! perf-smoke gate.
//!
//! The preparation (structural rules + SBST fault simulation, which select
//! the genuine survivors) runs once outside the measured region; the
//! measured region is a single-threaded [`atpg::proof::prove_faults`] run
//! under the mission constraints. The reference run also replays the
//! pre-acceleration engine (no clipping, no SCOAP, no X-path, no collapse
//! scheduling) so the speedup per proven fault is printed next to the
//! committed number.

use bench::ProofCampaign;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn proof_throughput(c: &mut Criterion) {
    let campaign = ProofCampaign::prepare();
    println!("survivors               : {}", campaign.survivors());

    // One measured reference run of each engine for the report.
    let reference = campaign.run_reference_engine();
    println!(
        "pre-acceleration engine : {:.3} s, {} proven, {:.3} ms per proven fault",
        reference.wall_clock.as_secs_f64(),
        reference.proven,
        reference.ms_per_proven_fault()
    );
    let accelerated = campaign.run();
    println!(
        "accelerated engine      : {:.3} s, {} proven, {:.3} ms per proven fault",
        accelerated.wall_clock.as_secs_f64(),
        accelerated.proven,
        accelerated.ms_per_proven_fault()
    );
    println!(
        "speedup                 : {:.2}x wall-clock, {:.2}x per proven fault \
         (committed numbers in BENCH_flow.json)",
        reference.wall_clock.as_secs_f64() / accelerated.wall_clock.as_secs_f64(),
        reference.ms_per_proven_fault() / accelerated.ms_per_proven_fault()
    );

    let mut group = c.benchmark_group("proof_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(20));
    group.bench_function("full_survivor_set_small_soc", |b| b.iter(|| campaign.run()));
    group.finish();
}

criterion_group!(benches, proof_throughput);
criterion_main!(benches);
