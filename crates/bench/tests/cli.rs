//! End-to-end tests of the `untestable` driver binary: clean one-line
//! diagnostics (exit 1) on bad inputs, the distinct exit status (2) when a
//! proof-stage deadline leaves faults unresolved, and the
//! checkpoint/resume flags.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn circuit(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../circuits")
        .join(name)
}

fn untestable(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_untestable"))
        .args(args)
        .output()
        .expect("driver binary runs")
}

/// A self-cleaning per-test temp directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("untestable-cli-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn stderr_line(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).trim().to_string()
}

/// The diagnostic contract: exactly one stderr line, prefixed with the tool
/// name, and no panic backtrace.
fn assert_one_line_diagnostic(output: &Output) {
    let stderr = stderr_line(output);
    assert_eq!(
        stderr.lines().count(),
        1,
        "multi-line diagnostic:\n{stderr}"
    );
    assert!(
        stderr.starts_with("untestable: "),
        "missing tool prefix: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "diagnostic leaks a backtrace: {stderr}"
    );
}

#[test]
fn missing_file_fails_with_a_one_line_diagnostic() {
    let output = untestable(&["/nonexistent/design.bench"]);
    assert_eq!(output.status.code(), Some(1));
    assert_one_line_diagnostic(&output);
    assert!(stderr_line(&output).contains("cannot read"));
}

#[test]
fn parse_error_is_positioned_and_exits_one() {
    let dir = TempDir::new("parse-error");
    let bad = dir.file("broken.bench");
    std::fs::write(&bad, "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap();
    let output = untestable(&[bad.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
    assert_one_line_diagnostic(&output);
    let stderr = stderr_line(&output);
    assert!(
        stderr.contains("line 3"),
        "diagnostic lost the source position: {stderr}"
    );
}

#[test]
fn expired_stage_deadline_exits_two() {
    let output = untestable(&[
        circuit("s27.bench").to_str().unwrap(),
        "--stage-timeout",
        "0",
        "--threads",
        "1",
    ]);
    assert_eq!(
        output.status.code(),
        Some(2),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("proof-stage deadline expired"),
        "no deadline notice:\n{stdout}"
    );
    assert!(
        stdout.contains("timeout"),
        "no abort attribution:\n{stdout}"
    );
}

#[test]
fn checkpoint_roundtrip_resumes_and_mismatch_is_refused() {
    let dir = TempDir::new("checkpoint");
    let ckpt = dir.file("s27.ckpt");
    let s27 = circuit("s27.bench");
    let args = [
        s27.to_str().unwrap(),
        "--threads",
        "1",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ];

    // Wall-clock timings differ run to run; everything else must not.
    fn strip_timings(stdout: &[u8]) -> String {
        String::from_utf8_lossy(stdout)
            .lines()
            .filter(|line| !line.ends_with(" ms"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    let first = untestable(&args);
    assert_eq!(first.status.code(), Some(0), "{}", stderr_line(&first));
    assert!(ckpt.is_file(), "checkpoint file was not created");

    // Re-running against the populated checkpoint reproduces the report.
    let second = untestable(&args);
    assert_eq!(second.status.code(), Some(0), "{}", stderr_line(&second));
    assert_eq!(
        strip_timings(&first.stdout),
        strip_timings(&second.stdout),
        "resumed report diverged"
    );

    // A different proof configuration is a different campaign: the stale
    // checkpoint must be refused, not silently merged.
    let mismatched = untestable(&[
        s27.to_str().unwrap(),
        "--threads",
        "1",
        "--backtrack",
        "64",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(mismatched.status.code(), Some(1));
    assert_one_line_diagnostic(&mismatched);
    assert!(
        stderr_line(&mismatched).contains("fingerprint mismatch"),
        "wrong refusal diagnostic: {}",
        stderr_line(&mismatched)
    );
}

#[test]
fn bad_timeout_values_are_rejected_cleanly() {
    for value in ["-1", "forever"] {
        let output = untestable(&[
            circuit("s27.bench").to_str().unwrap(),
            "--stage-timeout",
            value,
        ]);
        assert_eq!(output.status.code(), Some(1), "value {value}");
        let stderr = stderr_line(&output);
        assert!(
            stderr.contains("--stage-timeout"),
            "diagnostic does not name the flag: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "panic leaked: {stderr}");
    }
}

#[test]
fn json_flag_prints_one_parseable_document_and_nothing_else() {
    use online_untestable::JsonValue;

    let output = untestable(&[
        circuit("s27.bench").to_str().unwrap(),
        "--threads",
        "1",
        "--json",
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr_line(&output));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        stdout.trim().lines().count(),
        1,
        "--json must print exactly one line:\n{stdout}"
    );
    let doc = JsonValue::parse(stdout.trim()).expect("stdout is one JSON document");
    assert!(doc.get("total_faults").and_then(JsonValue::as_u64).unwrap() > 0);
    assert!(doc.get("counts").is_some());
    assert!(doc.get("engine_breakdown").is_some());
    // The schema is the one the untestabled service serves: phase timings
    // are the only run-dependent fields.
    assert!(doc.get("phases").is_some());

    // A --no-proof run still emits the document, without a breakdown.
    let screened = untestable(&[
        circuit("s27.bench").to_str().unwrap(),
        "--no-proof",
        "--json",
    ]);
    assert_eq!(screened.status.code(), Some(0));
    let doc = JsonValue::parse(String::from_utf8_lossy(&screened.stdout).trim()).unwrap();
    assert!(doc.get("engine_breakdown").is_none());
}

#[test]
fn client_subcommands_round_trip_against_a_service() {
    use online_untestable::JsonValue;
    use std::net::TcpListener;
    use std::sync::Arc;
    use untestabled::{serve, Service, ServiceConfig};

    let dir = TempDir::new("client");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Service::start(ServiceConfig {
        state_dir: dir.file("state"),
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let serve_service = Arc::clone(&service);
    let serve_thread = std::thread::spawn(move || serve(listener, serve_service));

    // submit --wait runs the job to conclusion and prints its final status.
    let submitted = untestable(&[
        "submit",
        circuit("s27.bench").to_str().unwrap(),
        "--addr",
        &addr,
        "--threads",
        "1",
        "--wait",
    ]);
    assert_eq!(
        submitted.status.code(),
        Some(0),
        "stderr: {}",
        stderr_line(&submitted)
    );
    let doc = JsonValue::parse(String::from_utf8_lossy(&submitted.stdout).trim()).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));
    let id = doc.get("id").and_then(JsonValue::as_u64).unwrap();

    // job prints the same status document.
    let polled = untestable(&["job", &id.to_string(), "--addr", &addr]);
    assert_eq!(polled.status.code(), Some(0));
    let doc = JsonValue::parse(String::from_utf8_lossy(&polled.stdout).trim()).unwrap();
    assert_eq!(doc.get("state").and_then(JsonValue::as_str), Some("done"));

    // Unknown ids are a refusal (404), mapped to exit 1.
    let missing = untestable(&["job", "9999", "--addr", &addr]);
    assert_eq!(missing.status.code(), Some(1));

    // cancel on a terminal job is an idempotent 200.
    let cancelled = untestable(&["cancel", &id.to_string(), "--addr", &addr]);
    assert_eq!(cancelled.status.code(), Some(0));

    // shutdown drains the daemon; the serve loop exits cleanly.
    let shutdown = untestable(&["shutdown", "--addr", &addr]);
    assert_eq!(shutdown.status.code(), Some(0));
    serve_thread.join().unwrap().unwrap();
}

#[test]
fn client_misuse_is_rejected_with_usage() {
    let output = untestable(&["submit"]);
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("usage: untestable <submit|job|cancel|shutdown>"),
        "missing client usage: {stderr}"
    );
    let output = untestable(&["job", "not-a-number", "--addr", "127.0.0.1:1"]);
    assert_eq!(output.status.code(), Some(1));
    // An unreachable daemon is a clean one-line diagnostic, not a panic.
    let output = untestable(&["shutdown", "--addr", "127.0.0.1:1"]);
    assert_eq!(output.status.code(), Some(1));
    assert_one_line_diagnostic(&output);
    assert!(
        stderr_line(&output).contains("cannot reach"),
        "{}",
        stderr_line(&output)
    );
}
