//! End-to-end tests of the `untestable` driver binary: clean one-line
//! diagnostics (exit 1) on bad inputs, the distinct exit status (2) when a
//! proof-stage deadline leaves faults unresolved, and the
//! checkpoint/resume flags.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn circuit(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../circuits")
        .join(name)
}

fn untestable(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_untestable"))
        .args(args)
        .output()
        .expect("driver binary runs")
}

/// A self-cleaning per-test temp directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("untestable-cli-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn stderr_line(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).trim().to_string()
}

/// The diagnostic contract: exactly one stderr line, prefixed with the tool
/// name, and no panic backtrace.
fn assert_one_line_diagnostic(output: &Output) {
    let stderr = stderr_line(output);
    assert_eq!(
        stderr.lines().count(),
        1,
        "multi-line diagnostic:\n{stderr}"
    );
    assert!(
        stderr.starts_with("untestable: "),
        "missing tool prefix: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "diagnostic leaks a backtrace: {stderr}"
    );
}

#[test]
fn missing_file_fails_with_a_one_line_diagnostic() {
    let output = untestable(&["/nonexistent/design.bench"]);
    assert_eq!(output.status.code(), Some(1));
    assert_one_line_diagnostic(&output);
    assert!(stderr_line(&output).contains("cannot read"));
}

#[test]
fn parse_error_is_positioned_and_exits_one() {
    let dir = TempDir::new("parse-error");
    let bad = dir.file("broken.bench");
    std::fs::write(&bad, "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap();
    let output = untestable(&[bad.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
    assert_one_line_diagnostic(&output);
    let stderr = stderr_line(&output);
    assert!(
        stderr.contains("line 3"),
        "diagnostic lost the source position: {stderr}"
    );
}

#[test]
fn expired_stage_deadline_exits_two() {
    let output = untestable(&[
        circuit("s27.bench").to_str().unwrap(),
        "--stage-timeout",
        "0",
        "--threads",
        "1",
    ]);
    assert_eq!(
        output.status.code(),
        Some(2),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("proof-stage deadline expired"),
        "no deadline notice:\n{stdout}"
    );
    assert!(
        stdout.contains("timeout"),
        "no abort attribution:\n{stdout}"
    );
}

#[test]
fn checkpoint_roundtrip_resumes_and_mismatch_is_refused() {
    let dir = TempDir::new("checkpoint");
    let ckpt = dir.file("s27.ckpt");
    let s27 = circuit("s27.bench");
    let args = [
        s27.to_str().unwrap(),
        "--threads",
        "1",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ];

    // Wall-clock timings differ run to run; everything else must not.
    fn strip_timings(stdout: &[u8]) -> String {
        String::from_utf8_lossy(stdout)
            .lines()
            .filter(|line| !line.ends_with(" ms"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    let first = untestable(&args);
    assert_eq!(first.status.code(), Some(0), "{}", stderr_line(&first));
    assert!(ckpt.is_file(), "checkpoint file was not created");

    // Re-running against the populated checkpoint reproduces the report.
    let second = untestable(&args);
    assert_eq!(second.status.code(), Some(0), "{}", stderr_line(&second));
    assert_eq!(
        strip_timings(&first.stdout),
        strip_timings(&second.stdout),
        "resumed report diverged"
    );

    // A different proof configuration is a different campaign: the stale
    // checkpoint must be refused, not silently merged.
    let mismatched = untestable(&[
        s27.to_str().unwrap(),
        "--threads",
        "1",
        "--backtrack",
        "64",
        "--checkpoint",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(mismatched.status.code(), Some(1));
    assert_one_line_diagnostic(&mismatched);
    assert!(
        stderr_line(&mismatched).contains("fingerprint mismatch"),
        "wrong refusal diagnostic: {}",
        stderr_line(&mismatched)
    );
}

#[test]
fn bad_timeout_values_are_rejected_cleanly() {
    for value in ["-1", "forever"] {
        let output = untestable(&[
            circuit("s27.bench").to_str().unwrap(),
            "--stage-timeout",
            value,
        ]);
        assert_eq!(output.status.code(), Some(1), "value {value}");
        let stderr = stderr_line(&output);
        assert!(
            stderr.contains("--stage-timeout"),
            "diagnostic does not name the flag: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "panic leaked: {stderr}");
    }
}
