//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the DATE 2013 paper.
//!
//! Each Criterion bench binary corresponds to one paper artefact (see
//! `EXPERIMENTS.md` for the experiment index) and prints the reproduced
//! rows/series before measuring the runtime of the underlying analysis.

use cpu::soc::{Soc, SocBuilder};
use faultmodel::UntestableSource;
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use online_untestable::report::IdentificationReport;

/// Builds the full-size industrial-like SoC used by the Table I benches.
pub fn industrial_soc() -> Soc {
    SocBuilder::industrial().build()
}

/// Builds the reduced SoC used by the quicker benches.
pub fn small_soc() -> Soc {
    SocBuilder::small().build()
}

/// Runs the complete identification flow with default settings.
pub fn run_flow(soc: &Soc) -> IdentificationReport {
    IdentificationFlow::new(FlowConfig::default())
        .run(soc)
        .expect("identification flow")
}

/// Prints a Table-I-style block for a report, next to the paper's numbers.
pub fn print_table1(report: &IdentificationReport) {
    println!("--- reproduced Table I ---------------------------------------");
    println!("fault universe: {}", report.total_faults);
    for source in UntestableSource::ALL {
        println!(
            "  {:<18} {:>8}  ({:>5.1}%)",
            source.name(),
            report.count_for(source),
            100.0 * report.count_for(source) as f64 / report.total_faults as f64
        );
    }
    println!(
        "  {:<18} {:>8}  ({:>5.1}%)",
        "TOTAL",
        report.total_untestable(),
        100.0 * report.untestable_fraction()
    );
    println!("--- paper Table I (214,930 faults) ----------------------------");
    println!("  Scan    19,142  ( 8.9%)   Debug  6,905 (3.2%)");
    println!("  Memory   3,610  ( 1.7%)   TOTAL 29,657 (13.8%)");
    println!("----------------------------------------------------------------");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_and_run() {
        let soc = small_soc();
        let report = run_flow(&soc);
        assert!(report.total_untestable() > 0);
        print_table1(&report);
    }
}
