//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the DATE 2013 paper.
//!
//! Each Criterion bench binary corresponds to one paper artefact (see
//! `EXPERIMENTS.md` for the experiment index) and prints the reproduced
//! rows/series before measuring the runtime of the underlying analysis. The
//! `perf_smoke` binary replays the two committed performance workloads
//! (`BENCH_faultsim.json`, `BENCH_flow.json`) and fails when the measured
//! wall-clock regresses past the committed numbers — the CI perf gate.

use atpg::proof::{prove_faults_with_engines, EngineBreakdown, ProofConfig};
use atpg::{ConstraintSet, FaultSim, ProofOutcome, SatProver, SatVerdict};
use cpu::sbst::{standard_suite, suite_stimuli};
use cpu::soc::{Soc, SocBuilder};
use faultmodel::{FaultList, StuckAt, UntestableSource};
use online_untestable::flow::{FlowConfig, IdentificationFlow, ProofStageConfig};
use online_untestable::report::IdentificationReport;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Builds the full-size industrial-like SoC used by the Table I benches.
pub fn industrial_soc() -> Soc {
    SocBuilder::industrial().build()
}

/// Builds the reduced SoC used by the quicker benches.
pub fn small_soc() -> Soc {
    SocBuilder::small().build()
}

/// Runs the complete identification flow with default settings.
pub fn run_flow(soc: &Soc) -> IdentificationReport {
    IdentificationFlow::new(FlowConfig::default())
        .run(soc)
        .expect("identification flow")
}

/// The quick full-pipeline configuration used by the `flow_pipeline` bench
/// and the `perf_smoke` gate: every structural rule, the SBST simulation
/// stage, and the PODEM/SAT proof portfolio over the **entire** surviving
/// undetected population (no `max_faults` budget — the cone-clipped,
/// SCOAP-guided, collapse-scheduled engine makes the full survivor set
/// affordable, and PODEM aborts escalate to the SAT backend). The
/// proof stage is pinned to one worker so the committed wall-clock means the
/// same thing on a 1-core container and a multi-core CI runner
/// (classifications are thread-invariant anyway; the multi-threaded path is
/// covered by the flow's own tests).
pub fn quick_pipeline_config() -> FlowConfig {
    FlowConfig {
        sbst_max_cycles: 2_000,
        proof: ProofStageConfig {
            backtrack_limit: 16,
            threads: 1,
            max_faults: None,
            ..ProofStageConfig::default()
        },
        ..FlowConfig::full_pipeline()
    }
}

/// Result of one SBST fault-simulation campaign replay (the
/// `BENCH_faultsim.json` workload).
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// End-to-end campaign wall-clock.
    pub wall_clock: Duration,
    /// Faults detected by the suite.
    pub detected: usize,
    /// Faults simulated.
    pub faults: usize,
}

/// Faults graded by the committed `BENCH_faultsim.json` campaign (a fixed
/// seeded sample = 20 packed chunks).
pub const FAULTSIM_SAMPLE: usize = 1_260;

/// PODEM aborts replayed by the committed `sat_throughput` workload: the
/// first this-many faults of [`ProofCampaign::sat_escalation_worklist`]
/// (the worklist order is the fault-universe order, so the slice is
/// deterministic).
pub const SAT_STAGE_SLICE: usize = 256;

/// RNG seed of the committed campaign's fault sample.
pub const FAULTSIM_SEED: u64 = 2013;

/// The committed fault-simulation campaign, prepared once and runnable many
/// times: a seeded random sample of an SoC's stuck-at universe graded against
/// the full four-program SBST suite, observing only the system bus. This is
/// the *single* definition of the `BENCH_faultsim.json` workload — the
/// `fault_sim_throughput` bench and the `perf_smoke` gate both replay it
/// (with [`FAULTSIM_SAMPLE`]/[`FAULTSIM_SEED`]), so the committed numbers
/// and the CI gate can never drift apart.
pub struct FaultsimCampaign<'a> {
    sim: FaultSim<'a>,
    stimuli: Vec<cpu::sbst::ProgramStimuli>,
    sample: Vec<StuckAt>,
    bus: Vec<netlist::CellId>,
}

impl<'a> FaultsimCampaign<'a> {
    /// Prepares the campaign (stimuli extraction, netlist compilation and
    /// fault sampling happen here, outside the measured region).
    pub fn prepare(soc: &'a Soc, sample_size: usize, seed: u64) -> Self {
        let suite = standard_suite();
        let stimuli = suite_stimuli(&suite, &soc.interface, 2_000);
        let sim = FaultSim::new(&soc.netlist).expect("fault simulator");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut faults: Vec<StuckAt> = FaultList::full_universe(&soc.netlist).faults().to_vec();
        faults.shuffle(&mut rng);
        let sample: Vec<StuckAt> = faults.into_iter().take(sample_size).collect();
        FaultsimCampaign {
            sim,
            stimuli,
            sample,
            bus: soc.interface.bus_output_ports.clone(),
        }
    }

    /// Faults in the sample.
    pub fn sample_size(&self) -> usize {
        self.sample.len()
    }

    /// Total vector cycles across the suite's programs.
    pub fn total_cycles(&self) -> usize {
        self.stimuli.iter().map(|s| s.vectors.len()).sum()
    }

    /// Runs the campaign once, timing only the grading itself.
    pub fn run(&self) -> CampaignResult {
        let batches: Vec<&[atpg::InputVector]> =
            self.stimuli.iter().map(|s| s.vectors.as_slice()).collect();
        let start = Instant::now();
        let detected_mask = self.sim.detect_batches(&self.sample, &batches, &self.bus);
        CampaignResult {
            wall_clock: start.elapsed(),
            detected: detected_mask.iter().filter(|&&d| d).count(),
            faults: self.sample.len(),
        }
    }
}

/// One-shot convenience over [`FaultsimCampaign`].
pub fn replay_faultsim_campaign(soc: &Soc, sample_size: usize, seed: u64) -> CampaignResult {
    FaultsimCampaign::prepare(soc, sample_size, seed).run()
}

/// Result of one proof-stage replay (the `proof_throughput` section of
/// `BENCH_flow.json`).
#[derive(Clone, Debug)]
pub struct ProofResult {
    /// Wall-clock of the proof run itself.
    pub wall_clock: Duration,
    /// Survivors attacked.
    pub attempted: usize,
    /// Faults proven untestable (by either engine).
    pub proven: usize,
    /// Faults neither engine concluded.
    pub aborted: usize,
    /// Faults proven untestable by the SAT escalation specifically (zero
    /// when the portfolio is off).
    pub sat_proven: usize,
}

impl ProofResult {
    /// The headline throughput metric: milliseconds of proof-stage
    /// wall-clock per *proven* fault.
    pub fn ms_per_proven_fault(&self) -> f64 {
        self.wall_clock.as_secs_f64() * 1e3 / self.proven.max(1) as f64
    }
}

/// The committed proof-stage workload behind the `proof_throughput` and
/// `sat_throughput` benches and the third and fourth `perf_smoke` gates: the
/// staged pipeline on the reduced SoC is run up to (and including) the SBST
/// simulation once, outside the measured region; the measured region is a
/// single-threaded [`prove_faults_with_engines`] over the **full** survivor
/// set under the mission constraints — the same worklist and engine
/// configuration the `BENCH_flow.json` pipeline's `atpg-proof` stage uses.
pub struct ProofCampaign {
    soc: Soc,
    faults: Vec<StuckAt>,
    constraints: ConstraintSet,
}

impl ProofCampaign {
    /// Prepares the campaign (screens and simulates the reduced SoC so only
    /// genuine survivors reach the measured proof run).
    pub fn prepare() -> Self {
        let soc = small_soc();
        let mut config = quick_pipeline_config();
        config.run_atpg_proof = false;
        let flow = IdentificationFlow::new(config);
        let (_, master) = flow.run_with_faults(&soc).expect("identification flow");
        let faults: Vec<StuckAt> = master.undetected().map(|(_, f)| f).collect();
        let constraints = flow.mission_constraints(&soc).expect("mission constraints");
        ProofCampaign {
            soc,
            faults,
            constraints,
        }
    }

    /// Survivors in the proof worklist.
    pub fn survivors(&self) -> usize {
        self.faults.len()
    }

    /// Runs the proof stage once with the committed portfolio configuration
    /// (cone clipping, SCOAP guidance, X-path pruning, collapse scheduling,
    /// PODEM aborts escalated to the SAT backend), timing only the proof run
    /// itself.
    pub fn run(&self) -> ProofResult {
        self.run_with(ProofConfig {
            backtrack_limit: 16,
            threads: 1,
            use_sat: true,
            sat_conflict_limit: 20_000,
            ..ProofConfig::default()
        })
    }

    /// Runs the same worklist with the SAT escalation off — the accelerated
    /// PODEM engine alone, the pre-portfolio committed configuration.
    pub fn run_podem_only(&self) -> ProofResult {
        self.run_with(ProofConfig {
            backtrack_limit: 16,
            threads: 1,
            ..ProofConfig::default()
        })
    }

    /// Runs the same worklist on the pre-acceleration reference engine (the
    /// exact pre-PR configuration: whole-netlist simulation per decision, no
    /// guidance, no pruning, no collapse scheduling) — the baseline of the
    /// committed speedup figure.
    pub fn run_reference_engine(&self) -> ProofResult {
        self.run_with(ProofConfig {
            backtrack_limit: 16,
            threads: 1,
            use_collapse: false,
            cone_clip: false,
            use_scoap: false,
            use_x_path: false,
            ..ProofConfig::default()
        })
    }

    /// The SAT escalation's worklist: the faults the committed PODEM
    /// configuration aborts on. Computed outside any measured region. The
    /// measured replays take the first [`SAT_STAGE_SLICE`] of them — the
    /// full worklist costs minutes (the conflict-limited tail dominates),
    /// which is bench-prohibitive for a smoke gate; the slice keeps the
    /// per-fault cost representative while bounding the measured region.
    pub fn sat_escalation_worklist(&self) -> Vec<StuckAt> {
        let outcomes = prove_faults_with_engines(
            &self.soc.netlist,
            &self.constraints,
            &self.faults,
            &ProofConfig {
                backtrack_limit: 16,
                threads: 1,
                ..ProofConfig::default()
            },
        )
        .expect("proof run");
        self.faults
            .iter()
            .zip(&outcomes)
            .filter(|&(_, o)| o.outcome == ProofOutcome::Aborted)
            .map(|(&f, _)| f)
            .collect()
    }

    /// Replays the SAT escalation stage alone over `worklist` (normally
    /// [`sat_escalation_worklist`](Self::sat_escalation_worklist)): one
    /// single-threaded [`SatProver`] at the committed 20,000-conflict
    /// budget. This is the measured region of the `sat_throughput` bench and
    /// the fourth `perf_smoke` gate.
    pub fn run_sat_stage(&self, worklist: &[StuckAt]) -> SatStageResult {
        let mut prover =
            SatProver::new(&self.soc.netlist, &self.constraints, 20_000).expect("acyclic netlist");
        let start = Instant::now();
        let (mut proven, mut test_exists, mut unresolved) = (0usize, 0usize, 0usize);
        for &fault in worklist {
            match prover.prove(fault) {
                SatVerdict::ProvenUntestable => proven += 1,
                SatVerdict::TestExists => test_exists += 1,
                SatVerdict::Aborted | SatVerdict::Unsupported => unresolved += 1,
            }
        }
        SatStageResult {
            wall_clock: start.elapsed(),
            attempted: worklist.len(),
            proven,
            test_exists,
            unresolved,
        }
    }

    fn run_with(&self, config: ProofConfig) -> ProofResult {
        let start = Instant::now();
        let outcomes =
            prove_faults_with_engines(&self.soc.netlist, &self.constraints, &self.faults, &config)
                .expect("proof run");
        let wall_clock = start.elapsed();
        let b = EngineBreakdown::from_outcomes(&outcomes);
        ProofResult {
            wall_clock,
            attempted: outcomes.len(),
            proven: b.podem_proven + b.sat_proven,
            aborted: b.podem_aborted + b.sat_aborted,
            sat_proven: b.sat_proven,
        }
    }
}

/// Result of one SAT-escalation replay (the `sat_throughput` section of
/// `BENCH_flow.json`).
#[derive(Clone, Debug)]
pub struct SatStageResult {
    /// Wall-clock of the SAT stage itself.
    pub wall_clock: Duration,
    /// PODEM aborts handed to the SAT backend.
    pub attempted: usize,
    /// Faults the SAT backend proved untestable.
    pub proven: usize,
    /// Faults the SAT backend found a (replayed) test for.
    pub test_exists: usize,
    /// Faults the SAT backend declined or conflict-limited out of.
    pub unresolved: usize,
}

impl SatStageResult {
    /// Milliseconds of SAT wall-clock per concluded fault.
    pub fn ms_per_concluded_fault(&self) -> f64 {
        self.wall_clock.as_secs_f64() * 1e3 / (self.proven + self.test_exists).max(1) as f64
    }
}

/// Extracts the number recorded for `"key"` inside the object labelled
/// `"section"` of a committed `BENCH_*.json` file. A tiny purpose-built
/// scanner — the vendored serde stand-in has no deserializer, and the gate
/// only needs a handful of scalar reference numbers.
pub fn read_committed_f64(json: &str, section: &str, key: &str) -> Option<f64> {
    let scope = if section.is_empty() {
        json
    } else {
        // Restrict the key search to the section's own (possibly nested)
        // object, so a key missing from the section never resolves to a
        // same-named key of a later section.
        let label = format!("\"{section}\"");
        let after_label = json.find(&label)? + label.len();
        let open = json[after_label..].find('{')? + after_label;
        let mut depth = 0usize;
        let mut close = None;
        for (i, c) in json[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        &json[open..close?]
    };
    let label = format!("\"{key}\"");
    let at = scope.find(&label)? + label.len();
    let rest = scope[at..].trim_start_matches([':', ' ', '\t', '\n', '\r']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Prints a Table-I-style block for a report, next to the paper's numbers.
pub fn print_table1(report: &IdentificationReport) {
    println!("--- reproduced Table I ---------------------------------------");
    println!("fault universe: {}", report.total_faults);
    for source in UntestableSource::ALL {
        println!(
            "  {:<18} {:>8}  ({:>5.1}%)",
            source.name(),
            report.count_for(source),
            100.0 * report.count_for(source) as f64 / report.total_faults as f64
        );
    }
    println!(
        "  {:<18} {:>8}  ({:>5.1}%)",
        "TOTAL",
        report.total_untestable(),
        100.0 * report.untestable_fraction()
    );
    println!("--- paper Table I (214,930 faults) ----------------------------");
    println!("  Scan    19,142  ( 8.9%)   Debug  6,905 (3.2%)");
    println!("  Memory   3,610  ( 1.7%)   TOTAL 29,657 (13.8%)");
    println!("----------------------------------------------------------------");
}

/// Prints the per-stage table of a staged-pipeline report.
pub fn print_stage_table(report: &IdentificationReport) {
    println!("--- staged identification pipeline ---------------------------");
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "stage", "classified", "left", "wall-clock"
    );
    for phase in &report.phases {
        println!(
            "{:<16} {:>10} {:>10} {:>10.3} ms",
            phase.name,
            phase.newly_classified,
            phase.undetected_after,
            phase.duration.as_secs_f64() * 1e3
        );
    }
    let classified: usize = report.phases.iter().map(|p| p.newly_classified).sum();
    println!(
        "{:<16} {:>10} {:>10} {:>10.3} ms",
        "TOTAL",
        classified,
        report
            .phases
            .last()
            .map(|p| p.undetected_after)
            .unwrap_or(report.total_faults),
        report.total_duration().as_secs_f64() * 1e3
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_and_run() {
        let soc = small_soc();
        let report = run_flow(&soc);
        assert!(report.total_untestable() > 0);
        print_table1(&report);
        print_stage_table(&report);
    }

    #[test]
    fn committed_number_scanner_reads_sections() {
        let json = r#"{
            "pre": { "campaign_wall_clock_s": 3.829, "detected": 744 },
            "post": { "campaign_wall_clock_s": 0.294 },
            "perf_smoke": { "regression_factor": 2.0 }
        }"#;
        assert_eq!(
            read_committed_f64(json, "pre", "campaign_wall_clock_s"),
            Some(3.829)
        );
        assert_eq!(
            read_committed_f64(json, "post", "campaign_wall_clock_s"),
            Some(0.294)
        );
        assert_eq!(
            read_committed_f64(json, "perf_smoke", "regression_factor"),
            Some(2.0)
        );
        assert_eq!(read_committed_f64(json, "", "regression_factor"), Some(2.0));
        assert_eq!(read_committed_f64(json, "post", "missing"), None);
        assert_eq!(read_committed_f64(json, "absent", "detected"), None);
        // The search is bounded by the section's closing brace: a key that
        // only exists in a *later* section must not leak in.
        assert_eq!(read_committed_f64(json, "pre", "regression_factor"), None);
        assert_eq!(read_committed_f64(json, "post", "detected"), None);
        // ... but keys inside nested objects of the section are in scope.
        let nested = r#"{ "measured": { "criterion_s": { "min": 3.6 } }, "min": 9.9 }"#;
        assert_eq!(read_committed_f64(nested, "measured", "min"), Some(3.6));
        // A pretty-printer may wrap the value onto the next line.
        let wrapped = "{ \"measured\": { \"flow_wall_clock_s\":\n    4.64 } }";
        assert_eq!(
            read_committed_f64(wrapped, "measured", "flow_wall_clock_s"),
            Some(4.64)
        );
    }

    #[test]
    fn committed_files_parse() {
        // The gate must keep being able to read the committed numbers.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let faultsim =
            std::fs::read_to_string(format!("{root}/BENCH_faultsim.json")).expect("BENCH_faultsim");
        assert!(
            read_committed_f64(&faultsim, "post", "campaign_wall_clock_s").is_some(),
            "post.campaign_wall_clock_s missing from BENCH_faultsim.json"
        );
        let flow = std::fs::read_to_string(format!("{root}/BENCH_flow.json")).expect("BENCH_flow");
        assert!(
            read_committed_f64(&flow, "measured", "flow_wall_clock_s").is_some(),
            "measured.flow_wall_clock_s missing from BENCH_flow.json"
        );
        assert!(
            read_committed_f64(&flow, "perf_smoke", "regression_factor").is_some(),
            "perf_smoke.regression_factor missing from BENCH_flow.json"
        );
    }
}
