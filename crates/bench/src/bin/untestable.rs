//! `untestable` — the generic identification-pipeline driver.
//!
//! Loads a gate-level circuit in any supported frontend format (`.bench`,
//! structural Verilog, EDIF subset), optionally binds a mission-constraint
//! specification (forced nets / masked observation points), and runs the
//! staged identification pipeline: baseline structural screen, the
//! constraint screening rules, and the multi-threaded constraint-aware
//! PODEM/SAT proof portfolio. Prints the per-stage report, the per-engine
//! breakdown and a classification summary.
//!
//! ```console
//! $ untestable circuits/synth_c432.bench --constraints circuits/synth_c432.mission
//! $ untestable circuits/s27.bench --threads 4 --backtrack 64
//! $ untestable design.edif --format edif --no-proof
//! ```

use netlist::frontend::{load_netlist, Format};
use netlist::stats::stats;
use online_untestable::design::{ConstraintSpec, NetlistDesign};
use online_untestable::flow::{FlowConfig, IdentificationFlow, ProofStageConfig};
use online_untestable::JsonValue;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: untestable <circuit> [options]

Identify on-line functionally untestable stuck-at faults in a gate-level
circuit: structural screen, constraint screening rules, and a constraint-aware
PODEM/SAT proof portfolio over every surviving fault.

arguments:
  <circuit>             netlist file: .bench (ISCAS-85/89), .v (structural
                        Verilog) or .edif (structural EDIF subset)

options:
  --format <name>       override the format inferred from the extension
                        (bench | verilog | edif)
  --constraints <file>  mission-constraint spec: `force <net> <0|1>` and
                        `mask <output>` lines, `#` comments
  --threads <n>         proof-stage worker threads (default: all cores;
                        classifications are thread-invariant)
  --backtrack <n>       PODEM backtrack budget per fault (default 32)
  --max-proof <n>       cap the proof worklist at n survivors (default: all)
  --seed <s>            sample the capped worklist with this seed instead of
                        taking a prefix (only with --max-proof)
  --no-proof            structural screen only, skip the proof stage
  --no-sat              keep PODEM aborts instead of escalating them to the
                        SAT proof backend
  --sat-conflicts <n>   conflict budget per SAT escalation (default 20000)
  --stage-timeout <s>   wall-clock budget (seconds, fractional ok) for the
                        whole proof stage; faults not concluded by then come
                        back as timeout aborts and the exit status is 2
  --fault-timeout <s>   per-fault wall-clock limit (seconds, fractional ok)
  --checkpoint <file>   append concluded proof verdicts to this file and, on
                        a later run, re-prove only the faults it is missing;
                        the file is keyed to the circuit + constraints and
                        refused on mismatch
  --json                print the report as one JSON document on stdout
                        (the same schema the untestabled service serves)
                        instead of the human-readable summary
  -h, --help            this message

The first argument may instead be a client subcommand talking to a running
`untestabled` service: submit, job, cancel, shutdown (see
`untestable submit --help`).

exit status: 0 on success, 2 when a proof-stage deadline expired leaving
unresolved faults, 1 on any error";

const CLIENT_USAGE: &str = "usage: untestable <submit|job|cancel|shutdown> [options]

Talk to a running `untestabled` identification service
(default address 127.0.0.1:3999; override with --addr).

  untestable submit <circuit> [--constraints <file>] [--format <name>]
                    [--backtrack <n>] [--no-sat] [--sat-conflicts <n>]
                    [--threads <n>] [--max-proof <n>] [--seed <s>]
                    [--deadline-ms <n>] [--fault-timeout-ms <n>] [--wait]
      submit an identification job and print the acceptance document; with
      --wait, poll until the job concludes and print its final status
  untestable job <id>          print a job's status document
  untestable cancel <id>       cancel a job (queued or running)
  untestable shutdown [--now]  drain the daemon (--now aborts in-flight work)

exit status: 0 on a 2xx response (with --wait, additionally a `done` job),
1 otherwise";

struct Options {
    circuit: String,
    format: Option<Format>,
    constraints: Option<String>,
    threads: usize,
    backtrack: usize,
    max_proof: Option<usize>,
    seed: Option<u64>,
    proof: bool,
    sat: bool,
    sat_conflicts: u64,
    stage_timeout: Option<Duration>,
    fault_timeout: Option<Duration>,
    checkpoint: Option<PathBuf>,
    json: bool,
}

fn parse_seconds(flag: &str, text: &str) -> Result<Duration, String> {
    let seconds: f64 = text.parse().map_err(|e| format!("{flag}: {e}"))?;
    Duration::try_from_secs_f64(seconds)
        .map_err(|_| format!("{flag}: expected a non-negative number of seconds, got `{text}`"))
}

/// `Ok(None)` means `-h`/`--help` was requested: print usage to stdout and
/// exit successfully.
fn parse_options() -> Result<Option<Options>, String> {
    let mut options = Options {
        circuit: String::new(),
        format: None,
        constraints: None,
        threads: 0,
        backtrack: 32,
        max_proof: None,
        seed: None,
        proof: true,
        sat: true,
        sat_conflicts: 20_000,
        stage_timeout: None,
        fault_timeout: None,
        checkpoint: None,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--format" => {
                let name = value("--format")?;
                options.format = Some(Format::from_name(&name).ok_or_else(|| {
                    format!("unknown format `{name}` (expected bench, verilog or edif)")
                })?);
            }
            "--constraints" => options.constraints = Some(value("--constraints")?),
            "--threads" => {
                options.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--backtrack" => {
                options.backtrack = value("--backtrack")?
                    .parse()
                    .map_err(|e| format!("--backtrack: {e}"))?
            }
            "--max-proof" => {
                options.max_proof = Some(
                    value("--max-proof")?
                        .parse()
                        .map_err(|e| format!("--max-proof: {e}"))?,
                )
            }
            "--seed" => {
                options.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--no-proof" => options.proof = false,
            "--no-sat" => options.sat = false,
            "--sat-conflicts" => {
                options.sat_conflicts = value("--sat-conflicts")?
                    .parse()
                    .map_err(|e| format!("--sat-conflicts: {e}"))?
            }
            "--stage-timeout" => {
                options.stage_timeout = Some(parse_seconds(
                    "--stage-timeout",
                    &value("--stage-timeout")?,
                )?)
            }
            "--fault-timeout" => {
                options.fault_timeout = Some(parse_seconds(
                    "--fault-timeout",
                    &value("--fault-timeout")?,
                )?)
            }
            "--checkpoint" => options.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--json" => options.json = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"))
            }
            positional if options.circuit.is_empty() => options.circuit = positional.to_string(),
            extra => return Err(format!("unexpected argument `{extra}`\n\n{USAGE}")),
        }
    }
    if options.circuit.is_empty() {
        return Err(format!("missing circuit file\n\n{USAGE}"));
    }
    Ok(Some(options))
}

/// `Ok(true)` means the run completed but a proof-stage deadline expired
/// with unresolved faults — the caller maps this to exit status 2.
fn run(options: &Options) -> Result<bool, String> {
    let format = options
        .format
        .or_else(|| Format::from_path(options.circuit.as_ref()))
        .ok_or_else(|| {
            format!(
                "cannot infer a format for `{}`; pass --format bench|verilog|edif",
                options.circuit
            )
        })?;
    let netlist = load_netlist(&options.circuit, Some(format)).map_err(|e| e.to_string())?;
    if !options.json {
        let s = stats(&netlist);
        println!("circuit        : {} ({})", netlist.name(), options.circuit);
        println!("format         : {format}");
        println!(
            "size           : {} gates, {} flip-flops, {} PIs, {} POs, {} stuck-at faults",
            s.combinational_cells,
            s.flip_flops + s.scan_flip_flops,
            s.primary_inputs,
            s.primary_outputs,
            s.stuck_at_faults()
        );
    }

    let design = match &options.constraints {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read constraint spec `{path}`: {e}"))?;
            let spec = ConstraintSpec::parse(&text)
                .map_err(|e| format!("constraint spec `{path}`: {e}"))?;
            let design = NetlistDesign::with_constraints(netlist, &spec)
                .map_err(|e| format!("constraint spec `{path}`: {e}"))?;
            if !options.json {
                println!(
                    "constraints    : {} forced net(s), {} masked output(s) from {path}",
                    design.forced_nets().len(),
                    design.masked_outputs().len()
                );
            }
            design
        }
        None => {
            if !options.json {
                println!("constraints    : none (structural screen + unconstrained proof)");
            }
            NetlistDesign::new(netlist)
        }
    };

    let config = FlowConfig {
        run_atpg_proof: options.proof,
        proof: ProofStageConfig {
            backtrack_limit: options.backtrack,
            threads: options.threads,
            max_faults: options.max_proof,
            sample_seed: options.seed,
            use_sat: options.sat,
            sat_conflict_limit: options.sat_conflicts,
            stage_timeout: options.stage_timeout,
            fault_timeout: options.fault_timeout,
            checkpoint: options.checkpoint.clone(),
            ..ProofStageConfig::default()
        },
        ..FlowConfig::full_pipeline()
    };
    let report = IdentificationFlow::new(config)
        .run(&design)
        .map_err(|e| format!("identification flow: {e}"))?;
    let deadline_hit = report
        .engine_breakdown
        .as_ref()
        .is_some_and(|b| b.deadline_hit());
    if options.json {
        // One machine-readable document on stdout, nothing else: the same
        // schema the untestabled service serves and journals.
        println!("{}", report.to_json());
        return Ok(deadline_hit);
    }
    println!();
    println!("{report}");

    let untestable = report.baseline_structural + report.total_untestable();
    println!();
    println!("classification summary");
    println!("  fault universe        : {}", report.total_faults);
    println!("  untestable (total)    : {untestable}");
    println!(
        "  on-line untestable    : {} ({:.1}% of the universe)",
        report.total_untestable(),
        report.untestable_fraction() * 100.0
    );
    println!(
        "  proven by ATPG/SAT    : {}",
        report.count_for(faultmodel::UntestableSource::AtpgProof)
    );
    if let Some(breakdown) = &report.engine_breakdown {
        println!("  proof engines         : {breakdown}");
    }
    println!("  still unclassified    : {}", report.counts.undetected);

    if deadline_hit {
        println!();
        println!(
            "proof-stage deadline expired: {} fault(s) timed out; \
             re-run with --checkpoint to resume where this run stopped",
            report
                .engine_breakdown
                .as_ref()
                .map_or(0, |b| b.aborted_timeout)
        );
    }
    Ok(deadline_hit)
}

/// Exit status when a proof-stage deadline expired with unresolved faults:
/// the campaign survived, but its verdicts are incomplete.
const EXIT_DEADLINE: u8 = 2;

// ----------------------------------------------------------------------
// Client subcommands: the driver doubles as the untestabled service's CLI.
// ----------------------------------------------------------------------

const DEFAULT_ADDR: &str = "127.0.0.1:3999";

/// Builds the `POST /jobs` body for `submit` from the subcommand flags; the
/// keys mirror the service's request schema, and only explicitly-set knobs
/// are sent so the daemon's defaults apply otherwise.
struct SubmitOptions {
    circuit: String,
    format: Option<Format>,
    constraints: Option<String>,
    config: Vec<(String, JsonValue)>,
    wait: bool,
}

impl SubmitOptions {
    fn body(&self) -> Result<String, String> {
        let format = self
            .format
            .or_else(|| Format::from_path(self.circuit.as_ref()))
            .ok_or_else(|| {
                format!(
                    "cannot infer a format for `{}`; pass --format bench|verilog|edif",
                    self.circuit
                )
            })?;
        let text = std::fs::read_to_string(&self.circuit)
            .map_err(|e| format!("cannot read `{}`: {e}", self.circuit))?;
        let mut fields = vec![
            ("circuit".to_string(), JsonValue::string(text)),
            ("format".to_string(), JsonValue::string(format.to_string())),
        ];
        if let Some(path) = &self.constraints {
            let spec = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read constraint spec `{path}`: {e}"))?;
            fields.push(("constraints".to_string(), JsonValue::string(spec)));
        }
        if !self.config.is_empty() {
            fields.push(("config".to_string(), JsonValue::Object(self.config.clone())));
        }
        Ok(JsonValue::Object(fields).to_string())
    }
}

fn next_value(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    iter.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value\n\n{CLIENT_USAGE}"))
}

fn next_u64(iter: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    next_value(iter, flag)?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// Runs one client subcommand; `Ok(ok)` carries whether the exchange (and,
/// for `submit --wait`, the job) succeeded.
fn run_client(subcommand: &str, args: &[String]) -> Result<bool, String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut positionals: Vec<String> = Vec::new();
    let mut submit = SubmitOptions {
        circuit: String::new(),
        format: None,
        constraints: None,
        config: Vec::new(),
        wait: false,
    };
    let mut now = false;
    let mut iter = args.iter();
    fn config_u64(
        iter: &mut std::slice::Iter<'_, String>,
        flag: &str,
        key: &str,
        config: &mut Vec<(String, JsonValue)>,
    ) -> Result<(), String> {
        let n = next_u64(iter, flag)?;
        config.push((key.to_string(), n.into()));
        Ok(())
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{CLIENT_USAGE}");
                return Ok(true);
            }
            "--addr" => addr = next_value(&mut iter, "--addr")?,
            "--format" if subcommand == "submit" => {
                let name = next_value(&mut iter, "--format")?;
                submit.format = Some(Format::from_name(&name).ok_or_else(|| {
                    format!("unknown format `{name}` (expected bench, verilog or edif)")
                })?);
            }
            "--constraints" if subcommand == "submit" => {
                submit.constraints = Some(next_value(&mut iter, "--constraints")?)
            }
            "--backtrack" if subcommand == "submit" => {
                config_u64(&mut iter, "--backtrack", "backtrack", &mut submit.config)?
            }
            "--no-sat" if subcommand == "submit" => {
                submit.config.push(("sat".to_string(), false.into()))
            }
            "--sat-conflicts" if subcommand == "submit" => config_u64(
                &mut iter,
                "--sat-conflicts",
                "sat_conflicts",
                &mut submit.config,
            )?,
            "--threads" if subcommand == "submit" => {
                config_u64(&mut iter, "--threads", "threads", &mut submit.config)?
            }
            "--max-proof" if subcommand == "submit" => {
                config_u64(&mut iter, "--max-proof", "max_proof", &mut submit.config)?
            }
            "--seed" if subcommand == "submit" => {
                config_u64(&mut iter, "--seed", "seed", &mut submit.config)?
            }
            "--deadline-ms" if subcommand == "submit" => config_u64(
                &mut iter,
                "--deadline-ms",
                "deadline_ms",
                &mut submit.config,
            )?,
            "--fault-timeout-ms" if subcommand == "submit" => config_u64(
                &mut iter,
                "--fault-timeout-ms",
                "fault_timeout_ms",
                &mut submit.config,
            )?,
            "--wait" if subcommand == "submit" => submit.wait = true,
            "--now" if subcommand == "shutdown" => now = true,
            other if other.starts_with('-') => {
                return Err(format!(
                    "unknown {subcommand} option `{other}`\n\n{CLIENT_USAGE}"
                ))
            }
            positional => positionals.push(positional.to_string()),
        }
    }

    let parse_id = |positionals: &[String]| -> Result<u64, String> {
        match positionals {
            [id] => id
                .parse()
                .map_err(|_| format!("`{id}` is not a job id\n\n{CLIENT_USAGE}")),
            _ => Err(format!("{subcommand} takes one job id\n\n{CLIENT_USAGE}")),
        }
    };
    let http = |result: std::io::Result<untestabled::client::HttpResponse>| {
        result.map_err(|e| format!("cannot reach {addr}: {e}"))
    };
    match subcommand {
        "submit" => {
            match positionals.as_slice() {
                [circuit] => submit.circuit = circuit.clone(),
                _ => return Err(format!("submit takes one circuit file\n\n{CLIENT_USAGE}")),
            }
            let response = http(untestabled::client::submit(&addr, &submit.body()?))?;
            if response.status != 202 || !submit.wait {
                println!("{}", response.body);
                return Ok(response.status == 202);
            }
            let id = response
                .json()
                .and_then(|doc| doc.get("id").and_then(JsonValue::as_u64))
                .ok_or_else(|| format!("malformed acceptance document: {}", response.body))?;
            let doc = untestabled::client::wait_terminal(&addr, id, Duration::from_secs(3600))
                .map_err(|e| format!("waiting on job {id}: {e}"))?;
            println!("{doc}");
            Ok(doc.get("state").and_then(JsonValue::as_str) == Some("done"))
        }
        "job" => {
            let response = http(untestabled::client::job_status(
                &addr,
                parse_id(&positionals)?,
            ))?;
            println!("{}", response.body);
            Ok(response.status == 200)
        }
        "cancel" => {
            let response = http(untestabled::client::cancel(&addr, parse_id(&positionals)?))?;
            println!("{}", response.body);
            Ok(response.status == 200)
        }
        "shutdown" => {
            if !positionals.is_empty() {
                return Err(format!("shutdown takes no arguments\n\n{CLIENT_USAGE}"));
            }
            let response = http(untestabled::client::shutdown(&addr, now))?;
            println!("{}", response.body);
            Ok(response.status == 200)
        }
        _ => unreachable!("dispatch only passes known subcommands"),
    }
}

fn client_main(subcommand: &str, args: &[String]) -> ExitCode {
    match run_client(subcommand, args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("untestable: {message}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(subcommand) = args.first() {
        if matches!(
            subcommand.as_str(),
            "submit" | "job" | "cancel" | "shutdown"
        ) {
            return client_main(subcommand.clone().as_str(), &args[1..]);
        }
    }
    let options = match parse_options() {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(EXIT_DEADLINE),
        Err(message) => {
            eprintln!("untestable: {message}");
            ExitCode::FAILURE
        }
    }
}
