//! CI perf-regression gate: replays the four committed performance
//! workloads in a quick configuration and fails (exit code 1) when the
//! measured wall-clock regresses past `regression_factor` × the committed
//! number.
//!
//! * `BENCH_faultsim.json` → the SBST fault-simulation campaign on the
//!   industrial SoC (`post.campaign_wall_clock_s`);
//! * `BENCH_flow.json` → the staged identification pipeline on the reduced
//!   SoC (`measured.flow_wall_clock_s`);
//! * `BENCH_flow.json` → the PODEM/SAT proof portfolio over the full
//!   survivor set (`proof_throughput.proof_wall_clock_s`);
//! * `BENCH_flow.json` → the SAT escalation alone over the PODEM aborts
//!   (`sat_throughput.sat_wall_clock_s`).
//!
//! Run with `cargo run --release -p bench --bin perf_smoke`. Refresh the
//! committed numbers by re-running the `fault_sim_throughput`,
//! `flow_pipeline`, `proof_throughput` and `sat_throughput` benches and
//! editing the JSON files.

use bench::{
    industrial_soc, quick_pipeline_config, read_committed_f64, replay_faultsim_campaign, small_soc,
    FAULTSIM_SAMPLE, FAULTSIM_SEED,
};
use online_untestable::flow::IdentificationFlow;
use std::time::Instant;

/// Gate threshold used when `BENCH_flow.json` does not record one.
const DEFAULT_REGRESSION_FACTOR: f64 = 2.0;

struct Gate {
    name: &'static str,
    committed_s: f64,
    measured_s: f64,
}

impl Gate {
    fn passes(&self, factor: f64) -> bool {
        self.measured_s <= self.committed_s * factor
    }
}

fn read_reference(path: &str, section: &str, key: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed numbers from {path}: {e}"));
    read_committed_f64(&text, section, key)
        .unwrap_or_else(|| panic!("{path} does not record {section}.{key}"))
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let faultsim_json = format!("{root}/BENCH_faultsim.json");
    let flow_json = format!("{root}/BENCH_flow.json");

    let factor = std::fs::read_to_string(&flow_json)
        .ok()
        .and_then(|text| read_committed_f64(&text, "perf_smoke", "regression_factor"))
        .unwrap_or(DEFAULT_REGRESSION_FACTOR);

    println!("perf-smoke gate (fail when measured > {factor:.1}x committed)");
    println!();

    // Gate 1: the fault-simulation campaign of BENCH_faultsim.json. The
    // detection count is checked against the committed workload first — a
    // simulator that got faster by skipping work must fail the gate, not
    // pass it.
    let soc = industrial_soc();
    let campaign = replay_faultsim_campaign(&soc, FAULTSIM_SAMPLE, FAULTSIM_SEED);
    println!(
        "fault_sim_throughput    : {} faults, {} detected, {:.3} s",
        campaign.faults,
        campaign.detected,
        campaign.wall_clock.as_secs_f64()
    );
    let committed_detected = read_reference(&faultsim_json, "workload", "faults_detected") as usize;
    if campaign.detected != committed_detected {
        eprintln!(
            "perf-smoke gate failed: the campaign detected {} faults but BENCH_faultsim.json \
             records {committed_detected} for this exact seeded workload — the fault simulator's \
             behaviour changed, not just its speed.",
            campaign.detected
        );
        std::process::exit(1);
    }
    let gate_faultsim = Gate {
        name: "fault_sim_throughput",
        committed_s: read_reference(&faultsim_json, "post", "campaign_wall_clock_s"),
        measured_s: campaign.wall_clock.as_secs_f64(),
    };

    // Gate 2: the staged identification pipeline of BENCH_flow.json.
    let small = small_soc();
    let flow = IdentificationFlow::new(quick_pipeline_config());
    let start = Instant::now();
    let report = flow.run(&small).expect("identification flow");
    let flow_elapsed = start.elapsed();
    println!(
        "flow_pipeline           : {} faults classified untestable, {:.3} s",
        report.total_untestable(),
        flow_elapsed.as_secs_f64()
    );
    let committed_untestable = read_reference(&flow_json, "workload", "untestable_total") as usize;
    if report.total_untestable() != committed_untestable {
        eprintln!(
            "perf-smoke gate failed: the pipeline classified {} faults untestable but \
             BENCH_flow.json records {committed_untestable} for this configuration — the flow's \
             classifications changed, not just its speed.",
            report.total_untestable()
        );
        std::process::exit(1);
    }
    let gate_flow = Gate {
        name: "flow_pipeline",
        committed_s: read_reference(&flow_json, "measured", "flow_wall_clock_s"),
        measured_s: flow_elapsed.as_secs_f64(),
    };

    // Gate 3: the proof-stage throughput of BENCH_flow.json's
    // proof_throughput section — the accelerated engine over the full
    // survivor set of the reduced SoC. The proven count is checked against
    // the committed workload first, so an engine that got faster by proving
    // less (or by upgrading aborts) fails the gate instead of passing it.
    let campaign = bench::ProofCampaign::prepare();
    let proof = campaign.run();
    println!(
        "proof_throughput        : {} survivors, {} proven ({} by SAT), {} aborted, {:.3} s \
         ({:.3} ms per proven fault)",
        proof.attempted,
        proof.proven,
        proof.sat_proven,
        proof.aborted,
        proof.wall_clock.as_secs_f64(),
        proof.ms_per_proven_fault()
    );
    let committed_proven = read_reference(&flow_json, "proof_throughput", "proven") as usize;
    if proof.proven != committed_proven {
        eprintln!(
            "perf-smoke gate failed: the proof stage proved {} faults but BENCH_flow.json \
             records {committed_proven} for this exact workload — the engine's verdicts \
             changed, not just its speed.",
            proof.proven
        );
        std::process::exit(1);
    }
    let gate_proof = Gate {
        name: "proof_throughput",
        committed_s: read_reference(&flow_json, "proof_throughput", "proof_wall_clock_s"),
        measured_s: proof.wall_clock.as_secs_f64(),
    };

    // Gate 4: the SAT escalation alone — the first SAT_STAGE_SLICE faults
    // the committed PODEM configuration aborts on, replayed through one
    // single-threaded SAT prover (the full worklist's conflict-limited tail
    // costs minutes; the slice keeps the gate a smoke test). The proven
    // count is checked first for the same reason as the other workloads: a
    // solver that got faster by concluding less must fail, not pass.
    let worklist = campaign.sat_escalation_worklist();
    let slice = &worklist[..bench::SAT_STAGE_SLICE.min(worklist.len())];
    let sat = campaign.run_sat_stage(slice);
    println!(
        "sat_throughput          : {} of {} PODEM aborts, {} proven, {} testable, {} unresolved, \
         {:.3} s",
        sat.attempted,
        worklist.len(),
        sat.proven,
        sat.test_exists,
        sat.unresolved,
        sat.wall_clock.as_secs_f64()
    );
    let committed_sat_proven = read_reference(&flow_json, "sat_throughput", "proven") as usize;
    if sat.proven != committed_sat_proven {
        eprintln!(
            "perf-smoke gate failed: the SAT stage proved {} faults but BENCH_flow.json \
             records {committed_sat_proven} for this exact workload — the solver's verdicts \
             changed, not just its speed.",
            sat.proven
        );
        std::process::exit(1);
    }
    let gate_sat = Gate {
        name: "sat_throughput",
        committed_s: read_reference(&flow_json, "sat_throughput", "sat_wall_clock_s"),
        measured_s: sat.wall_clock.as_secs_f64(),
    };

    println!();
    let mut failed = false;
    for gate in [gate_faultsim, gate_flow, gate_proof, gate_sat] {
        let verdict = if gate.passes(factor) { "PASS" } else { "FAIL" };
        println!(
            "{verdict} {name:<22} measured {measured:.3} s vs committed {committed:.3} s (limit {limit:.3} s)",
            name = gate.name,
            measured = gate.measured_s,
            committed = gate.committed_s,
            limit = gate.committed_s * factor,
        );
        failed |= !gate.passes(factor);
    }
    if failed {
        eprintln!();
        eprintln!(
            "perf-smoke gate failed: a workload regressed more than {factor:.1}x past its \
             committed wall-clock. If the regression is intentional, re-measure with \
             `cargo bench -p bench --bench fault_sim_throughput` / `--bench flow_pipeline` / \
             `--bench proof_throughput` / `--bench sat_throughput` and update \
             BENCH_faultsim.json / BENCH_flow.json."
        );
        std::process::exit(1);
    }
    println!();
    println!("perf-smoke gate passed.");
}
