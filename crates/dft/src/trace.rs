//! Scan-chain tracing — the "ad-hoc tool able to trace the chain" of §4.
//!
//! Given a netlist containing mux-scan flip-flops, the tracer reconstructs
//! every scan chain starting from its scan-in port, walking through scan-path
//! buffers and inverters, and records per flip-flop which net feeds the SI
//! and SE pins. The on-line untestable scan rule (§3.1) consumes this
//! information to prune the corresponding faults.

use netlist::{CellId, CellKind, NetId, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One element encountered while walking a scan chain.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanElement {
    /// A mux-scan flip-flop.
    Flop(CellId),
    /// A buffer or inverter on the scan path.
    Buffer(CellId),
}

impl ScanElement {
    /// The cell id of the element.
    pub fn cell(self) -> CellId {
        match self {
            ScanElement::Flop(c) | ScanElement::Buffer(c) => c,
        }
    }
}

/// A fully traced scan chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TracedChain {
    /// The scan-in `Input` pseudo-cell the trace started from.
    pub scan_in_port: CellId,
    /// Flip-flops and scan-path buffers in shift order.
    pub elements: Vec<ScanElement>,
    /// The scan-out `Output` pseudo-cell, if the chain terminates at one.
    pub scan_out_port: Option<CellId>,
}

impl TracedChain {
    /// Only the flip-flops of the chain, in shift order.
    pub fn flops(&self) -> Vec<CellId> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                ScanElement::Flop(c) => Some(*c),
                ScanElement::Buffer(_) => None,
            })
            .collect()
    }

    /// Only the scan-path buffers of the chain.
    pub fn buffers(&self) -> Vec<CellId> {
        self.elements
            .iter()
            .filter_map(|e| match e {
                ScanElement::Buffer(c) => Some(*c),
                ScanElement::Flop(_) => None,
            })
            .collect()
    }
}

/// The result of tracing every chain of a design.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanTrace {
    /// The traced chains, one per scan-in port.
    pub chains: Vec<TracedChain>,
    /// The distinct nets driving scan-enable pins.
    pub scan_enable_nets: Vec<NetId>,
}

impl ScanTrace {
    /// Total number of scan flip-flops reached by the trace.
    pub fn num_flops(&self) -> usize {
        self.chains.iter().map(|c| c.flops().len()).sum()
    }
}

/// Error produced by the tracer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A chain could not be followed (no SI pin, buffer or output reachable).
    BrokenChain {
        /// The scan-in port whose chain broke.
        scan_in: String,
        /// How many elements were traced before the break.
        traced: usize,
    },
    /// The given cell is not a primary input.
    NotAnInput {
        /// Name of the offending cell.
        cell: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BrokenChain { scan_in, traced } => write!(
                f,
                "scan chain from `{scan_in}` breaks after {traced} element(s)"
            ),
            TraceError::NotAnInput { cell } => {
                write!(f, "`{cell}` is not a primary input")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Finds the primary inputs whose name starts with `prefix` (candidate
/// scan-in ports).
pub fn find_scan_in_ports(netlist: &Netlist, prefix: &str) -> Vec<CellId> {
    let mut ports: Vec<CellId> = netlist
        .primary_inputs()
        .into_iter()
        .filter(|&pi| netlist.cell(pi).name().starts_with(prefix))
        .collect();
    ports.sort_by_key(|&pi| netlist.cell(pi).name().to_string());
    ports
}

/// Traces the scan chains rooted at the given scan-in ports.
///
/// `scan_out_prefix` disambiguates the chain terminus when the last scan
/// cell's output also feeds functional primary outputs: an output port whose
/// name starts with the prefix is preferred as the scan-out.
///
/// # Errors
///
/// Returns [`TraceError::NotAnInput`] if a given port is not a primary input
/// and [`TraceError::BrokenChain`] if a chain cannot be followed to a
/// flip-flop or output port.
pub fn trace_scan_chains(
    netlist: &Netlist,
    scan_in_ports: &[CellId],
    scan_out_prefix: &str,
) -> Result<ScanTrace, TraceError> {
    let mut chains = Vec::with_capacity(scan_in_ports.len());
    let mut scan_enable_nets: Vec<NetId> = Vec::new();

    for &port in scan_in_ports {
        let cell = netlist.cell(port);
        if cell.kind() != CellKind::Input {
            return Err(TraceError::NotAnInput {
                cell: cell.name().to_string(),
            });
        }
        let mut elements = Vec::new();
        let mut scan_out_port = None;
        let mut current_net = cell.output().expect("input drives a net");
        let mut visited: HashSet<CellId> = HashSet::new();

        loop {
            match next_element(netlist, current_net, &visited, scan_out_prefix) {
                Some(NextHop::Flop { buffers, flop }) => {
                    for b in buffers {
                        visited.insert(b);
                        elements.push(ScanElement::Buffer(b));
                    }
                    visited.insert(flop);
                    elements.push(ScanElement::Flop(flop));
                    if let Some(se_pin) = netlist.cell(flop).kind().scan_enable_pin() {
                        let se_net = netlist.input_net(flop, se_pin);
                        if !scan_enable_nets.contains(&se_net) {
                            scan_enable_nets.push(se_net);
                        }
                    }
                    current_net = netlist
                        .output_net(flop)
                        .expect("flip-flops always drive a net");
                }
                Some(NextHop::Terminal { buffers, port }) => {
                    for b in buffers {
                        visited.insert(b);
                        elements.push(ScanElement::Buffer(b));
                    }
                    scan_out_port = Some(port);
                    break;
                }
                None => {
                    if elements.is_empty() {
                        return Err(TraceError::BrokenChain {
                            scan_in: cell.name().to_string(),
                            traced: 0,
                        });
                    }
                    break;
                }
            }
        }

        chains.push(TracedChain {
            scan_in_port: port,
            elements,
            scan_out_port,
        });
    }

    Ok(ScanTrace {
        chains,
        scan_enable_nets,
    })
}

enum NextHop {
    Flop { buffers: Vec<CellId>, flop: CellId },
    Terminal { buffers: Vec<CellId>, port: CellId },
}

/// Finds the next scan element reachable from `net`: preferably a scan
/// flip-flop SI pin (possibly through buffers/inverters), otherwise an output
/// port (the scan-out, preferring names starting with `scan_out_prefix`).
fn next_element(
    netlist: &Netlist,
    net: NetId,
    visited: &HashSet<CellId>,
    scan_out_prefix: &str,
) -> Option<NextHop> {
    // Depth-first search through buffers/inverters, bounded by design size.
    fn dfs(
        netlist: &Netlist,
        net: NetId,
        visited: &HashSet<CellId>,
        buffers: &mut Vec<CellId>,
        depth: usize,
        scan_out_prefix: &str,
    ) -> Option<NextHop> {
        if depth > netlist.num_cells() {
            return None;
        }
        // Pass 1: a direct SI pin.
        for load in netlist.loads_of(net) {
            let cell = netlist.cell(load.cell);
            if cell.is_dead() || visited.contains(&load.cell) {
                continue;
            }
            if let Some(si_pin) = cell.kind().scan_in_pin() {
                if si_pin == load.pin {
                    return Some(NextHop::Flop {
                        buffers: buffers.clone(),
                        flop: load.cell,
                    });
                }
            }
        }
        // Pass 2: through buffers / inverters.
        for load in netlist.loads_of(net) {
            let cell = netlist.cell(load.cell);
            if cell.is_dead() || visited.contains(&load.cell) {
                continue;
            }
            if matches!(cell.kind(), CellKind::Buf | CellKind::Not) && !buffers.contains(&load.cell)
            {
                if let Some(out) = cell.output() {
                    buffers.push(load.cell);
                    if let Some(hit) =
                        dfs(netlist, out, visited, buffers, depth + 1, scan_out_prefix)
                    {
                        return Some(hit);
                    }
                    buffers.pop();
                }
            }
        }
        // Pass 3: an output port terminates the chain. Prefer ports whose
        // name matches the scan-out naming convention.
        let mut fallback = None;
        for load in netlist.loads_of(net) {
            let cell = netlist.cell(load.cell);
            if cell.is_dead() || visited.contains(&load.cell) {
                continue;
            }
            if cell.kind() == CellKind::Output {
                if cell.name().starts_with(scan_out_prefix) {
                    return Some(NextHop::Terminal {
                        buffers: buffers.clone(),
                        port: load.cell,
                    });
                }
                if fallback.is_none() {
                    fallback = Some(load.cell);
                }
            }
        }
        fallback.map(|port| NextHop::Terminal {
            buffers: buffers.clone(),
            port,
        })
    }
    let mut buffers = Vec::new();
    dfs(netlist, net, visited, &mut buffers, 0, scan_out_prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{insert_scan, ScanConfig};
    use netlist::NetlistBuilder;

    fn scanned_design(
        n_ffs: usize,
        chains: usize,
        buffers: bool,
    ) -> (Netlist, crate::scan::ScanInsertion) {
        let mut b = NetlistBuilder::new("seq");
        let ck = b.input("ck");
        let d = b.input_bus("d", n_ffs);
        let q = b.register(&d, ck);
        b.output_bus("q", &q);
        let mut netlist = b.finish();
        let insertion = insert_scan(
            &mut netlist,
            &ScanConfig {
                num_chains: chains,
                insert_path_buffers: buffers,
                ..ScanConfig::default()
            },
        );
        (netlist, insertion)
    }

    #[test]
    fn trace_recovers_inserted_chains() {
        let (n, insertion) = scanned_design(12, 3, false);
        let ports = find_scan_in_ports(&n, "scan_in");
        assert_eq!(ports.len(), 3);
        let trace = trace_scan_chains(&n, &ports, "scan_out").unwrap();
        assert_eq!(trace.chains.len(), 3);
        assert_eq!(trace.num_flops(), 12);
        // Flip-flop order matches the insertion order chain by chain.
        for (traced, inserted) in trace.chains.iter().zip(&insertion.chains) {
            assert_eq!(traced.flops(), inserted.cells);
            assert_eq!(traced.scan_out_port, Some(inserted.scan_out_port));
        }
        assert_eq!(trace.scan_enable_nets.len(), 1);
        assert_eq!(
            trace.scan_enable_nets[0],
            insertion.scan_enable_net.unwrap()
        );
    }

    #[test]
    fn trace_records_scan_path_buffers() {
        let (n, insertion) = scanned_design(6, 1, true);
        let ports = find_scan_in_ports(&n, "scan_in");
        let trace = trace_scan_chains(&n, &ports, "scan_out").unwrap();
        let chain = &trace.chains[0];
        assert_eq!(chain.flops().len(), 6);
        assert_eq!(chain.buffers().len(), 5);
        let inserted: Vec<_> = insertion.chains[0].path_buffers.clone();
        assert_eq!(chain.buffers(), inserted);
    }

    #[test]
    fn trace_follows_inverter_pairs() {
        // Hand-build a chain with an inverter pair between two scan FFs.
        let mut b = NetlistBuilder::new("inv_chain");
        let ck = b.input("ck");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let si = b.input("si_port");
        let se = b.input("se");
        let q0 = b.sdff(d0, si, se, ck);
        let inv1 = b.not(q0);
        let inv2 = b.not(inv1);
        let q1 = b.sdff(d1, inv2, se, ck);
        b.output("so", q1);
        b.output("q0", q0);
        let n = b.finish();
        let port = n.find_input("si_port").unwrap();
        let trace = trace_scan_chains(&n, &[port], "so").unwrap();
        let chain = &trace.chains[0];
        assert_eq!(chain.flops().len(), 2);
        assert_eq!(chain.buffers().len(), 2);
        assert!(chain.scan_out_port.is_some());
    }

    #[test]
    fn broken_chain_is_reported() {
        let mut b = NetlistBuilder::new("broken");
        let dangling = b.input("scan_in0");
        let a = b.input("a");
        let y = b.and2(a, dangling);
        b.output("y", y);
        let n = b.finish();
        let port = n.find_input("scan_in0").unwrap();
        let err = trace_scan_chains(&n, &[port], "scan_out").unwrap_err();
        assert!(matches!(err, TraceError::BrokenChain { .. }));
        assert!(err.to_string().contains("scan_in0"));
    }

    #[test]
    fn non_input_port_is_rejected() {
        let (n, _) = scanned_design(4, 1, false);
        let some_ff = n.sequential_cells()[0];
        let err = trace_scan_chains(&n, &[some_ff], "scan_out").unwrap_err();
        assert!(matches!(err, TraceError::NotAnInput { .. }));
    }

    #[test]
    fn find_scan_in_ports_filters_by_prefix() {
        let (n, _) = scanned_design(4, 2, false);
        assert_eq!(find_scan_in_ports(&n, "scan_in").len(), 2);
        assert!(find_scan_in_ports(&n, "nonexistent").is_empty());
    }
}
