//! Logic BIST building blocks: LFSR pattern generators and MISR response
//! compactors.
//!
//! The paper lists built-in self-test modules among the design-for-test
//! structures that become unreachable in mission mode (§3). The SoC generator
//! instantiates a small LFSR/MISR pair controlled by a BIST-enable input so
//! that this source of on-line untestable logic is represented.

use netlist::{NetId, NetlistBuilder, Word};
use serde::{Deserialize, Serialize};

/// Configuration of a BIST block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BistConfig {
    /// Width of the LFSR and MISR registers.
    pub width: usize,
    /// Name of the BIST enable primary input.
    pub enable_name: String,
}

impl Default for BistConfig {
    fn default() -> Self {
        BistConfig {
            width: 16,
            enable_name: "bist_enable".to_string(),
        }
    }
}

/// The nets of a generated BIST block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BistBlock {
    /// The BIST enable primary-input net.
    pub enable: NetId,
    /// The LFSR state outputs (pseudo-random pattern source).
    pub lfsr: Word,
    /// The MISR state outputs (signature).
    pub misr: Word,
    /// The nets the MISR compacts (its functional observation inputs).
    pub observed: Word,
}

/// Fibonacci-LFSR feedback taps for a few common widths (positions counted
/// from 1 as in the usual tables; the corresponding polynomial is primitive).
fn taps_for_width(width: usize) -> Vec<usize> {
    match width {
        2 => vec![2, 1],
        3 => vec![3, 2],
        4 => vec![4, 3],
        8 => vec![8, 6, 5, 4],
        16 => vec![16, 15, 13, 4],
        24 => vec![24, 23, 22, 17],
        32 => vec![32, 22, 2, 1],
        w => {
            // Fallback: xor of the two top bits (not necessarily maximal
            // length, but functional).
            vec![w, w - 1]
        }
    }
}

/// Generates an LFSR + MISR pair inside `builder`, clocked by `clock` and
/// compacting `observed` (padded/truncated to the configured width).
///
/// When the enable input is 0 both registers hold their state — in mission
/// mode the whole block is therefore frozen.
pub fn generate_bist(
    builder: &mut NetlistBuilder,
    clock: NetId,
    observed: &[NetId],
    config: &BistConfig,
) -> BistBlock {
    builder.push_group("bist");
    let width = config.width.max(2);
    let enable = builder.input(&config.enable_name);

    // --- LFSR ----------------------------------------------------------------
    let lfsr_d: Vec<NetId> = (0..width)
        .map(|i| builder.netlist_mut().add_net(format!("lfsr_d{i}")))
        .collect();
    let lfsr_q: Word = lfsr_d.iter().map(|&d| builder.dff(d, clock)).collect();
    let taps = taps_for_width(width);
    let tap_nets: Vec<NetId> = taps
        .iter()
        .filter(|&&t| t >= 1 && t <= width)
        .map(|&t| lfsr_q[t - 1])
        .collect();
    let mut feedback = builder.xor(&tap_nets);
    // Ensure the all-zero lockup state escapes: feedback ^= (state == 0).
    let is_zero = builder.is_zero(&lfsr_q);
    feedback = builder.xor2(feedback, is_zero);
    for i in 0..width {
        let shifted_in = if i == 0 { feedback } else { lfsr_q[i - 1] };
        let next = builder.mux2(lfsr_q[i], shifted_in, enable);
        let name = format!("u_lfsr_buf{i}");
        builder
            .netlist_mut()
            .add_cell(netlist::CellKind::Buf, name, &[next], Some(lfsr_d[i]));
    }

    // --- MISR ----------------------------------------------------------------
    let observed_padded: Word = (0..width)
        .map(|i| observed.get(i).copied().unwrap_or_else(|| builder.tie0()))
        .collect();
    let misr_d: Vec<NetId> = (0..width)
        .map(|i| builder.netlist_mut().add_net(format!("misr_d{i}")))
        .collect();
    let misr_q: Word = misr_d.iter().map(|&d| builder.dff(d, clock)).collect();
    let misr_taps: Vec<NetId> = taps
        .iter()
        .filter(|&&t| t >= 1 && t <= width)
        .map(|&t| misr_q[t - 1])
        .collect();
    let misr_feedback = builder.xor(&misr_taps);
    for i in 0..width {
        let shifted_in = if i == 0 { misr_feedback } else { misr_q[i - 1] };
        let mixed = builder.xor2(shifted_in, observed_padded[i]);
        let next = builder.mux2(misr_q[i], mixed, enable);
        let name = format!("u_misr_buf{i}");
        builder
            .netlist_mut()
            .add_cell(netlist::CellKind::Buf, name, &[next], Some(misr_d[i]));
    }

    builder.pop_group();
    BistBlock {
        enable,
        lfsr: lfsr_q,
        misr: misr_q,
        observed: observed_padded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{Logic, SeqSim};
    use netlist::NetlistBuilder;
    use std::collections::HashMap;

    fn lfsr_state(n: &netlist::Netlist, state: &[Logic], q: &[NetId]) -> u64 {
        q.iter()
            .enumerate()
            .map(|(i, &net)| {
                let ff = n.driver_of(net).unwrap();
                (state[ff.index()].to_bool().unwrap_or(false) as u64) << i
            })
            .sum()
    }

    #[test]
    fn lfsr_advances_only_when_enabled() {
        let mut b = NetlistBuilder::new("bist");
        let ck = b.input("ck");
        let block = generate_bist(
            &mut b,
            ck,
            &[],
            &BistConfig {
                width: 8,
                ..BistConfig::default()
            },
        );
        b.output_bus("sig", &block.misr);
        let n = b.finish();
        let sim = SeqSim::new(&n).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        let step = |state: &mut Vec<Logic>, en: bool, sim: &SeqSim| {
            let mut v: HashMap<NetId, Logic> = HashMap::new();
            v.insert(block.enable, Logic::from_bool(en));
            v.insert(ck, Logic::One);
            sim.step(state, &v, &HashMap::new(), None);
        };
        // Disabled: state stays at 0.
        step(&mut state, false, &sim);
        step(&mut state, false, &sim);
        assert_eq!(lfsr_state(&n, &state, &block.lfsr), 0);
        // Enabled: the zero-escape kicks in and the LFSR starts cycling.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            step(&mut state, true, &sim);
            seen.insert(lfsr_state(&n, &state, &block.lfsr));
        }
        assert!(
            seen.len() > 20,
            "LFSR should visit many states, saw {}",
            seen.len()
        );
        // Freeze again: the state holds.
        let frozen = lfsr_state(&n, &state, &block.lfsr);
        step(&mut state, false, &sim);
        assert_eq!(lfsr_state(&n, &state, &block.lfsr), frozen);
    }

    #[test]
    fn misr_signature_depends_on_observed_values() {
        let mut b = NetlistBuilder::new("bist");
        let ck = b.input("ck");
        let data = b.input_bus("data", 4);
        let block = generate_bist(
            &mut b,
            ck,
            &data,
            &BistConfig {
                width: 4,
                ..BistConfig::default()
            },
        );
        b.output_bus("sig", &block.misr);
        let n = b.finish();
        let sim = SeqSim::new(&n).unwrap();
        let run = |inputs: &[u64]| -> u64 {
            let mut state = sim.uniform_state(Logic::Zero);
            for &word in inputs {
                let mut v: HashMap<NetId, Logic> = HashMap::new();
                v.insert(block.enable, Logic::One);
                v.insert(ck, Logic::One);
                for (i, &net) in data.iter().enumerate() {
                    v.insert(net, Logic::from_bool((word >> i) & 1 == 1));
                }
                sim.step(&mut state, &v, &HashMap::new(), None);
            }
            lfsr_state(&n, &state, &block.misr)
        };
        let sig_a = run(&[0x3, 0x5, 0xA, 0xF]);
        let sig_b = run(&[0x3, 0x5, 0xB, 0xF]);
        assert_ne!(
            sig_a, sig_b,
            "a single-bit difference must change the signature"
        );
        assert_eq!(
            sig_a,
            run(&[0x3, 0x5, 0xA, 0xF]),
            "signature is deterministic"
        );
    }

    #[test]
    fn taps_are_within_range_for_all_widths() {
        for width in 2..=33 {
            for tap in taps_for_width(width) {
                assert!(tap >= 1);
                // The fallback may produce taps beyond the table widths but
                // never beyond the register itself for supported widths.
                if [2, 3, 4, 8, 16, 24, 32].contains(&width) {
                    assert!(tap <= width);
                }
            }
        }
    }

    #[test]
    fn bist_cells_are_grouped() {
        let mut b = NetlistBuilder::new("bist");
        let ck = b.input("ck");
        generate_bist(&mut b, ck, &[], &BistConfig::default());
        let n = b.finish();
        assert!(!n.cells_in_group("bist").is_empty());
    }
}
