//! Mux-scan insertion: converts every plain D flip-flop into a mux-scan
//! flip-flop and stitches the scan chains, exactly the structure §3.1 of the
//! paper analyses (Fig. 2).

use netlist::{CellAttrs, CellId, CellKind, NetId, Netlist, PinIndex};
use serde::{Deserialize, Serialize};

/// Configuration of scan insertion.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Number of scan chains to build.
    pub num_chains: usize,
    /// Name of the scan-enable primary input.
    pub scan_enable_name: String,
    /// Prefix of the per-chain scan-in primary inputs (`<prefix><i>`).
    pub scan_in_prefix: String,
    /// Prefix of the per-chain scan-out primary outputs.
    pub scan_out_prefix: String,
    /// Insert a buffer between consecutive scan cells (the scan-path buffers
    /// §3.1 calls out as additional on-line untestable logic).
    pub insert_path_buffers: bool,
    /// The value the scan-enable signal holds in mission mode (usually 0:
    /// functional path selected).
    pub mission_scan_enable_value: bool,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            num_chains: 4,
            scan_enable_name: "scan_enable".to_string(),
            scan_in_prefix: "scan_in".to_string(),
            scan_out_prefix: "scan_out".to_string(),
            insert_path_buffers: true,
            mission_scan_enable_value: false,
        }
    }
}

/// One stitched scan chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanChain {
    /// The scan-in `Input` pseudo-cell.
    pub scan_in_port: CellId,
    /// The net driven by the scan-in port.
    pub scan_in_net: NetId,
    /// The scan-out `Output` pseudo-cell.
    pub scan_out_port: CellId,
    /// The scan flip-flops, in shift order (scan-in first).
    pub cells: Vec<CellId>,
    /// Buffers inserted on the scan path (empty when
    /// [`ScanConfig::insert_path_buffers`] is off).
    pub path_buffers: Vec<CellId>,
}

/// The result of scan insertion.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScanInsertion {
    /// The stitched chains.
    pub chains: Vec<ScanChain>,
    /// The scan-enable `Input` pseudo-cell (if any flip-flop was converted).
    pub scan_enable_port: Option<CellId>,
    /// The net driven by the scan-enable port.
    pub scan_enable_net: Option<NetId>,
    /// The configuration used.
    pub config: ScanConfig,
}

impl ScanInsertion {
    /// Total number of scan flip-flops across all chains.
    pub fn num_scan_cells(&self) -> usize {
        self.chains.iter().map(|c| c.cells.len()).sum()
    }
}

/// Converts every live plain D flip-flop of `netlist` into a mux-scan
/// flip-flop and stitches them into `config.num_chains` chains.
///
/// Flip-flops that are already `Sdff` are left untouched and not re-stitched.
/// Returns the inserted structure (ports, chain order, scan-path buffers).
pub fn insert_scan(netlist: &mut Netlist, config: &ScanConfig) -> ScanInsertion {
    let flops: Vec<CellId> = netlist
        .sequential_cells()
        .into_iter()
        .filter(|&ff| matches!(netlist.cell(ff).kind(), CellKind::Dff { .. }))
        .collect();

    if flops.is_empty() {
        return ScanInsertion {
            chains: Vec::new(),
            scan_enable_port: None,
            scan_enable_net: None,
            config: config.clone(),
        };
    }

    let (se_port, se_net) = netlist.add_input(&config.scan_enable_name);

    let num_chains = config.num_chains.max(1).min(flops.len());
    let chain_len = flops.len().div_ceil(num_chains);
    let mut chains = Vec::with_capacity(num_chains);

    for (chain_idx, chunk) in flops.chunks(chain_len).enumerate() {
        let (si_port, si_net) =
            netlist.add_input(format!("{}{}", config.scan_in_prefix, chain_idx));
        let mut prev_net = si_net;
        let mut cells = Vec::with_capacity(chunk.len());
        let mut path_buffers = Vec::new();

        for (pos, &ff) in chunk.iter().enumerate() {
            let si_source = if config.insert_path_buffers && pos > 0 {
                let buf_out = netlist.add_net(format!("scan_path_{chain_idx}_{pos}"));
                let buf = netlist.add_cell(
                    CellKind::Buf,
                    format!("u_scan_buf_{chain_idx}_{pos}"),
                    &[prev_net],
                    Some(buf_out),
                );
                netlist.set_attrs(buf, CellAttrs::with_group("scan"));
                path_buffers.push(buf);
                buf_out
            } else {
                prev_net
            };

            let cell = netlist.cell(ff);
            let reset = cell.kind().reset();
            let old_inputs = cell.inputs().to_vec();
            // Plain DFF pin order: [D, CK] or [D, CK, RST].
            let d = old_inputs[0];
            let ck = old_inputs[1];
            let mut new_inputs = vec![d, si_source, se_net, ck];
            if reset.is_some() {
                new_inputs.push(old_inputs[2]);
            }
            netlist.replace_cell(ff, CellKind::Sdff { reset }, &new_inputs);
            cells.push(ff);
            prev_net = netlist
                .output_net(ff)
                .expect("flip-flops always drive a net");
        }

        let scan_out_port =
            netlist.add_output(format!("{}{}", config.scan_out_prefix, chain_idx), prev_net);
        chains.push(ScanChain {
            scan_in_port: si_port,
            scan_in_net: si_net,
            scan_out_port,
            cells,
            path_buffers,
        });
    }

    ScanInsertion {
        chains,
        scan_enable_port: Some(se_port),
        scan_enable_net: Some(se_net),
        config: config.clone(),
    }
}

/// Returns the scan-enable pin reference of a scan flip-flop, if the cell is
/// one.
pub fn scan_enable_pin(netlist: &Netlist, cell: CellId) -> Option<PinIndex> {
    netlist.cell(cell).kind().scan_enable_pin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{NetlistBuilder, Reset};

    fn design_with_ffs(n_ffs: usize) -> Netlist {
        let mut b = NetlistBuilder::new("seq");
        let ck = b.input("ck");
        let d = b.input_bus("d", n_ffs);
        let q = b.register(&d, ck);
        b.output_bus("q", &q);
        b.finish()
    }

    #[test]
    fn all_dffs_become_sdffs() {
        let mut n = design_with_ffs(10);
        let result = insert_scan(&mut n, &ScanConfig::default());
        assert_eq!(result.num_scan_cells(), 10);
        for ff in n.sequential_cells() {
            assert!(matches!(n.cell(ff).kind(), CellKind::Sdff { .. }));
        }
        // 4 chains for 10 FFs: sizes 3/3/3/1.
        assert_eq!(result.chains.len(), 4);
        let sizes: Vec<usize> = result.chains.iter().map(|c| c.cells.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        // Ports exist.
        assert!(n.find_input("scan_enable").is_some());
        assert!(n.find_input("scan_in0").is_some());
        assert!(n.find_cell("scan_out0").is_some());
    }

    #[test]
    fn chain_is_stitched_in_order() {
        let mut n = design_with_ffs(6);
        let config = ScanConfig {
            num_chains: 1,
            insert_path_buffers: false,
            ..ScanConfig::default()
        };
        let result = insert_scan(&mut n, &config);
        assert_eq!(result.chains.len(), 1);
        let chain = &result.chains[0];
        // The SI pin of the first cell is the scan-in net.
        let first = chain.cells[0];
        let si_pin = n.cell(first).kind().scan_in_pin().unwrap();
        assert_eq!(n.input_net(first, si_pin), chain.scan_in_net);
        // Each next cell's SI is the previous cell's Q.
        for w in chain.cells.windows(2) {
            let q = n.output_net(w[0]).unwrap();
            let si_pin = n.cell(w[1]).kind().scan_in_pin().unwrap();
            assert_eq!(n.input_net(w[1], si_pin), q);
        }
        // The scan-out observes the last Q.
        let last_q = n.output_net(*chain.cells.last().unwrap()).unwrap();
        assert_eq!(n.cell(chain.scan_out_port).inputs()[0], last_q);
    }

    #[test]
    fn path_buffers_are_inserted_and_tagged() {
        let mut n = design_with_ffs(5);
        let config = ScanConfig {
            num_chains: 1,
            insert_path_buffers: true,
            ..ScanConfig::default()
        };
        let result = insert_scan(&mut n, &config);
        let chain = &result.chains[0];
        assert_eq!(chain.path_buffers.len(), 4);
        for &buf in &chain.path_buffers {
            assert_eq!(n.cell(buf).kind(), CellKind::Buf);
            assert!(n.cell(buf).attrs().in_group("scan"));
        }
    }

    #[test]
    fn all_scan_cells_share_the_scan_enable() {
        let mut n = design_with_ffs(8);
        let result = insert_scan(&mut n, &ScanConfig::default());
        let se = result.scan_enable_net.unwrap();
        for chain in &result.chains {
            for &ff in &chain.cells {
                let pin = n.cell(ff).kind().scan_enable_pin().unwrap();
                assert_eq!(n.input_net(ff, pin), se);
            }
        }
    }

    #[test]
    fn dff_with_reset_keeps_reset_pin() {
        let mut b = NetlistBuilder::new("r");
        let ck = b.input("ck");
        let rst = b.input("rstn");
        let d = b.input("d");
        let q = b.dff_r(d, ck, rst, Reset::ActiveLow);
        b.output("q", q);
        let mut n = b.finish();
        insert_scan(&mut n, &ScanConfig::default());
        let ff = n.sequential_cells()[0];
        let kind = n.cell(ff).kind();
        assert_eq!(
            kind,
            CellKind::Sdff {
                reset: Some(Reset::ActiveLow)
            }
        );
        let rst_pin = kind.reset_pin().unwrap();
        assert_eq!(n.input_net(ff, rst_pin), rst);
    }

    #[test]
    fn design_without_ffs_is_untouched() {
        let mut b = NetlistBuilder::new("comb");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let mut n = b.finish();
        let before = n.num_cells();
        let result = insert_scan(&mut n, &ScanConfig::default());
        assert!(result.chains.is_empty());
        assert!(result.scan_enable_port.is_none());
        assert_eq!(n.num_cells(), before);
    }

    #[test]
    fn scan_shift_actually_shifts() {
        use atpg::{Logic, SeqSim};
        use std::collections::HashMap;
        let mut n = design_with_ffs(3);
        let config = ScanConfig {
            num_chains: 1,
            insert_path_buffers: true,
            ..ScanConfig::default()
        };
        let result = insert_scan(&mut n, &config);
        let chain = &result.chains[0];
        let se = result.scan_enable_net.unwrap();
        let si = chain.scan_in_net;
        let ck = n.find_net("ck").unwrap();
        let sim = SeqSim::new(&n).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        // Shift in 1, 0, 1 with SE=1.
        for bit in [true, false, true] {
            let mut v = HashMap::new();
            v.insert(se, Logic::One);
            v.insert(si, Logic::from_bool(bit));
            v.insert(ck, Logic::One);
            for d in n.primary_input_nets() {
                v.entry(d).or_insert(Logic::Zero);
            }
            sim.step(&mut state, &v, &HashMap::new(), None);
        }
        // After three shifts the first value (1) reached the last flop.
        let last = *chain.cells.last().unwrap();
        let first = chain.cells[0];
        assert_eq!(state[last.index()], Logic::One);
        assert_eq!(state[first.index()], Logic::One);
        assert_eq!(state[chain.cells[1].index()], Logic::Zero);
    }
}
