//! Design-for-test and design-for-debug infrastructure for the DATE 2013
//! on-line untestability reproduction:
//!
//! * [`scan`] — mux-scan insertion and chain stitching (the structures §3.1
//!   of the paper analyses);
//! * [`trace`] — the scan-chain tracer ("ad-hoc tool able to trace the
//!   chain") that recovers chain order, SI/SE nets and scan-path buffers;
//! * [`debug`] — Nexus-style debug register access and observation buses
//!   (§3.2, Fig. 4);
//! * [`jtag`] — an IEEE 1149.1 TAP controller generator (the "entire JTAG
//!   access port" of the case study);
//! * [`bist`] — LFSR/MISR logic BIST blocks.
//!
//! # Examples
//!
//! ```
//! use dft::scan::{insert_scan, ScanConfig};
//! use dft::trace::{find_scan_in_ports, trace_scan_chains};
//! use netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("demo");
//! let ck = b.input("ck");
//! let d = b.input_bus("d", 8);
//! let q = b.register(&d, ck);
//! b.output_bus("q", &q);
//! let mut design = b.finish();
//!
//! let inserted = insert_scan(&mut design, &ScanConfig::default());
//! let ports = find_scan_in_ports(&design, "scan_in");
//! let trace = trace_scan_chains(&design, &ports, "scan_out").unwrap();
//! assert_eq!(trace.num_flops(), inserted.num_scan_cells());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bist;
pub mod debug;
pub mod jtag;
pub mod scan;
pub mod trace;

pub use bist::{generate_bist, BistBlock, BistConfig};
pub use debug::{insert_debug_access, DebugConfig, DebugUnit};
pub use jtag::{generate_jtag, JtagConfig, JtagPort, TapState};
pub use scan::{insert_scan, ScanChain, ScanConfig, ScanInsertion};
pub use trace::{
    find_scan_in_ports, trace_scan_chains, ScanElement, ScanTrace, TraceError, TracedChain,
};
