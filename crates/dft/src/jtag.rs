//! IEEE 1149.1 (JTAG) test access port generator.
//!
//! The generator produces the standard 16-state TAP controller finite state
//! machine, a 4-bit instruction register and an 8-bit test data register, all
//! as plain gates and flip-flops tagged with the `debug.jtag` group. The SoC
//! builder instantiates it to model the "entire JTAG access port" that the
//! case study of §4 found tied off in mission mode.

use netlist::{NetId, NetlistBuilder, Word};
use serde::{Deserialize, Serialize};

/// The TAP controller states, encoded in the conventional 4-bit encoding.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum TapState {
    TestLogicReset = 0xF,
    RunTestIdle = 0xC,
    SelectDrScan = 0x7,
    CaptureDr = 0x6,
    ShiftDr = 0x2,
    Exit1Dr = 0x1,
    PauseDr = 0x3,
    Exit2Dr = 0x0,
    UpdateDr = 0x5,
    SelectIrScan = 0x4,
    CaptureIr = 0xE,
    ShiftIr = 0xA,
    Exit1Ir = 0x9,
    PauseIr = 0xB,
    Exit2Ir = 0x8,
    UpdateIr = 0xD,
}

impl TapState {
    /// The next state given the TMS value, following the IEEE 1149.1 state
    /// diagram.
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, false) => RunTestIdle,
            (TestLogicReset, true) => TestLogicReset,
            (RunTestIdle, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (SelectDrScan, false) => CaptureDr,
            (SelectDrScan, true) => SelectIrScan,
            (CaptureDr, false) => ShiftDr,
            (CaptureDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (Exit1Dr, false) => PauseDr,
            (Exit1Dr, true) => UpdateDr,
            (PauseDr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (Exit2Dr, false) => ShiftDr,
            (Exit2Dr, true) => UpdateDr,
            (UpdateDr, false) => RunTestIdle,
            (UpdateDr, true) => SelectDrScan,
            (SelectIrScan, false) => CaptureIr,
            (SelectIrScan, true) => TestLogicReset,
            (CaptureIr, false) => ShiftIr,
            (CaptureIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (Exit1Ir, false) => PauseIr,
            (Exit1Ir, true) => UpdateIr,
            (PauseIr, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (Exit2Ir, false) => ShiftIr,
            (Exit2Ir, true) => UpdateIr,
            (UpdateIr, false) => RunTestIdle,
            (UpdateIr, true) => SelectDrScan,
        }
    }

    /// All sixteen states.
    pub const ALL: [TapState; 16] = [
        TapState::Exit2Dr,
        TapState::Exit1Dr,
        TapState::ShiftDr,
        TapState::PauseDr,
        TapState::SelectIrScan,
        TapState::UpdateDr,
        TapState::CaptureDr,
        TapState::SelectDrScan,
        TapState::Exit2Ir,
        TapState::Exit1Ir,
        TapState::ShiftIr,
        TapState::PauseIr,
        TapState::RunTestIdle,
        TapState::UpdateIr,
        TapState::CaptureIr,
        TapState::TestLogicReset,
    ];

    /// The state with the given 4-bit encoding.
    pub fn from_code(code: u8) -> TapState {
        TapState::ALL[code as usize & 0xF]
    }
}

/// Configuration of the JTAG port generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JtagConfig {
    /// Name prefix for the JTAG ports.
    pub port_prefix: String,
    /// Width of the instruction register.
    pub ir_width: usize,
    /// Width of the test data register.
    pub dr_width: usize,
}

impl Default for JtagConfig {
    fn default() -> Self {
        JtagConfig {
            port_prefix: "jtag".to_string(),
            ir_width: 4,
            dr_width: 8,
        }
    }
}

/// The ports and key internal nets of a generated JTAG TAP.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JtagPort {
    /// TMS primary-input net.
    pub tms: NetId,
    /// TDI primary-input net.
    pub tdi: NetId,
    /// TRST (active low) primary-input net.
    pub trst_n: NetId,
    /// TDO primary-output observation net.
    pub tdo: NetId,
    /// One-hot "TAP is in Shift-DR" net, exported to the debug unit.
    pub shift_dr: NetId,
    /// One-hot "TAP is in Update-DR" net.
    pub update_dr: NetId,
    /// The instruction register outputs.
    pub instruction: Word,
    /// The data register outputs.
    pub data_register: Word,
    /// All primary-input nets of the port (TMS, TDI, TRST) — the signals the
    /// mission configuration ties off.
    pub input_nets: Vec<NetId>,
}

/// Generates a JTAG TAP controller inside `builder`, clocked by `clock`.
///
/// All cells are created under the `debug.jtag` group.
pub fn generate_jtag(builder: &mut NetlistBuilder, clock: NetId, config: &JtagConfig) -> JtagPort {
    builder.push_group("debug");
    builder.push_group("jtag");

    let tms = builder.input(format!("{}_tms", config.port_prefix));
    let tdi = builder.input(format!("{}_tdi", config.port_prefix));
    let trst_n = builder.input(format!("{}_trst_n", config.port_prefix));

    // --- TAP controller state register -----------------------------------
    // The state is held in 4 flip-flops; the next state is selected by a
    // 16-way mux over the current state, with TMS choosing between the two
    // successor states of each entry.
    let state_d: Vec<NetId> = (0..4)
        .map(|i| builder.netlist_mut().add_net(format!("tap_state_d{i}")))
        .collect();
    let state_q: Word = state_d.iter().map(|&d| builder.dff(d, clock)).collect();

    let mut next_words: Vec<Word> = Vec::with_capacity(16);
    for code in 0..16u8 {
        let state = TapState::from_code(code);
        let next0 = state.next(false) as u8 as u64;
        let next1 = state.next(true) as u8 as u64;
        let w0 = builder.const_word(next0, 4);
        let w1 = builder.const_word(next1, 4);
        let chosen = builder.mux2_word(&w0, &w1, tms);
        next_words.push(chosen);
    }
    let mut next_state = builder.mux_tree(&next_words, &state_q);
    // Asynchronous-style TRST modelled synchronously: when TRST is asserted
    // (low) the next state is Test-Logic-Reset (all ones).
    let ones = builder.const_word(TapState::TestLogicReset as u8 as u64, 4);
    next_state = builder.mux2_word(&ones, &next_state, trst_n);
    for (i, (&d, &ns)) in state_d.iter().zip(next_state.iter()).enumerate() {
        let name = format!("u_tap_state_buf{i}");
        builder
            .netlist_mut()
            .add_cell(netlist::CellKind::Buf, name, &[ns], Some(d));
    }

    // --- State decoding ----------------------------------------------------
    let shift_dr = builder.eq_const(&state_q, TapState::ShiftDr as u8 as u64);
    let update_dr = builder.eq_const(&state_q, TapState::UpdateDr as u8 as u64);
    let shift_ir = builder.eq_const(&state_q, TapState::ShiftIr as u8 as u64);

    // --- Instruction register ---------------------------------------------
    let mut ir_q: Word = Vec::with_capacity(config.ir_width);
    {
        let mut prev = tdi;
        for i in 0..config.ir_width {
            let d = builder.netlist_mut().add_net(format!("jtag_ir_d{i}"));
            let q = builder.dff(d, clock);
            // Shift when in Shift-IR, otherwise hold.
            let held = builder.mux2(q, prev, shift_ir);
            let name = format!("u_jtag_ir_buf{i}");
            builder
                .netlist_mut()
                .add_cell(netlist::CellKind::Buf, name, &[held], Some(d));
            prev = q;
            ir_q.push(q);
        }
    }

    // --- Test data register -------------------------------------------------
    let mut dr_q: Word = Vec::with_capacity(config.dr_width);
    {
        let mut prev = tdi;
        for i in 0..config.dr_width {
            let d = builder.netlist_mut().add_net(format!("jtag_dr_d{i}"));
            let q = builder.dff(d, clock);
            let held = builder.mux2(q, prev, shift_dr);
            let name = format!("u_jtag_dr_buf{i}");
            builder
                .netlist_mut()
                .add_cell(netlist::CellKind::Buf, name, &[held], Some(d));
            prev = q;
            dr_q.push(q);
        }
    }

    // --- TDO ----------------------------------------------------------------
    let last_ir = *ir_q.last().expect("ir_width >= 1");
    let last_dr = *dr_q.last().expect("dr_width >= 1");
    let tdo = builder.mux2(last_dr, last_ir, shift_ir);
    builder.output(format!("{}_tdo", config.port_prefix), tdo);

    builder.pop_group();
    builder.pop_group();

    JtagPort {
        tms,
        tdi,
        trst_n,
        tdo,
        shift_dr,
        update_dr,
        instruction: ir_q,
        data_register: dr_q,
        input_nets: vec![tms, tdi, trst_n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{Logic, SeqSim};
    use netlist::NetlistBuilder;
    use std::collections::HashMap;

    #[test]
    fn state_diagram_is_closed_and_reaches_reset() {
        // From any state, five TMS=1 cycles reach Test-Logic-Reset.
        for &state in &TapState::ALL {
            let mut s = state;
            for _ in 0..5 {
                s = s.next(true);
            }
            assert_eq!(s, TapState::TestLogicReset, "from {state:?}");
        }
    }

    #[test]
    fn from_code_roundtrips() {
        for &state in &TapState::ALL {
            assert_eq!(TapState::from_code(state as u8), state);
        }
    }

    #[test]
    fn generated_tap_follows_the_state_diagram() {
        let mut b = NetlistBuilder::new("jtag_only");
        let ck = b.input("ck");
        let port = generate_jtag(&mut b, ck, &JtagConfig::default());
        // Export the state for observation through the shift_dr decode.
        b.output("shift_dr", port.shift_dr);
        let n = b.finish();
        let sim = SeqSim::new(&n).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        // Drive the TAP: reset released, TMS sequence 0,1,0,0 brings the
        // controller from whatever state into Shift-DR (via Run-Test/Idle,
        // Select-DR, Capture-DR, Shift-DR). First apply TRST to synchronise.
        let step = |state: &mut Vec<Logic>, tms: bool, trst: bool, sim: &SeqSim| {
            let mut v: HashMap<netlist::NetId, Logic> = HashMap::new();
            v.insert(port.tms, Logic::from_bool(tms));
            v.insert(port.tdi, Logic::Zero);
            v.insert(port.trst_n, Logic::from_bool(trst));
            v.insert(ck, Logic::One);
            sim.step(state, &v, &HashMap::new(), None)
        };
        // Two cycles of reset.
        step(&mut state, true, false, &sim);
        step(&mut state, true, false, &sim);
        // Walk to Shift-DR.
        for tms in [false, true, false, false] {
            step(&mut state, tms, true, &sim);
        }
        // Now the decode net must be 1 during this cycle.
        let values = step(&mut state, false, true, &sim);
        assert_eq!(values[port.shift_dr.index()], Logic::One);
    }

    #[test]
    fn data_register_shifts_tdi_towards_tdo() {
        let mut b = NetlistBuilder::new("jtag_only");
        let ck = b.input("ck");
        let config = JtagConfig {
            dr_width: 3,
            ..JtagConfig::default()
        };
        let port = generate_jtag(&mut b, ck, &config);
        let n = b.finish();
        let sim = SeqSim::new(&n).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        let step = |state: &mut Vec<Logic>, tms: bool, tdi: bool, sim: &SeqSim| {
            let mut v: HashMap<netlist::NetId, Logic> = HashMap::new();
            v.insert(port.tms, Logic::from_bool(tms));
            v.insert(port.tdi, Logic::from_bool(tdi));
            v.insert(port.trst_n, Logic::One);
            v.insert(ck, Logic::One);
            sim.step(state, &v, &HashMap::new(), None);
        };
        // Reach Shift-DR: TMS = 1(Select-DR from Idle after reset) ...
        // First force reset state with TRST.
        {
            let mut v: HashMap<netlist::NetId, Logic> = HashMap::new();
            v.insert(port.tms, Logic::One);
            v.insert(port.tdi, Logic::Zero);
            v.insert(port.trst_n, Logic::Zero);
            v.insert(ck, Logic::One);
            sim.step(&mut state, &v, &HashMap::new(), None);
        }
        for tms in [false, true, false, false] {
            step(&mut state, tms, false, &sim);
        }
        // Shift three 1s through the 3-bit DR while staying in Shift-DR.
        for _ in 0..3 {
            step(&mut state, false, true, &sim);
        }
        // All DR bits are now 1.
        for &q in &port.data_register {
            let ff = n.driver_of(q).unwrap();
            assert_eq!(state[ff.index()], Logic::One);
        }
    }
}
