//! Nexus-style debug infrastructure (Fig. 3 / Fig. 4 of the paper):
//!
//! * **control access**: selected flip-flops get a debug multiplexer in front
//!   of their data pin so that an external debugger can force register
//!   contents (`DE` / `DI` in Fig. 4);
//! * **observation access**: selected internal nets are exported on dedicated
//!   observation buses that only an external debugger ever reads.
//!
//! In mission mode the debug enable is tied off and the observation buses are
//! not connected to anything — precisely the two situations §3.2 turns into
//! on-line functionally untestable faults.

use netlist::{CellAttrs, CellId, CellKind, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// Configuration of the debug-access insertion.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DebugConfig {
    /// Name of the debug-enable primary input (Fig. 4's `DE`).
    pub enable_name: String,
    /// Width of the debug data-in bus (Fig. 4's `DI`); register bits share
    /// bus bits round-robin.
    pub data_width: usize,
    /// Prefix of the debug data-in bus ports.
    pub data_prefix: String,
    /// Prefix of the observation bus ports.
    pub observation_prefix: String,
    /// Value the debug enable holds in mission mode (0: debugger absent).
    pub mission_enable_value: bool,
}

impl Default for DebugConfig {
    fn default() -> Self {
        DebugConfig {
            enable_name: "dbg_enable".to_string(),
            data_width: 32,
            data_prefix: "dbg_di".to_string(),
            observation_prefix: "dbg_obs".to_string(),
            mission_enable_value: false,
        }
    }
}

/// The structure created by [`insert_debug_access`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DebugUnit {
    /// The debug-enable `Input` pseudo-cell.
    pub enable_port: CellId,
    /// The net it drives.
    pub enable_net: NetId,
    /// The debug data-in `Input` pseudo-cells.
    pub data_ports: Vec<CellId>,
    /// The nets they drive.
    pub data_nets: Vec<NetId>,
    /// The observation `Output` pseudo-cells (one per observed net).
    pub observation_ports: Vec<CellId>,
    /// The debug multiplexers inserted in front of flip-flop data pins.
    pub control_muxes: Vec<CellId>,
    /// The buffers driving the observation ports.
    pub observation_buffers: Vec<CellId>,
    /// The configuration used.
    pub config: DebugConfig,
}

impl DebugUnit {
    /// All primary-input nets belonging to the debug control interface
    /// (enable + data bus) — the signals §3.2.1 ties to constants.
    pub fn control_input_nets(&self) -> Vec<NetId> {
        let mut nets = vec![self.enable_net];
        nets.extend(&self.data_nets);
        nets
    }
}

/// Inserts debug register access and observation buses.
///
/// * Every flip-flop in `control_targets` gets `D_eff = DE ? DI[i] : D`.
/// * Every net in `observe_nets` is buffered out to a dedicated observation
///   output port.
///
/// All created cells are tagged with the `debug.control` / `debug.observe`
/// groups.
pub fn insert_debug_access(
    netlist: &mut Netlist,
    control_targets: &[CellId],
    observe_nets: &[NetId],
    config: &DebugConfig,
) -> DebugUnit {
    let (enable_port, enable_net) = netlist.add_input(&config.enable_name);
    netlist.set_attrs(enable_port, CellAttrs::with_group("debug.control"));

    let width = config.data_width.max(1);
    let mut data_ports = Vec::with_capacity(width);
    let mut data_nets = Vec::with_capacity(width);
    for i in 0..width {
        let (port, net) = netlist.add_input(format!("{}[{}]", config.data_prefix, i));
        netlist.set_attrs(port, CellAttrs::with_group("debug.control"));
        data_ports.push(port);
        data_nets.push(net);
    }

    let mut control_muxes = Vec::with_capacity(control_targets.len());
    for (i, &ff) in control_targets.iter().enumerate() {
        let kind = netlist.cell(ff).kind();
        let Some(d_pin) = kind.data_pin() else {
            continue;
        };
        let d_net = netlist.input_net(ff, d_pin);
        let di_net = data_nets[i % width];
        let mux_out = netlist.add_net(format!("dbg_mux_{i}"));
        let mux = netlist.add_cell(
            CellKind::Mux2,
            format!("u_dbg_mux_{i}"),
            &[d_net, di_net, enable_net],
            Some(mux_out),
        );
        netlist.set_attrs(mux, CellAttrs::with_group("debug.control"));
        netlist.set_cell_input(ff, d_pin, mux_out);
        control_muxes.push(mux);
    }

    let mut observation_ports = Vec::with_capacity(observe_nets.len());
    let mut observation_buffers = Vec::with_capacity(observe_nets.len());
    for (i, &net) in observe_nets.iter().enumerate() {
        let buf_out = netlist.add_net(format!("{}_int[{}]", config.observation_prefix, i));
        let buf = netlist.add_cell(
            CellKind::Buf,
            format!("u_dbg_obs_buf_{i}"),
            &[net],
            Some(buf_out),
        );
        netlist.set_attrs(buf, CellAttrs::with_group("debug.observe"));
        let port = netlist.add_output(format!("{}[{}]", config.observation_prefix, i), buf_out);
        netlist.set_attrs(port, CellAttrs::with_group("debug.observe"));
        observation_ports.push(port);
        observation_buffers.push(buf);
    }

    DebugUnit {
        enable_port,
        enable_net,
        data_ports,
        data_nets,
        observation_ports,
        control_muxes,
        observation_buffers,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn base_design() -> (Netlist, Vec<CellId>, Vec<NetId>) {
        let mut b = NetlistBuilder::new("regs");
        let ck = b.input("ck");
        let d = b.input_bus("d", 8);
        let q = b.register(&d, ck);
        b.output_bus("q", &q);
        let n = b.finish();
        let flops = n.sequential_cells();
        (n, flops, q)
    }

    #[test]
    fn control_muxes_sit_in_front_of_data_pins() {
        let (mut n, flops, _q) = base_design();
        let config = DebugConfig {
            data_width: 4,
            ..DebugConfig::default()
        };
        let unit = insert_debug_access(&mut n, &flops, &[], &config);
        assert_eq!(unit.control_muxes.len(), 8);
        assert_eq!(unit.data_ports.len(), 4);
        for (&ff, &mux) in flops.iter().zip(&unit.control_muxes) {
            let d_pin = n.cell(ff).kind().data_pin().unwrap();
            assert_eq!(n.input_net(ff, d_pin), n.output_net(mux).unwrap());
            assert!(n.cell(mux).attrs().in_group("debug.control"));
            // The mux select is the debug enable.
            assert_eq!(n.cell(mux).inputs()[2], unit.enable_net);
        }
        // Data bus bits are shared round-robin.
        assert_eq!(n.cell(unit.control_muxes[0]).inputs()[1], unit.data_nets[0]);
        assert_eq!(n.cell(unit.control_muxes[5]).inputs()[1], unit.data_nets[1]);
    }

    #[test]
    fn observation_buses_are_buffered_outputs() {
        let (mut n, _flops, q) = base_design();
        let unit = insert_debug_access(&mut n, &[], &q, &DebugConfig::default());
        assert_eq!(unit.observation_ports.len(), 8);
        assert_eq!(unit.observation_buffers.len(), 8);
        for (&port, &buf) in unit.observation_ports.iter().zip(&unit.observation_buffers) {
            assert_eq!(n.cell(port).kind(), CellKind::Output);
            assert_eq!(n.cell(port).inputs()[0], n.output_net(buf).unwrap());
            assert!(n.cell(buf).attrs().in_group("debug.observe"));
        }
    }

    #[test]
    fn control_input_nets_lists_enable_and_data() {
        let (mut n, flops, _) = base_design();
        let config = DebugConfig {
            data_width: 2,
            ..DebugConfig::default()
        };
        let unit = insert_debug_access(&mut n, &flops, &[], &config);
        let nets = unit.control_input_nets();
        assert_eq!(nets.len(), 3);
        assert_eq!(nets[0], unit.enable_net);
    }

    #[test]
    fn mission_behaviour_unchanged_when_enable_low() {
        use atpg::{FaultSim, InputVector};
        let (mut n, flops, _) = base_design();
        let before = {
            let sim = FaultSim::new(&n).unwrap();
            let d0 = n.find_net("d[0]").unwrap();
            let vectors: Vec<InputVector> = (0..4)
                .map(|i| {
                    let mut v = InputVector::new();
                    v.insert(d0, i % 2 == 0);
                    v.insert(n.find_net("ck").unwrap(), true);
                    v
                })
                .collect();
            sim.good_responses(&vectors)
        };
        insert_debug_access(&mut n, &flops, &[], &DebugConfig::default());
        let after = {
            let sim = FaultSim::new(&n).unwrap();
            let d0 = n.find_net("d[0]").unwrap();
            let vectors: Vec<InputVector> = (0..4)
                .map(|i| {
                    let mut v = InputVector::new();
                    v.insert(d0, i % 2 == 0);
                    v.insert(n.find_net("ck").unwrap(), true);
                    // dbg_enable defaults to 0 (absent from the vector).
                    v
                })
                .collect();
            sim.good_responses(&vectors)
        };
        assert_eq!(before, after, "debug logic must be transparent when DE=0");
    }

    #[test]
    fn flops_without_data_pin_are_skipped_gracefully() {
        let (mut n, mut flops, _) = base_design();
        // Append a combinational cell id on purpose: it has no data pin and
        // must simply be skipped.
        let a = n.primary_inputs()[0];
        flops.push(a);
        let unit = insert_debug_access(&mut n, &flops, &[], &DebugConfig::default());
        assert_eq!(unit.control_muxes.len(), 8);
    }
}
