//! Campaign-survivability regression suite: deterministic failure injection
//! (panics, stalls, corrupted SAT models), cooperative deadlines and
//! cancellation, and the checkpoint/resume contract — an interrupted
//! campaign, resumed from its checkpoint, must classify the fault
//! population bit-identically to an uninterrupted run and re-prove only the
//! faults the interrupted run never concluded.

use atpg::{
    campaign_fingerprint, prove_faults_campaign, AbortReason, Budget, CancelToken, Checkpoint,
    ConstraintSet, FailurePlan, ProofConfig, ProofEngine, ProofOutcome, SatProver, SatVerdict,
};
use faultmodel::{FaultList, StuckAt};
use netlist::{NetId, Netlist, NetlistBuilder};
use std::path::PathBuf;
use std::time::Duration;

/// A moderately sized pseudo-random combinational circuit (deterministic
/// spec → deterministic netlist): enough reconvergence for a mix of
/// testable and redundant faults, small enough to prove in milliseconds.
fn build_circuit(gates: usize) -> Netlist {
    let mut b = NetlistBuilder::new("robustness");
    let inputs: Vec<NetId> = (0..6).map(|i| b.input(format!("in{i}"))).collect();
    let mut signals = inputs;
    let mut state = 0x9e37_79b9u64;
    for i in 0..gates {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let code = (state >> 33) as usize;
        let a = signals[code % signals.len()];
        let c = signals[(code / 7 + i) % signals.len()];
        let g = match code % 6 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.nor2(a, c),
            _ => b.mux2(a, c, signals[(code / 11) % signals.len()]),
        };
        signals.push(g);
    }
    for (i, &net) in signals.iter().rev().take(3).enumerate() {
        b.output(format!("out{i}"), net);
    }
    b.finish()
}

fn universe(netlist: &Netlist) -> Vec<StuckAt> {
    FaultList::full_universe(netlist).faults().to_vec()
}

/// A self-cleaning temp file path, unique per test and process.
struct TempCheckpoint(PathBuf);

impl TempCheckpoint {
    fn new(tag: &str) -> Self {
        TempCheckpoint(std::env::temp_dir().join(format!(
            "untestable-robustness-{}-{tag}.ckpt",
            std::process::id()
        )))
    }
}

impl Drop for TempCheckpoint {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn sequential_config() -> ProofConfig {
    ProofConfig {
        threads: 1,
        use_sat: true,
        ..ProofConfig::default()
    }
}

#[test]
fn injected_panic_is_isolated_and_the_campaign_survives() {
    let netlist = build_circuit(30);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    let config = ProofConfig {
        use_collapse: false, // every input index reaches an engine
        failure_plan: Some(FailurePlan {
            panic_on: Some(3),
            ..FailurePlan::default()
        }),
        ..sequential_config()
    };
    let campaign = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &config,
        &Budget::unlimited(),
        None,
    )
    .unwrap();

    let poisoned = &campaign.outcomes[3];
    assert_eq!(poisoned.outcome, ProofOutcome::Aborted);
    assert_eq!(poisoned.reason, Some(AbortReason::Panicked));

    // Every other fault concluded exactly as a clean run concludes it: the
    // panic neither lost the campaign nor leaked poisoned engine state.
    let clean = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &ProofConfig {
            use_collapse: false,
            ..sequential_config()
        },
        &Budget::unlimited(),
        None,
    )
    .unwrap();
    for (i, (injected, reference)) in campaign.outcomes.iter().zip(&clean.outcomes).enumerate() {
        if i == 3 {
            continue;
        }
        assert_eq!(injected, reference, "fault {i} diverged after the panic");
    }
}

#[test]
fn injected_stall_is_cut_by_the_stage_deadline() {
    let netlist = build_circuit(20);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    let config = ProofConfig {
        use_collapse: false,
        failure_plan: Some(FailurePlan {
            stall_on: Some(0),
            ..FailurePlan::default()
        }),
        ..sequential_config()
    };
    let budget = Budget::unlimited().with_stage_timeout(Duration::from_millis(100));
    let campaign =
        prove_faults_campaign(&netlist, &constraints, &faults, &config, &budget, None).unwrap();
    assert_eq!(campaign.outcomes[0].outcome, ProofOutcome::Aborted);
    assert_eq!(campaign.outcomes[0].reason, Some(AbortReason::Timeout));
    assert!(campaign.deadline_hit);
    // The stall consumed the whole stage budget, so everything after it is a
    // timeout abort too — and never a fabricated proof.
    for outcome in &campaign.outcomes[1..] {
        assert_eq!(outcome.outcome, ProofOutcome::Aborted);
        assert_eq!(outcome.reason, Some(AbortReason::Timeout));
    }
}

#[test]
fn stall_with_no_budget_limits_gives_up_instead_of_wedging() {
    let netlist = build_circuit(8);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    let config = ProofConfig {
        use_collapse: false,
        failure_plan: Some(FailurePlan {
            stall_on: Some(1),
            ..FailurePlan::default()
        }),
        ..sequential_config()
    };
    let campaign = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &config,
        &Budget::unlimited(),
        None,
    )
    .unwrap();
    assert_eq!(campaign.outcomes[1].reason, Some(AbortReason::Timeout));
    // Only the stalled fault is lost; an unlimited budget keeps on going.
    assert!(campaign
        .outcomes
        .iter()
        .enumerate()
        .all(|(i, o)| i == 1 || o.outcome != ProofOutcome::Aborted));
}

#[test]
fn corrupted_sat_model_is_rejected_by_the_replay_not_trusted() {
    let netlist = build_circuit(30);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    // Any mission-testable fault has a SAT model; corrupt it and the
    // mandatory simulation replay must catch the lie and withhold the
    // verdict instead of reporting a test that does not detect the fault.
    let mut sat = SatProver::new(&netlist, &constraints, 20_000).unwrap();
    let mut rejected = 0;
    for &fault in faults.iter().take(60) {
        if sat.prove(fault) != SatVerdict::TestExists {
            continue;
        }
        sat.corrupt_next_model();
        match sat.prove(fault) {
            // The replay caught the lie and withheld the verdict.
            SatVerdict::Aborted => {
                assert_eq!(sat.last_abort_reason(), Some(AbortReason::Unsupported));
                // The corruption is single-shot: the next attempt is clean.
                assert_eq!(sat.prove(fault), SatVerdict::TestExists);
                rejected += 1;
            }
            // The bit-flipped pattern coincidentally also detects the fault;
            // the replay verified it, so reporting the test is honest.
            SatVerdict::TestExists => {}
            other => panic!("corrupted model for {fault:?} produced {other:?}"),
        }
    }
    assert!(rejected > 0, "no corrupted model was caught by the replay");
}

#[test]
fn clause_limit_guard_declines_oversized_encodings() {
    let netlist = build_circuit(30);
    let constraints = ConstraintSet::full_scan();
    let fault = universe(&netlist)[0];
    let mut sat = SatProver::new(&netlist, &constraints, 20_000).unwrap();
    sat.set_clause_limit(1);
    assert_eq!(sat.prove(fault), SatVerdict::Unsupported);
    assert_eq!(sat.last_abort_reason(), Some(AbortReason::Unsupported));
}

#[test]
fn pre_cancelled_token_aborts_the_whole_campaign_as_timeouts() {
    let netlist = build_circuit(20);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(token);
    let campaign = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &sequential_config(),
        &budget,
        None,
    )
    .unwrap();
    assert!(campaign.deadline_hit);
    for outcome in &campaign.outcomes {
        assert_eq!(outcome.outcome, ProofOutcome::Aborted);
        assert_eq!(outcome.reason, Some(AbortReason::Timeout));
    }
}

/// The tentpole contract: interrupt a campaign mid-flight, resume from its
/// checkpoint, and the merged classification is bit-identical to an
/// uninterrupted run — with only the unconcluded faults re-proven.
#[test]
fn interrupted_campaign_resumes_bit_identical_from_checkpoint() {
    let netlist = build_circuit(40);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    // Collapse off + one thread makes the interruption point exact: faults
    // before the stall conclude, the stall eats the cancellation, faults
    // after it are never attempted.
    let config = ProofConfig {
        use_collapse: false,
        ..sequential_config()
    };
    let stall_at = faults.len() / 2;

    let reference = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &config,
        &Budget::unlimited(),
        None,
    )
    .unwrap();
    assert!(!reference.deadline_hit);

    let path = TempCheckpoint::new("interrupt-resume");
    let fingerprint = campaign_fingerprint(&netlist, &constraints, &config);

    // --- Interrupted run: stall mid-campaign, cancel from another thread.
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        })
    };
    let interrupted = {
        let checkpoint = Checkpoint::create_or_resume(&path.0, fingerprint).unwrap();
        assert_eq!(checkpoint.loaded(), 0);
        prove_faults_campaign(
            &netlist,
            &constraints,
            &faults,
            &ProofConfig {
                failure_plan: Some(FailurePlan {
                    stall_on: Some(stall_at),
                    ..FailurePlan::default()
                }),
                ..config
            },
            &Budget::unlimited().with_cancel(token),
            Some(&checkpoint),
        )
        .unwrap()
    };
    canceller.join().unwrap();
    assert!(interrupted.deadline_hit);
    assert_eq!(
        interrupted.outcomes[stall_at].reason,
        Some(AbortReason::Timeout)
    );

    // Everything the interrupted run *did* conclude matches the reference.
    let concluded: Vec<usize> = interrupted
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.outcome != ProofOutcome::Aborted)
        .map(|(i, _)| i)
        .collect();
    assert!(
        !concluded.is_empty(),
        "interruption landed before any proof"
    );
    assert!(concluded.len() < faults.len(), "nothing was interrupted");
    for &i in &concluded {
        assert_eq!(interrupted.outcomes[i], reference.outcomes[i]);
    }

    // --- Resumed run: same campaign, fresh budget, same checkpoint file.
    let checkpoint = Checkpoint::create_or_resume(&path.0, fingerprint).unwrap();
    // Timeout aborts are never persisted: what the file holds is exactly
    // the interrupted run's deterministic verdicts.
    let persisted = interrupted
        .outcomes
        .iter()
        .filter(|o| {
            o.outcome != ProofOutcome::Aborted || o.reason.is_some_and(|r| r.is_deterministic())
        })
        .count();
    assert_eq!(checkpoint.loaded(), persisted);
    let resumed = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &config,
        &Budget::unlimited(),
        Some(&checkpoint),
    )
    .unwrap();

    // Only the unconcluded faults were re-proven…
    assert_eq!(resumed.from_checkpoint, persisted);
    assert!(resumed.from_checkpoint > 0);
    assert!(resumed.from_checkpoint < faults.len());
    // …and the merged classification is bit-identical to the uninterrupted
    // run: same ProofOutcome, same abort reasons, for every fault.
    assert_eq!(resumed.outcomes.len(), reference.outcomes.len());
    for (i, (merged, single)) in resumed.outcomes.iter().zip(&reference.outcomes).enumerate() {
        assert_eq!(
            merged.outcome, single.outcome,
            "fault {i} classified differently after resume"
        );
        assert_eq!(
            merged.reason, single.reason,
            "fault {i} abort reason diverged"
        );
    }
    assert!(!resumed.deadline_hit);
}

/// Resume also replays the collapse schedule: with collapsing on, a resumed
/// campaign still classifies identically to an uninterrupted one.
#[test]
fn resume_replays_the_collapse_schedule() {
    let netlist = build_circuit(40);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    let config = sequential_config(); // collapse on
    let reference = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &config,
        &Budget::unlimited(),
        None,
    )
    .unwrap();

    let path = TempCheckpoint::new("collapse-resume");
    let fingerprint = campaign_fingerprint(&netlist, &constraints, &config);
    {
        // Interrupt with a stalled representative early in the schedule.
        let token = CancelToken::new();
        let checkpoint = Checkpoint::create_or_resume(&path.0, fingerprint).unwrap();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                token.cancel();
            })
        };
        prove_faults_campaign(
            &netlist,
            &constraints,
            &faults,
            &ProofConfig {
                failure_plan: Some(FailurePlan {
                    stall_on: Some(faults.len() / 3),
                    ..FailurePlan::default()
                }),
                ..config
            },
            &Budget::unlimited().with_cancel(token),
            Some(&checkpoint),
        )
        .unwrap();
        canceller.join().unwrap();
    }

    let checkpoint = Checkpoint::create_or_resume(&path.0, fingerprint).unwrap();
    let resumed = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &config,
        &Budget::unlimited(),
        Some(&checkpoint),
    )
    .unwrap();
    for (i, (merged, single)) in resumed.outcomes.iter().zip(&reference.outcomes).enumerate() {
        assert_eq!(
            merged.outcome, single.outcome,
            "fault {i} classified differently after collapse-scheduled resume"
        );
    }
}

#[test]
fn fault_timeout_bounds_each_fault_but_not_the_campaign() {
    let netlist = build_circuit(20);
    let constraints = ConstraintSet::full_scan();
    let faults = universe(&netlist);
    // A generous per-fault limit concludes everything; the budget machinery
    // along the hot path must not perturb verdicts.
    let unbounded = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &sequential_config(),
        &Budget::unlimited(),
        None,
    )
    .unwrap();
    let bounded = prove_faults_campaign(
        &netlist,
        &constraints,
        &faults,
        &sequential_config(),
        &Budget::unlimited().with_fault_timeout(Duration::from_secs(30)),
        None,
    )
    .unwrap();
    assert_eq!(unbounded.outcomes, bounded.outcomes);
    assert!(!bounded.deadline_hit);
    // Engine attribution sanity: the portfolio produced real work.
    assert!(bounded
        .outcomes
        .iter()
        .any(|o| o.engine == ProofEngine::Podem));
}
