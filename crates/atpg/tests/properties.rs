//! Property-based tests on the structural test engine: the constant
//! analysis is sound, the packed parallel-fault simulator agrees with the
//! scalar reference simulator, PODEM tests really detect their target fault,
//! collapsed-equivalent faults share their detection outcome, and the SAT
//! proof backend agrees with unlimited-budget PODEM and with exhaustive
//! enumeration under random mission constraints.

use atpg::proof::{prove_faults, ProofConfig};
use atpg::{
    analysis::StructuralAnalysis, constant::propagate_constants, CombSim, ConstraintSet, FaultSim,
    InputVector, Logic, Podem, PodemConfig, PodemOutcome, ProofOutcome, SatProver, SatVerdict,
    SeqSim,
};
use faultmodel::{collapse, FaultClass, FaultList, StuckAt};
use netlist::{NetId, Netlist, NetlistBuilder};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a small combinational circuit whose shape is driven by `spec`:
/// each entry adds a gate over two pseudo-randomly chosen existing signals.
fn build_circuit(spec: &[u8]) -> (Netlist, Vec<NetId>, Vec<NetId>) {
    let mut b = NetlistBuilder::new("prop");
    let inputs: Vec<NetId> = (0..6).map(|i| b.input(format!("in{i}"))).collect();
    let mut signals = inputs.clone();
    for (i, &code) in spec.iter().enumerate() {
        let a = signals[(code as usize) % signals.len()];
        let c = signals[(code as usize / 7 + i) % signals.len()];
        let g = match code % 6 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.nor2(a, c),
            _ => b.mux2(a, c, signals[(code as usize / 11) % signals.len()]),
        };
        signals.push(g);
    }
    let outputs: Vec<NetId> = signals.iter().rev().take(3).copied().collect();
    for (i, &net) in outputs.iter().enumerate() {
        b.output(format!("out{i}"), net);
    }
    (b.finish(), inputs, outputs)
}

/// Builds a small *sequential* circuit: gates as in [`build_circuit`], but
/// every gate produced by a `code` divisible by 5 is registered through a D
/// flip-flop (clocked by a dedicated input) whose output rejoins the signal
/// pool, so fault effects must survive state capture to be observed.
fn build_seq_circuit(spec: &[u8]) -> (Netlist, Vec<NetId>, NetId) {
    let mut b = NetlistBuilder::new("seqprop");
    let ck = b.input("ck");
    let inputs: Vec<NetId> = (0..5).map(|i| b.input(format!("in{i}"))).collect();
    let mut signals = inputs.clone();
    for (i, &code) in spec.iter().enumerate() {
        let a = signals[(code as usize) % signals.len()];
        let c = signals[(code as usize / 7 + i) % signals.len()];
        let g = match code % 6 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            4 => b.nor2(a, c),
            _ => b.mux2(a, c, signals[(code as usize / 11) % signals.len()]),
        };
        let g = if code % 5 == 0 { b.dff(g, ck) } else { g };
        signals.push(g);
    }
    let outputs: Vec<NetId> = signals.iter().rev().take(3).copied().collect();
    for (i, &net) in outputs.iter().enumerate() {
        b.output(format!("out{i}"), net);
    }
    (b.finish(), inputs, ck)
}

/// Scalar three-valued reference: a fault counts as detected when the good
/// and faulty [`SeqSim`] runs disagree with definite values at any primary
/// output in any cycle.
fn scalar_seq_detects(
    sim: &SeqSim<'_>,
    good: &[Vec<Logic>],
    vectors: &[HashMap<NetId, Logic>],
    fault: StuckAt,
) -> bool {
    let faulty = sim.run(vectors, Some(fault));
    good.iter().zip(&faulty).any(|(g_cycle, f_cycle)| {
        g_cycle
            .iter()
            .zip(f_cycle)
            .any(|(g, f)| g.is_definite() && f.is_definite() && g != f)
    })
}

fn eval_all(netlist: &Netlist, assignment: &HashMap<NetId, Logic>) -> Vec<Logic> {
    let sim = CombSim::new(netlist).unwrap();
    let mut values = sim.blank_values();
    for (&net, &v) in assignment {
        values[net.index()] = v;
    }
    sim.propagate(&mut values, &HashMap::new(), None);
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any net the constant analysis reports as constant must hold exactly
    /// that value under every input assignment compatible with the ties.
    #[test]
    fn constant_propagation_is_sound(
        spec in prop::collection::vec(any::<u8>(), 4..24),
        tie_mask in 0u8..64,
        tie_values in 0u8..64,
        samples in prop::collection::vec(0u8..64, 8),
    ) {
        let (netlist, inputs, _) = build_circuit(&spec);
        let mut constraints = ConstraintSet::full_scan();
        for (i, &net) in inputs.iter().enumerate() {
            if (tie_mask >> i) & 1 == 1 {
                constraints.tie_net(net, (tie_values >> i) & 1 == 1);
            }
        }
        let constants = propagate_constants(&netlist, &constraints).unwrap();
        for &sample in &samples {
            let mut assignment = HashMap::new();
            for (i, &net) in inputs.iter().enumerate() {
                let value = if (tie_mask >> i) & 1 == 1 {
                    (tie_values >> i) & 1 == 1
                } else {
                    (sample >> i) & 1 == 1
                };
                assignment.insert(net, Logic::from_bool(value));
            }
            let values = eval_all(&netlist, &assignment);
            for net in netlist.net_ids() {
                if let Some(expected) = constants.value(net).to_bool() {
                    prop_assert_eq!(
                        values[net.index()],
                        Logic::from_bool(expected),
                        "net {} claimed constant {} but evaluates differently",
                        netlist.net(net).name(),
                        expected
                    );
                }
            }
        }
    }

    /// The packed parallel-fault simulator and a scalar good/faulty
    /// comparison agree on combinational circuits.
    #[test]
    fn parallel_fault_sim_matches_scalar_reference(
        spec in prop::collection::vec(any::<u8>(), 4..20),
        patterns in prop::collection::vec(0u8..64, 1..6),
    ) {
        let (netlist, inputs, outputs) = build_circuit(&spec);
        let faults: Vec<StuckAt> = FaultList::full_universe(&netlist)
            .faults()
            .iter()
            .copied()
            .take(100)
            .collect();
        let vectors: Vec<InputVector> = patterns
            .iter()
            .map(|&p| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, (p >> i) & 1 == 1))
                    .collect()
            })
            .collect();
        let sim = FaultSim::new(&netlist).unwrap();
        let packed = sim.detect(&faults, &vectors);

        // Scalar reference: good vs faulty propagation per pattern.
        for (fi, &fault) in faults.iter().enumerate() {
            let mut expected = false;
            for &p in &patterns {
                let assignment: HashMap<NetId, Logic> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, Logic::from_bool((p >> i) & 1 == 1)))
                    .collect();
                let comb = CombSim::new(&netlist).unwrap();
                let mut good = comb.blank_values();
                let mut bad = comb.blank_values();
                for (&net, &v) in &assignment {
                    good[net.index()] = v;
                    bad[net.index()] = v;
                }
                comb.propagate(&mut good, &HashMap::new(), None);
                comb.propagate(&mut bad, &HashMap::new(), Some(fault));
                for po in netlist.primary_outputs() {
                    let g = comb.observed_value(&good, po, None);
                    let f = comb.observed_value(&bad, po, Some(fault));
                    if g.is_definite() && f.is_definite() && g != f {
                        expected = true;
                    }
                }
            }
            prop_assert_eq!(packed[fi], expected, "fault {:?}", fault);
        }
        let _ = outputs;
    }

    /// The compiled packed fault simulator agrees fault-by-fault with the
    /// scalar three-valued sequential reference on random netlists and
    /// multi-cycle vector sequences (restricted to fully-specified inputs,
    /// where three-valued and two-valued semantics coincide).
    #[test]
    fn compiled_packed_sim_matches_scalar_sequential_reference(
        spec in prop::collection::vec(any::<u8>(), 4..20),
        patterns in prop::collection::vec(0u8..32, 2..6),
    ) {
        let (netlist, inputs, ck) = build_seq_circuit(&spec);
        let faults: Vec<StuckAt> = FaultList::full_universe(&netlist)
            .faults()
            .iter()
            .copied()
            .take(90)
            .collect();
        let vectors: Vec<InputVector> = patterns
            .iter()
            .map(|&p| {
                let mut v: InputVector = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, (p >> i) & 1 == 1))
                    .collect();
                v.insert(ck, true);
                v
            })
            .collect();
        let logic_vectors: Vec<HashMap<NetId, Logic>> = vectors
            .iter()
            .map(|v| v.iter().map(|(&n, &b)| (n, Logic::from_bool(b))).collect())
            .collect();
        let packed_sim = FaultSim::new(&netlist).unwrap();
        let packed = packed_sim.detect(&faults, &vectors);
        let scalar_sim = SeqSim::new(&netlist).unwrap();
        let good = scalar_sim.run(&logic_vectors, None);
        for (fi, &fault) in faults.iter().enumerate() {
            let expected = scalar_seq_detects(&scalar_sim, &good, &logic_vectors, fault);
            prop_assert_eq!(packed[fi], expected, "fault {:?}", fault);
        }
    }

    /// Every test pattern PODEM produces is confirmed by the fault simulator.
    #[test]
    fn podem_tests_are_confirmed_by_fault_simulation(
        spec in prop::collection::vec(any::<u8>(), 4..20),
    ) {
        let (netlist, _, _) = build_circuit(&spec);
        let mut podem =
            Podem::new(&netlist, &ConstraintSet::full_scan(), PodemConfig::default()).unwrap();
        let sim = FaultSim::new(&netlist).unwrap();
        let faults: Vec<StuckAt> = FaultList::full_universe(&netlist)
            .faults()
            .iter()
            .copied()
            .take(60)
            .collect();
        for fault in faults {
            if let PodemOutcome::Test(pattern) = podem.generate(fault) {
                let vector: InputVector = pattern.assignments.clone();
                prop_assert_eq!(
                    sim.detect(&[fault], &[vector]),
                    vec![true],
                    "PODEM pattern does not detect {:?}",
                    fault
                );
            }
        }
    }

    /// Faults that collapse into the same equivalence class always share
    /// their detection outcome under any pattern set.
    #[test]
    fn collapsed_equivalent_faults_share_detection(
        spec in prop::collection::vec(any::<u8>(), 4..16),
        patterns in prop::collection::vec(0u8..64, 4..8),
    ) {
        let (netlist, inputs, _) = build_circuit(&spec);
        let list = FaultList::full_universe(&netlist);
        let collapsed = collapse(&netlist, &list);
        let vectors: Vec<InputVector> = patterns
            .iter()
            .map(|&p| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, (p >> i) & 1 == 1))
                    .collect()
            })
            .collect();
        let sim = FaultSim::new(&netlist).unwrap();
        let detected = sim.detect(list.faults(), &vectors);
        let mut per_class: HashMap<usize, bool> = HashMap::new();
        for (i, &hit) in detected.iter().enumerate() {
            let rep = collapsed.representative_of(i);
            if let Some(&prev) = per_class.get(&rep) {
                prop_assert_eq!(
                    prev,
                    hit,
                    "faults {:?} and class representative disagree",
                    list.faults()[i]
                );
            } else {
                per_class.insert(rep, hit);
            }
        }
    }

    /// Faults the constraint-aware PODEM proof engine declares
    /// `ProvenUntestable` are never detected by exhaustive enumeration of the
    /// free inputs, under random tie constraints and random output masks.
    #[test]
    fn podem_proofs_are_sound_under_random_constraints(
        spec in prop::collection::vec(any::<u8>(), 4..16),
        tie_mask in 0u8..64,
        tie_values in 0u8..64,
        output_mask in 0u8..8,
    ) {
        let (netlist, inputs, _) = build_circuit(&spec);
        let mut constraints = ConstraintSet::full_scan();
        let mut free_inputs = Vec::new();
        for (i, &net) in inputs.iter().enumerate() {
            if (tie_mask >> i) & 1 == 1 {
                constraints.tie_net(net, (tie_values >> i) & 1 == 1);
            } else {
                free_inputs.push(net);
            }
        }
        let outputs = netlist.primary_outputs();
        let mut observed = Vec::new();
        for (i, &po) in outputs.iter().enumerate() {
            if (output_mask >> i) & 1 == 1 {
                constraints.mask_output(po);
            } else {
                observed.push(po);
            }
        }
        let faults: Vec<StuckAt> = FaultList::full_universe(&netlist)
            .faults()
            .iter()
            .copied()
            .take(80)
            .collect();
        let outcomes = prove_faults(
            &netlist,
            &constraints,
            &faults,
            &ProofConfig { backtrack_limit: 10_000, threads: 1, ..ProofConfig::default() },
        )
        .unwrap();
        let proven: Vec<StuckAt> = faults
            .iter()
            .zip(&outcomes)
            .filter(|&(_, &o)| o == ProofOutcome::ProvenUntestable)
            .map(|(&f, _)| f)
            .collect();
        if proven.is_empty() {
            return Ok(());
        }
        // Exhaustive patterns over the free inputs (at most 2^6 = 64), with
        // the tied inputs held at their mission constants, observing only the
        // unmasked outputs.
        let vectors: Vec<InputVector> = (0..(1u32 << free_inputs.len()))
            .map(|p| {
                let mut v: InputVector = free_inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, (p >> i) & 1 == 1))
                    .collect();
                for (i, &net) in inputs.iter().enumerate() {
                    if (tie_mask >> i) & 1 == 1 {
                        v.insert(net, (tie_values >> i) & 1 == 1);
                    }
                }
                v
            })
            .collect();
        let sim = FaultSim::new(&netlist).unwrap();
        let detected = sim.detect_at(&proven, &vectors, &observed);
        for (fault, hit) in proven.iter().zip(detected) {
            prop_assert!(
                !hit,
                "fault {:?} was proven untestable but detected functionally",
                fault
            );
        }
    }

    /// Three-way differential: unlimited-budget PODEM, the SAT proof
    /// backend, and exhaustive enumeration of the free input space agree on
    /// which faults are functionally testable under random mission
    /// constraints. These circuits are purely combinational with every input
    /// either free or tied definite, so neither engine is ever allowed to
    /// abort or decline.
    #[test]
    fn podem_sat_and_exhaustive_enumeration_agree(
        spec in prop::collection::vec(any::<u8>(), 4..16),
        tie_mask in 0u8..64,
        tie_values in 0u8..64,
        output_mask in 0u8..8,
    ) {
        let (netlist, inputs, _) = build_circuit(&spec);
        let mut constraints = ConstraintSet::full_scan();
        let mut free_inputs = Vec::new();
        for (i, &net) in inputs.iter().enumerate() {
            if (tie_mask >> i) & 1 == 1 {
                constraints.tie_net(net, (tie_values >> i) & 1 == 1);
            } else {
                free_inputs.push(net);
            }
        }
        let outputs = netlist.primary_outputs();
        let mut observed = Vec::new();
        for (i, &po) in outputs.iter().enumerate() {
            if (output_mask >> i) & 1 == 1 {
                constraints.mask_output(po);
            } else {
                observed.push(po);
            }
        }
        let faults: Vec<StuckAt> = FaultList::full_universe(&netlist)
            .faults()
            .iter()
            .copied()
            .take(60)
            .collect();
        // Ground truth: exhaustive patterns over the free inputs (at most
        // 2^6 = 64), tied inputs held at their mission constants, observing
        // only the unmasked outputs.
        let vectors: Vec<InputVector> = (0..(1u32 << free_inputs.len()))
            .map(|p| {
                let mut v: InputVector = free_inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, (p >> i) & 1 == 1))
                    .collect();
                for (i, &net) in inputs.iter().enumerate() {
                    if (tie_mask >> i) & 1 == 1 {
                        v.insert(net, (tie_values >> i) & 1 == 1);
                    }
                }
                v
            })
            .collect();
        let sim = FaultSim::new(&netlist).unwrap();
        let detected = sim.detect_at(&faults, &vectors, &observed);
        let mut podem = Podem::new(
            &netlist,
            &constraints,
            PodemConfig { backtrack_limit: 1_000_000, ..PodemConfig::default() },
        )
        .unwrap();
        let mut sat = SatProver::new(&netlist, &constraints, u64::MAX).unwrap();
        for (&fault, hit) in faults.iter().zip(detected) {
            let podem_verdict = podem.prove(fault);
            let sat_verdict = sat.prove(fault);
            let want_podem =
                if hit { ProofOutcome::TestExists } else { ProofOutcome::ProvenUntestable };
            let want_sat =
                if hit { SatVerdict::TestExists } else { SatVerdict::ProvenUntestable };
            prop_assert_eq!(
                podem_verdict,
                want_podem,
                "PODEM disagrees with exhaustive enumeration on {:?}",
                fault
            );
            prop_assert_eq!(
                sat_verdict,
                want_sat,
                "SAT backend disagrees with exhaustive enumeration on {:?}",
                fault
            );
        }
    }

    /// The cone-clipped, SCOAP-guided PODEM engine returns exactly the same
    /// `ProofOutcome` as the full-netlist engine on random constrained
    /// netlists: clipping changes no decision, and with a budget generous
    /// enough that every search concludes, SCOAP's re-ordering cannot change
    /// a verdict either.
    #[test]
    fn clipped_scoap_guided_prove_matches_the_full_netlist_engine(
        spec in prop::collection::vec(any::<u8>(), 4..20),
        tie_mask in 0u8..64,
        tie_values in 0u8..64,
        output_mask in 0u8..8,
    ) {
        let (netlist, inputs, _) = build_circuit(&spec);
        let mut constraints = ConstraintSet::full_scan();
        for (i, &net) in inputs.iter().enumerate() {
            if (tie_mask >> i) & 1 == 1 {
                constraints.tie_net(net, (tie_values >> i) & 1 == 1);
            }
        }
        for (i, &po) in netlist.primary_outputs().iter().enumerate() {
            if (output_mask >> i) & 1 == 1 {
                constraints.mask_output(po);
            }
        }
        let mut accelerated = Podem::new(
            &netlist,
            &constraints,
            PodemConfig {
                backtrack_limit: 50_000,
                cone_clip: true,
                scoap_guidance: true,
                x_path_check: true,
            },
        )
        .unwrap();
        // The reference is the pre-acceleration engine: no clipping, no
        // guidance, no X-path pruning.
        let mut reference = Podem::new(
            &netlist,
            &constraints,
            PodemConfig {
                backtrack_limit: 50_000,
                cone_clip: false,
                scoap_guidance: false,
                x_path_check: false,
            },
        )
        .unwrap();
        for &fault in FaultList::full_universe(&netlist).faults().iter().take(90) {
            prop_assert_eq!(
                accelerated.prove(fault),
                reference.prove(fault),
                "fault {:?}",
                fault
            );
        }
    }

    /// Collapse-scheduled proving (one representative per equivalence class,
    /// concluded verdicts expanded across the class) matches proving every
    /// class member individually — the soundness of the expansion rule.
    #[test]
    fn collapse_expanded_verdicts_match_individual_proofs(
        spec in prop::collection::vec(any::<u8>(), 4..20),
        tie_mask in 0u8..64,
        tie_values in 0u8..64,
        internal_pick in 0u8..8,
        internal_value in any::<bool>(),
        threads in 1usize..4,
    ) {
        let (netlist, inputs, internal) = build_circuit(&spec);
        let mut constraints = ConstraintSet::full_scan();
        for (i, &net) in inputs.iter().enumerate() {
            if (tie_mask >> i) & 1 == 1 {
                constraints.tie_net(net, (tie_values >> i) & 1 == 1);
            }
        }
        // Half the cases also tie a gate-driven internal net: a forced net
        // masks stem faults but not branch faults, the case the scheduler
        // must keep out of the shared equivalence classes.
        if internal_pick < 4 {
            constraints.tie_net(internal[internal_pick as usize % internal.len()], internal_value);
        }
        let faults = FaultList::full_universe(&netlist).faults().to_vec();
        let scheduled = prove_faults(
            &netlist,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 50_000,
                threads,
                use_collapse: true,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let individual = prove_faults(
            &netlist,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 50_000,
                threads: 1,
                use_collapse: false,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        prop_assert_eq!(scheduled, individual);
    }

    /// Faults the structural analysis declares untestable are never detected
    /// by exhaustive simulation of the constrained circuit.
    #[test]
    fn structural_untestability_is_sound(
        spec in prop::collection::vec(any::<u8>(), 4..16),
        tie_mask in 0u8..64,
    ) {
        let (netlist, inputs, _) = build_circuit(&spec);
        let mut constraints = ConstraintSet::full_scan();
        let mut free_inputs = Vec::new();
        for (i, &net) in inputs.iter().enumerate() {
            if (tie_mask >> i) & 1 == 1 {
                constraints.tie_net(net, i % 2 == 0);
            } else {
                free_inputs.push(net);
            }
        }
        let mut faults = FaultList::full_universe(&netlist);
        StructuralAnalysis::with_constraints(constraints.clone())
            .run(&netlist, &mut faults)
            .unwrap();
        // Exhaustive patterns over the free inputs (at most 2^6 = 64).
        let vectors: Vec<InputVector> = (0..(1u32 << free_inputs.len()))
            .map(|p| {
                let mut v: InputVector = free_inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &net)| (net, (p >> i) & 1 == 1))
                    .collect();
                for (i, &net) in inputs.iter().enumerate() {
                    if (tie_mask >> i) & 1 == 1 {
                        v.insert(net, i % 2 == 0);
                    }
                }
                v
            })
            .collect();
        let sim = FaultSim::new(&netlist).unwrap();
        let untestable: Vec<StuckAt> = faults
            .iter()
            .filter(|&(_, c)| c.is_structurally_untestable())
            .map(|(f, _)| f)
            .collect();
        if untestable.is_empty() {
            return Ok(());
        }
        let detected = sim.detect(&untestable, &vectors);
        for (fault, hit) in untestable.iter().zip(detected) {
            prop_assert!(
                !hit,
                "fault {:?} was classified {:?} but detected functionally",
                fault,
                faults.class_of(*fault)
            );
        }
    }
}

#[test]
fn chunk_boundaries_do_not_change_detection() {
    // Fixed regression for the 63-fault packing boundary: grading 64, 126 or
    // 127 faults (1 bit into chunk 2, chunk 2 full, 1 bit into chunk 3) must
    // agree bit-for-bit with grading each fault alone.
    let mut b = NetlistBuilder::new("wide");
    let a = b.input_bus("a", 16);
    let c = b.input_bus("b", 16);
    let x = b.xor_word(&a, &c);
    b.output_bus("y", &x);
    let n = b.finish();
    let sim = FaultSim::new(&n).unwrap();
    let faults = FaultList::full_universe(&n).faults().to_vec();
    assert!(faults.len() >= 127, "need at least 127 faults");
    let vectors: Vec<InputVector> = (0..16u64)
        .map(|p| {
            let mut v = InputVector::new();
            for (i, &net) in a.iter().enumerate() {
                v.insert(net, (p >> i) & 1 == 1);
            }
            for (i, &net) in c.iter().enumerate() {
                v.insert(net, (p.wrapping_mul(7) >> i) & 1 == 1);
            }
            v
        })
        .collect();
    let reference: Vec<bool> = faults[..127]
        .iter()
        .map(|&f| sim.detect(&[f], &vectors)[0])
        .collect();
    for count in [64usize, 126, 127] {
        let got = sim.detect(&faults[..count], &vectors);
        assert_eq!(got, reference[..count], "fault count {count}");
    }
}

#[test]
fn proof_fanout_chunk_boundaries_match_per_fault_proofs() {
    // Regression for the proof engine's work-claiming chunks (16 faults per
    // cursor bump): populations of 15 / 16 / 17 / 64 / 127 faults (straddling
    // chunk boundaries, with a ragged tail) must come back identical to a
    // fresh single-engine proof of each fault alone, for any thread count.
    let mut b = NetlistBuilder::new("wide");
    let a = b.input_bus("a", 16);
    let c = b.input_bus("b", 16);
    let x = b.xor_word(&a, &c);
    b.output_bus("y", &x);
    let n = b.finish();
    let mut constraints = ConstraintSet::full_scan();
    // Mask one output so part of the population becomes provably untestable.
    let masked = n
        .primary_outputs()
        .into_iter()
        .find(|&po| n.cell(po).name().contains("y_0"))
        .unwrap_or_else(|| n.primary_outputs()[0]);
    constraints.mask_output(masked);
    let faults = FaultList::full_universe(&n).faults().to_vec();
    assert!(faults.len() >= 127, "need at least 127 faults");
    let config = PodemConfig {
        backtrack_limit: 10_000,
        ..PodemConfig::default()
    };
    let reference: Vec<ProofOutcome> = faults[..127]
        .iter()
        .map(|&f| Podem::new(&n, &constraints, config).unwrap().prove(f))
        .collect();
    assert!(
        reference.contains(&ProofOutcome::ProvenUntestable)
            && reference.contains(&ProofOutcome::TestExists),
        "the population should mix provable and testable faults"
    );
    for count in [15usize, 16, 17, 64, 127] {
        for threads in [1usize, 2, 5] {
            let got = prove_faults(
                &n,
                &constraints,
                &faults[..count],
                &ProofConfig {
                    backtrack_limit: 10_000,
                    threads,
                    ..ProofConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                got,
                reference[..count],
                "fault count {count}, {threads} threads"
            );
        }
    }
}

#[test]
fn analysis_and_podem_agree_on_redundant_classic() {
    // y = a OR (a AND b): the AND output stuck-at-0 is redundant; both the
    // fast structural pass (with PODEM enabled) and PODEM alone must agree.
    let mut b = NetlistBuilder::new("red");
    let a = b.input("a");
    let c = b.input("b");
    let t = b.and2(a, c);
    let y = b.or2(a, t);
    b.output("y", y);
    let n = b.finish();
    let and = n.driver_of(t).unwrap();
    let mut faults = FaultList::full_universe(&n);
    let analysis = StructuralAnalysis::new(atpg::AnalysisConfig {
        prove_redundancy: true,
        ..atpg::AnalysisConfig::default()
    });
    analysis.run(&n, &mut faults).unwrap();
    assert_eq!(
        faults.class_of(StuckAt::output(and, false)),
        Some(FaultClass::Redundant)
    );
}
