//! Tseitin-style CNF encoding of the cone-clipped fault machine and the SAT
//! untestability prover behind the PODEM/SAT portfolio ([`crate::proof`]).
//!
//! Per fault the encoder builds **two copies** of the fault site's fanout
//! cone — the good machine and the faulty machine — over a shared fan-in:
//! only the site and the cone gate outputs can differ between the machines,
//! so every other net aliases its good-machine encoding and the CNF stays
//! proportional to the cone plus its transitive fan-in rather than the whole
//! design. Detection is an OR of XOR-difference literals at the observation
//! nets inside the cone's neighbourhood (masked outputs never contribute),
//! plus the branch-observation term for an input-pin fault sitting directly
//! on an observation pin. Mission forces from the [`ConstraintSet`] enter as
//! **unit assumptions** on fresh variables.
//!
//! The two-valued encoding is exact for the three-valued engine because every
//! source net in the relevant fan-in is forced, tied, or controllable:
//! three-valued simulation is monotone, so a detecting partial assignment
//! extends to a detecting complete one, and any satisfying complete
//! assignment *is* a detecting test. When that precondition fails —
//! uncontrollable flip-flop outputs, floating nets, or an `X` force in the
//! fan-in — the prover declines with [`SatVerdict::Unsupported`] instead of
//! guessing, and the portfolio keeps the search engine's verdict.
//!
//! A `Sat` answer is never trusted on its own: the model is replayed through
//! [`CombSim`] with the fault injected and must reproduce the detection
//! before [`SatVerdict::TestExists`] is returned.

use std::collections::{HashMap, HashSet};

use faultmodel::{FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist, PinIndex};
use sat::{Lit, SolveResult, Solver, Var};

use crate::budget::AbortReason;
use crate::compiled::{SimScratch, NO_INDEX};
use crate::constant::ConstraintSet;
use crate::logic::Logic;
use crate::sim::{CombSim, NetValues};

/// Default ceiling on the number of CNF clauses one proof attempt may build.
/// A pathological cone (huge reconvergent fan-in) hits this guard and comes
/// back [`SatVerdict::Unsupported`] instead of exhausting memory inside the
/// solver.
pub const DEFAULT_CLAUSE_LIMIT: usize = 4_000_000;

/// Outcome of one SAT proof attempt.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SatVerdict {
    /// The solver found a test and the simulator confirmed it detects.
    TestExists,
    /// The CNF is unsatisfiable: no test exists under the constraints.
    ProvenUntestable,
    /// The conflict budget ran out before a verdict; the fault stays
    /// potentially testable.
    Aborted,
    /// The fault's environment falls outside the two-valued encoding
    /// (uncontrollable flip-flop output, floating net, or `X` force in the
    /// relevant fan-in); the caller should keep the search engine's verdict.
    Unsupported,
}

/// Marker error: the fan-in needed by the encoding contains a net the
/// two-valued CNF cannot represent exactly.
struct Unsupported;

/// A net's encoding: a known constant or a CNF literal.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Repr {
    Const(bool),
    Lit(Lit),
}

/// Accumulated observation terms of one fault encoding.
struct Detection {
    /// XOR-difference literals, one per observation net that can differ.
    terms: Vec<Lit>,
    /// Some difference folded to constant true: every consistent assignment
    /// detects the fault.
    trivially_detected: bool,
}

/// Per-fault CNF under construction: the solver, the lazily resolved good
/// machine, and the assumption/input bookkeeping.
struct Cnf<'n> {
    netlist: &'n Netlist,
    forced: &'n HashMap<NetId, Logic>,
    control_ff_outputs: bool,
    solver: Solver,
    /// Good-machine encoding per net, resolved on demand through the fan-in.
    good: HashMap<NetId, Repr>,
    /// Unit assumptions pinning the mission forces.
    assumptions: Vec<Lit>,
    /// Free controllable variables, for replaying a model through the
    /// simulator. Order is deterministic (resolution order).
    inputs: Vec<(NetId, Var)>,
    true_lit: Option<Lit>,
    /// Scratch for the iterative fan-in walk.
    stack: Vec<NetId>,
}

impl<'n> Cnf<'n> {
    fn new(
        netlist: &'n Netlist,
        forced: &'n HashMap<NetId, Logic>,
        control_ff_outputs: bool,
    ) -> Self {
        Cnf {
            netlist,
            forced,
            control_ff_outputs,
            solver: Solver::new(),
            good: HashMap::new(),
            assumptions: Vec::new(),
            inputs: Vec::new(),
            true_lit: None,
            stack: Vec::new(),
        }
    }

    /// A literal that is true in every model (created on first use).
    fn constant_true(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = Lit::positive(self.solver.new_var());
        self.solver.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    fn lit_of(&mut self, r: Repr) -> Lit {
        match r {
            Repr::Lit(l) => l,
            Repr::Const(b) => {
                let t = self.constant_true();
                if b {
                    t
                } else {
                    !t
                }
            }
        }
    }

    fn negate(r: Repr) -> Repr {
        match r {
            Repr::Const(b) => Repr::Const(!b),
            Repr::Lit(l) => Repr::Lit(!l),
        }
    }

    fn and_reprs(&mut self, ins: &[Repr]) -> Repr {
        let mut lits: Vec<Lit> = Vec::with_capacity(ins.len());
        for &r in ins {
            match r {
                Repr::Const(false) => return Repr::Const(false),
                Repr::Const(true) => {}
                Repr::Lit(l) => {
                    if lits.contains(&!l) {
                        return Repr::Const(false);
                    }
                    if !lits.contains(&l) {
                        lits.push(l);
                    }
                }
            }
        }
        match lits.len() {
            0 => Repr::Const(true),
            1 => Repr::Lit(lits[0]),
            _ => {
                let y = Lit::positive(self.solver.new_var());
                let mut all = Vec::with_capacity(lits.len() + 1);
                all.push(y);
                for &l in &lits {
                    self.solver.add_clause(&[!y, l]);
                    all.push(!l);
                }
                self.solver.add_clause(&all);
                Repr::Lit(y)
            }
        }
    }

    fn or_reprs(&mut self, ins: &[Repr]) -> Repr {
        let mut lits: Vec<Lit> = Vec::with_capacity(ins.len());
        for &r in ins {
            match r {
                Repr::Const(true) => return Repr::Const(true),
                Repr::Const(false) => {}
                Repr::Lit(l) => {
                    if lits.contains(&!l) {
                        return Repr::Const(true);
                    }
                    if !lits.contains(&l) {
                        lits.push(l);
                    }
                }
            }
        }
        match lits.len() {
            0 => Repr::Const(false),
            1 => Repr::Lit(lits[0]),
            _ => {
                let y = Lit::positive(self.solver.new_var());
                let mut all = Vec::with_capacity(lits.len() + 1);
                all.push(!y);
                for &l in &lits {
                    self.solver.add_clause(&[y, !l]);
                    all.push(l);
                }
                self.solver.add_clause(&all);
                Repr::Lit(y)
            }
        }
    }

    fn xor2(&mut self, a: Repr, b: Repr) -> Repr {
        match (a, b) {
            (Repr::Const(x), Repr::Const(y)) => Repr::Const(x ^ y),
            (Repr::Const(false), r) | (r, Repr::Const(false)) => r,
            (Repr::Const(true), r) | (r, Repr::Const(true)) => Self::negate(r),
            (Repr::Lit(p), Repr::Lit(q)) if p == q => Repr::Const(false),
            (Repr::Lit(p), Repr::Lit(q)) if p == !q => Repr::Const(true),
            (Repr::Lit(p), Repr::Lit(q)) => {
                let y = Lit::positive(self.solver.new_var());
                self.solver.add_clause(&[!p, !q, !y]);
                self.solver.add_clause(&[p, q, !y]);
                self.solver.add_clause(&[p, !q, y]);
                self.solver.add_clause(&[!p, q, y]);
                Repr::Lit(y)
            }
        }
    }

    fn xor_all(&mut self, ins: &[Repr]) -> Repr {
        let mut acc = Repr::Const(false);
        for &r in ins {
            acc = self.xor2(acc, r);
        }
        acc
    }

    fn mux(&mut self, d0: Repr, d1: Repr, s: Repr) -> Repr {
        match s {
            Repr::Const(false) => d0,
            Repr::Const(true) => d1,
            Repr::Lit(sl) => {
                if d0 == d1 {
                    return d0;
                }
                let l0 = self.lit_of(d0);
                let l1 = self.lit_of(d1);
                let y = Lit::positive(self.solver.new_var());
                self.solver.add_clause(&[sl, !y, l0]);
                self.solver.add_clause(&[sl, y, !l0]);
                self.solver.add_clause(&[!sl, !y, l1]);
                self.solver.add_clause(&[!sl, y, !l1]);
                Repr::Lit(y)
            }
        }
    }

    /// Encodes one combinational gate over already-encoded inputs, constant
    /// folding where the operands allow it. The fold directions mirror
    /// [`crate::compiled`]'s `compute_gate` two-valued semantics exactly.
    fn gate_repr(&mut self, kind: CellKind, ins: &[Repr]) -> Repr {
        match kind {
            CellKind::Buf => ins[0],
            CellKind::Not => Self::negate(ins[0]),
            CellKind::And(_) => self.and_reprs(ins),
            CellKind::Nand(_) => {
                let a = self.and_reprs(ins);
                Self::negate(a)
            }
            CellKind::Or(_) => self.or_reprs(ins),
            CellKind::Nor(_) => {
                let o = self.or_reprs(ins);
                Self::negate(o)
            }
            CellKind::Xor(_) => self.xor_all(ins),
            CellKind::Xnor(_) => {
                let x = self.xor_all(ins);
                Self::negate(x)
            }
            CellKind::Mux2 => self.mux(ins[0], ins[1], ins[2]),
            other => unreachable!("non-combinational {other:?} reached the gate encoder"),
        }
    }

    /// A fresh unconstrained variable standing for a controllable net.
    fn free_var(&mut self, net: NetId) -> Repr {
        let v = self.solver.new_var();
        self.inputs.push((net, v));
        Repr::Lit(Lit::positive(v))
    }

    /// Resolves the good-machine encoding of `net`, walking its fan-in
    /// iteratively (the fan-in of an industrial cone can be deep).
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the fan-in contains a net the two-valued encoding
    /// cannot represent exactly: an `X` force, a floating (driverless) net,
    /// or a flip-flop output while the environment says those are not
    /// controllable.
    fn good_repr(&mut self, net: NetId) -> Result<Repr, Unsupported> {
        debug_assert!(self.stack.is_empty());
        let netlist = self.netlist;
        self.stack.push(net);
        while let Some(&n) = self.stack.last() {
            if self.good.contains_key(&n) {
                self.stack.pop();
                continue;
            }
            if let Some(&value) = self.forced.get(&n) {
                // Mission force: a fresh variable pinned by a unit
                // assumption, so learnt clauses stay environment-free.
                let Some(bit) = value.to_bool() else {
                    self.stack.clear();
                    return Err(Unsupported);
                };
                let v = self.solver.new_var();
                self.assumptions.push(Lit::new(v, bit));
                self.good.insert(n, Repr::Lit(Lit::positive(v)));
                self.stack.pop();
                continue;
            }
            let Some(driver) = netlist.driver_of(n) else {
                // Floating net: permanently X in simulation.
                self.stack.clear();
                return Err(Unsupported);
            };
            let cell = netlist.cell(driver);
            let kind = cell.kind();
            let repr = match kind {
                CellKind::Input => self.free_var(n),
                CellKind::Tie0 => Repr::Const(false),
                CellKind::Tie1 => Repr::Const(true),
                CellKind::Dff { .. } | CellKind::Sdff { .. } => {
                    if self.control_ff_outputs {
                        self.free_var(n)
                    } else {
                        self.stack.clear();
                        return Err(Unsupported);
                    }
                }
                _ => {
                    debug_assert!(kind.is_combinational());
                    let before = self.stack.len();
                    for &in_net in cell.inputs() {
                        if !self.good.contains_key(&in_net) {
                            self.stack.push(in_net);
                        }
                    }
                    if self.stack.len() != before {
                        // Resolve the fan-in first; `n` is revisited after.
                        continue;
                    }
                    let ins: Vec<Repr> = cell.inputs().iter().map(|i| self.good[i]).collect();
                    self.gate_repr(kind, &ins)
                }
            };
            self.good.insert(n, repr);
            self.stack.pop();
        }
        Ok(self.good[&net])
    }
}

/// Builds the faulty cone copies and the detection terms for one fault.
///
/// `gates` are the compiled gates of the site's fanout cone in ascending
/// (topological) gate order; `faulty` arrives seeded with the site override
/// for stem faults and leaves holding the faulty encoding of every net that
/// can differ from the good machine.
fn encode_fault(
    cnf: &mut Cnf<'_>,
    gates: &[(u32, CellId)],
    fault: StuckAt,
    site_net: NetId,
    is_obs_net: &[bool],
    observation_pins: &HashSet<(CellId, PinIndex)>,
    faulty: &mut HashMap<NetId, Repr>,
) -> Result<Detection, Unsupported> {
    let netlist = cnf.netlist;
    let stuck = fault.value;
    for &(_, cell_id) in gates {
        let kind = netlist.cell(cell_id).kind();
        let out = netlist
            .output_net(cell_id)
            .expect("compiled gates drive a net");
        if cnf.forced.contains_key(&out) {
            // Gates never overwrite forced nets, in either machine.
            continue;
        }
        let pins = netlist.cell(cell_id).inputs();
        let mut ins = Vec::with_capacity(pins.len());
        for (pin, &net) in pins.iter().enumerate() {
            let faulted_pin = matches!(
                fault.site,
                FaultSite::CellInput { cell, pin: fpin }
                    if cell == cell_id && usize::from(fpin) == pin
            );
            let r = if faulted_pin {
                // Branch fault: only this cell's read of the net is stuck.
                Repr::Const(stuck)
            } else if let Some(&fr) = faulty.get(&net) {
                fr
            } else {
                cnf.good_repr(net)?
            };
            ins.push(r);
        }
        let out_repr = cnf.gate_repr(kind, &ins);
        faulty.insert(out, out_repr);
    }

    // Observation: XOR differences where the machines can diverge. Sorted for
    // a deterministic CNF (and thus deterministic conflict budgets) no matter
    // the hash order.
    let mut diff_nets: Vec<NetId> = faulty
        .keys()
        .copied()
        .filter(|net| is_obs_net[net.index()])
        .collect();
    diff_nets.sort_unstable();
    let mut terms = Vec::new();
    let mut trivially_detected = false;
    for net in diff_nets {
        let g = cnf.good_repr(net)?;
        let f = faulty[&net];
        match cnf.xor2(g, f) {
            Repr::Const(false) => {}
            Repr::Const(true) => trivially_detected = true,
            Repr::Lit(l) => terms.push(l),
        }
    }
    if let FaultSite::CellInput { cell, pin } = fault.site {
        if observation_pins.contains(&(cell, pin)) {
            // Branch observation: the faulted pin itself is an observation
            // point, so the fault is seen whenever the good value differs
            // from the stuck value.
            let g = cnf.good_repr(site_net)?;
            match cnf.xor2(g, Repr::Const(stuck)) {
                Repr::Const(false) => {}
                Repr::Const(true) => trivially_detected = true,
                Repr::Lit(l) => terms.push(l),
            }
        }
    }
    Ok(Detection {
        terms,
        trivially_detected,
    })
}

/// Replays a SAT model through the three-valued simulator and checks the
/// detection the encoding promised, using PODEM's exact criterion.
#[allow(clippy::too_many_arguments)]
fn replay_detects(
    sim: &CombSim<'_>,
    forced: &HashMap<NetId, Logic>,
    observation_nets: &[NetId],
    observation_pins: &HashSet<(CellId, PinIndex)>,
    fault: StuckAt,
    site_net: NetId,
    assignment: &[(NetId, bool)],
    good: &mut NetValues,
    faulty: &mut NetValues,
    scratch: &mut SimScratch,
) -> bool {
    good.fill(Logic::X);
    faulty.fill(Logic::X);
    for &(net, value) in assignment {
        good[net.index()] = Logic::from_bool(value);
        faulty[net.index()] = Logic::from_bool(value);
    }
    sim.propagate_with(good, forced, None, scratch);
    sim.propagate_with(faulty, forced, Some(fault), scratch);
    for &net in observation_nets {
        let g = good[net.index()];
        let f = faulty[net.index()];
        if g.is_definite() && f.is_definite() && g != f {
            return true;
        }
    }
    if let FaultSite::CellInput { cell, pin } = fault.site {
        if observation_pins.contains(&(cell, pin)) {
            let g = good[site_net.index()];
            if g.is_definite() && g != Logic::from_bool(fault.value) {
                return true;
            }
        }
    }
    false
}

/// SAT-backed untestability prover over the full-scan combinational frame.
///
/// Shares PODEM's view of the environment: primary inputs and flip-flop
/// outputs are controllable (unless forced), primary outputs and flip-flop
/// input pins are observation points (unless masked). Each
/// [`prove`](Self::prove) call encodes the fault's cone-clipped good/faulty
/// machine pair into a fresh CNF and asks the CDCL core ([`sat::Solver`])
/// whether any detecting assignment exists.
#[derive(Debug)]
pub struct SatProver<'a> {
    netlist: &'a Netlist,
    sim: CombSim<'a>,
    forced: HashMap<NetId, Logic>,
    control_ff_outputs: bool,
    observation_nets: Vec<NetId>,
    observation_pins: HashSet<(CellId, PinIndex)>,
    is_obs_net: Vec<bool>,
    extractor: graph::ConeExtractor,
    gate_of_cell: Vec<u32>,
    conflict_limit: u64,
    clause_limit: usize,
    interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    deadline: Option<std::time::Instant>,
    last_abort_reason: Option<AbortReason>,
    corrupt_next_model: bool,
    good_buf: NetValues,
    faulty_buf: NetValues,
    scratch: SimScratch,
}

impl<'a> SatProver<'a> {
    /// Builds a prover for the given design and environment.
    /// `conflict_limit` bounds each proof attempt (use `u64::MAX` for an
    /// effectively unbounded search).
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the combinational logic is cyclic.
    pub fn new(
        netlist: &'a Netlist,
        constraints: &ConstraintSet,
        conflict_limit: u64,
    ) -> Result<Self, graph::CombinationalLoop> {
        let sim = CombSim::new(netlist)?;
        let forced = constraints.forced_nets.clone();
        let mut observation_nets = Vec::new();
        let mut observation_pins = HashSet::new();
        for po in netlist.primary_outputs() {
            if constraints.masked_outputs.contains(&po) {
                continue;
            }
            observation_nets.push(netlist.cell(po).inputs()[0]);
            observation_pins.insert((po, 0));
        }
        if constraints.observe_ff_inputs {
            for ff in netlist.sequential_cells() {
                for (pin, &net) in netlist.cell(ff).inputs().iter().enumerate() {
                    observation_nets.push(net);
                    observation_pins.insert((ff, pin as PinIndex));
                }
            }
        }
        observation_nets.sort_unstable();
        observation_nets.dedup();
        let mut is_obs_net = vec![false; netlist.num_nets()];
        for &net in &observation_nets {
            is_obs_net[net.index()] = true;
        }
        let extractor = graph::ConeExtractor::new(netlist);
        let gate_of_cell = sim.program().gate_index_by_cell();
        let good_buf = sim.blank_values();
        let faulty_buf = sim.blank_values();
        let scratch = sim.scratch();
        Ok(SatProver {
            netlist,
            sim,
            forced,
            control_ff_outputs: constraints.control_ff_outputs,
            observation_nets,
            observation_pins,
            is_obs_net,
            extractor,
            gate_of_cell,
            conflict_limit,
            clause_limit: DEFAULT_CLAUSE_LIMIT,
            interrupt: None,
            deadline: None,
            last_abort_reason: None,
            corrupt_next_model: false,
            good_buf,
            faulty_buf,
            scratch,
        })
    }

    /// Installs (or clears) the cooperative search limits: an interrupt flag
    /// and a wall-clock deadline handed to the CDCL solver of every
    /// subsequent [`prove`](Self::prove) call.
    pub fn set_search_limits(
        &mut self,
        interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
        deadline: Option<std::time::Instant>,
    ) {
        self.interrupt = interrupt;
        self.deadline = deadline;
    }

    /// Overrides the clause-count guard (default
    /// [`DEFAULT_CLAUSE_LIMIT`]). An encoding larger than the limit comes
    /// back [`SatVerdict::Unsupported`].
    pub fn set_clause_limit(&mut self, limit: usize) {
        self.clause_limit = limit;
    }

    /// Why the most recent [`prove`](Self::prove) call came back
    /// [`SatVerdict::Aborted`] or [`SatVerdict::Unsupported`] (`None` after
    /// a concluded verdict).
    pub fn last_abort_reason(&self) -> Option<AbortReason> {
        self.last_abort_reason
    }

    /// Failure injection (test harness): corrupt the model extracted by the
    /// *next* `Sat` answer before the simulation replay, proving the replay
    /// check rejects a bogus test instead of trusting it.
    #[doc(hidden)]
    pub fn corrupt_next_model(&mut self) {
        self.corrupt_next_model = true;
    }

    /// Attempts a definitive verdict for one stuck-at fault.
    pub fn prove(&mut self, fault: StuckAt) -> SatVerdict {
        self.last_abort_reason = None;
        let site_net = match fault.site {
            FaultSite::CellOutput { cell } => match self.netlist.output_net(cell) {
                Some(net) => net,
                // Detached output pin: nothing downstream can observe it.
                None => return SatVerdict::ProvenUntestable,
            },
            FaultSite::CellInput { cell, pin } => self.netlist.input_net(cell, pin),
        };
        let stuck = fault.value;

        // The site's fanout cone, restricted to compiled gates, in ascending
        // gate (= topological) order.
        let cone = self.extractor.fanout_cone_with(self.netlist, &[site_net]);
        let mut gates: Vec<(u32, CellId)> = cone
            .iter()
            .filter_map(|&c| {
                let g = self.gate_of_cell[c.index()];
                (g != NO_INDEX).then_some((g, c))
            })
            .collect();
        gates.sort_unstable();

        let mut cnf = Cnf::new(self.netlist, &self.forced, self.control_ff_outputs);
        let mut faulty: HashMap<NetId, Repr> = HashMap::new();
        match fault.site {
            FaultSite::CellOutput { cell } => {
                if !self.netlist.cell(cell).kind().is_combinational() {
                    // Source stem (input / tie / flip-flop output): the stuck
                    // value overrides the site even when the net is forced.
                    faulty.insert(site_net, Repr::Const(stuck));
                } else if self.forced.contains_key(&site_net) {
                    // A forced net is never overwritten by its gate: the
                    // faulty machine equals the good one everywhere.
                    return SatVerdict::ProvenUntestable;
                } else {
                    faulty.insert(site_net, Repr::Const(stuck));
                }
            }
            FaultSite::CellInput { .. } => {}
        }

        let detection = match encode_fault(
            &mut cnf,
            &gates,
            fault,
            site_net,
            &self.is_obs_net,
            &self.observation_pins,
            &mut faulty,
        ) {
            Ok(d) => d,
            Err(Unsupported) => {
                self.last_abort_reason = Some(AbortReason::Unsupported);
                return SatVerdict::Unsupported;
            }
        };
        if !detection.trivially_detected {
            if detection.terms.is_empty() {
                // The machines agree at every observation point under every
                // assignment: untestable, no solving needed.
                return SatVerdict::ProvenUntestable;
            }
            cnf.solver.add_clause(&detection.terms);
        }
        if cnf.solver.num_clauses() > self.clause_limit {
            // The cone blew past the clause guard: decline before handing the
            // solver an encoding that could exhaust memory.
            self.last_abort_reason = Some(AbortReason::Unsupported);
            return SatVerdict::Unsupported;
        }
        cnf.solver.set_conflict_limit(Some(self.conflict_limit));
        cnf.solver.set_interrupt(self.interrupt.clone());
        cnf.solver.set_deadline(self.deadline);
        match cnf.solver.solve_with_assumptions(&cnf.assumptions) {
            SolveResult::Unsat => SatVerdict::ProvenUntestable,
            SolveResult::Unknown => {
                self.last_abort_reason = Some(if cnf.solver.was_interrupted() {
                    AbortReason::Timeout
                } else {
                    AbortReason::Conflicts
                });
                SatVerdict::Aborted
            }
            SolveResult::Sat => {
                let injected = std::mem::take(&mut self.corrupt_next_model);
                let mut assignment: Vec<(NetId, bool)> = cnf
                    .inputs
                    .iter()
                    .map(|&(net, var)| (net, cnf.solver.model_value(var).unwrap_or(false)))
                    .collect();
                if injected {
                    // Failure injection: flip every model bit so the replay
                    // check faces a maximally wrong test.
                    for (_, value) in &mut assignment {
                        *value = !*value;
                    }
                }
                let detected = replay_detects(
                    &self.sim,
                    &self.forced,
                    &self.observation_nets,
                    &self.observation_pins,
                    fault,
                    site_net,
                    &assignment,
                    &mut self.good_buf,
                    &mut self.faulty_buf,
                    &mut self.scratch,
                );
                if detected {
                    SatVerdict::TestExists
                } else {
                    // The simulator refused the model: the encoding and the
                    // engine disagree somewhere. Never trust the model.
                    debug_assert!(injected, "SAT model failed simulation replay for {fault:?}");
                    self.last_abort_reason = Some(AbortReason::Unsupported);
                    SatVerdict::Aborted
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::podem::{Podem, PodemConfig, ProofOutcome};
    use faultmodel::FaultList;
    use netlist::NetlistBuilder;

    fn prover<'a>(netlist: &'a Netlist, constraints: &ConstraintSet) -> SatProver<'a> {
        SatProver::new(netlist, constraints, u64::MAX).expect("acyclic")
    }

    #[test]
    fn detects_testable_stem_faults_and_replay_confirms() {
        let mut b = NetlistBuilder::new("and2");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let constraints = ConstraintSet::full_scan();
        let mut p = prover(&n, &constraints);
        let cell = n.driver_of(y).unwrap();
        assert_eq!(
            p.prove(StuckAt::output(cell, false)),
            SatVerdict::TestExists
        );
        assert_eq!(p.prove(StuckAt::output(cell, true)), SatVerdict::TestExists);
    }

    #[test]
    fn proves_the_classic_static_redundancy() {
        // y = a OR (a AND b): the AND output stuck-at-0 is redundant, the
        // stuck-at-1 is testable (a=0, b arbitrary observes the difference).
        let mut b = NetlistBuilder::new("redundant");
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.and2(a, bb);
        let y = b.or2(a, g);
        b.output("y", y);
        let n = b.finish();
        let constraints = ConstraintSet::full_scan();
        let mut p = prover(&n, &constraints);
        let and_cell = n.driver_of(g).unwrap();
        assert_eq!(
            p.prove(StuckAt::output(and_cell, false)),
            SatVerdict::ProvenUntestable
        );
        assert_eq!(
            p.prove(StuckAt::output(and_cell, true)),
            SatVerdict::TestExists
        );
    }

    #[test]
    fn mission_forces_enter_as_assumptions() {
        // en tied to 0 keeps the AND output at 0: stuck-at-0 on the output is
        // untestable, stuck-at-1 is trivially detected (constant difference).
        let mut b = NetlistBuilder::new("tied");
        let a = b.input("a");
        let en = b.input("en");
        let y = b.and2(a, en);
        b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(en, false);
        let mut p = prover(&n, &constraints);
        let cell = n.driver_of(y).unwrap();
        assert_eq!(
            p.prove(StuckAt::output(cell, false)),
            SatVerdict::ProvenUntestable
        );
        assert_eq!(p.prove(StuckAt::output(cell, true)), SatVerdict::TestExists);
        // The branch fault on the `a` pin is blocked by the tie either way.
        let site = FaultSite::CellInput { cell, pin: 0 };
        assert_eq!(
            p.prove(StuckAt::new(site, true)),
            SatVerdict::ProvenUntestable
        );
        assert_eq!(
            p.prove(StuckAt::new(site, false)),
            SatVerdict::ProvenUntestable
        );
    }

    #[test]
    fn masked_outputs_drop_their_observation_terms() {
        let mut b = NetlistBuilder::new("masked");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let po = b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.mask_output(po);
        let mut p = prover(&n, &constraints);
        let cell = n.driver_of(y).unwrap();
        assert_eq!(
            p.prove(StuckAt::output(cell, false)),
            SatVerdict::ProvenUntestable
        );
    }

    #[test]
    fn flip_flop_boundary_faults_use_branch_observation() {
        // d feeds a flip-flop: the D-pin branch fault is observed at the
        // flip-flop input pin itself.
        let mut b = NetlistBuilder::new("ff");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.dff(d, ck);
        let y = b.not(q);
        b.output("y", y);
        let n = b.finish();
        let constraints = ConstraintSet::full_scan();
        let mut p = prover(&n, &constraints);
        let ff = n.driver_of(q).unwrap();
        let site = FaultSite::CellInput { cell: ff, pin: 0 };
        assert_eq!(p.prove(StuckAt::new(site, false)), SatVerdict::TestExists);
        assert_eq!(p.prove(StuckAt::new(site, true)), SatVerdict::TestExists);
        // The flip-flop output stem is a controllable source: stuck values
        // propagate through the inverter to the primary output.
        assert_eq!(p.prove(StuckAt::output(ff, false)), SatVerdict::TestExists);
    }

    #[test]
    fn uncontrollable_flip_flop_outputs_are_declined() {
        let mut b = NetlistBuilder::new("seq");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.dff(d, ck);
        let y = b.not(q);
        b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.control_ff_outputs = false;
        let mut p = prover(&n, &constraints);
        let inv = n.driver_of(y).unwrap();
        // The inverter's fan-in is the flip-flop output, which the
        // environment says is not controllable: decline, don't guess.
        assert_eq!(
            p.prove(StuckAt::output(inv, false)),
            SatVerdict::Unsupported
        );
    }

    #[test]
    fn conflict_limit_exhaustion_reports_aborted() {
        // The redundancy proof needs at least one decision-level conflict, so
        // a zero conflict budget must abort — and a fresh prover with budget
        // finishes the same proof.
        let mut b = NetlistBuilder::new("limited");
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.and2(a, bb);
        let y = b.or2(a, g);
        b.output("y", y);
        let n = b.finish();
        let constraints = ConstraintSet::full_scan();
        let and_cell = n.driver_of(g).unwrap();
        let fault = StuckAt::output(and_cell, false);
        let mut limited = SatProver::new(&n, &constraints, 0).expect("acyclic");
        assert_eq!(limited.prove(fault), SatVerdict::Aborted);
        let mut free = prover(&n, &constraints);
        assert_eq!(free.prove(fault), SatVerdict::ProvenUntestable);
    }

    #[test]
    fn agrees_with_podem_on_a_mux_design_with_constraints() {
        // The doc-example degenerate mux plus a live second channel, under a
        // mission tie: every fault of the universe must agree with PODEM.
        let mut b = NetlistBuilder::new("mux");
        let sel = b.input("sel");
        let d0 = b.input("d0");
        let d1 = b.input("d1");
        let m = b.mux2(d0, d1, sel);
        let inv = b.not(m);
        b.output("m", m);
        b.output("inv", inv);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(sel, false);
        let mut sat_prover = prover(&n, &constraints);
        let mut podem = Podem::new(
            &n,
            &constraints,
            PodemConfig {
                backtrack_limit: 1_000_000,
                ..PodemConfig::default()
            },
        )
        .expect("acyclic");
        let faults = FaultList::full_universe(&n);
        for &fault in faults.faults() {
            let expected = podem.prove(fault);
            let got = sat_prover.prove(fault);
            let want = match expected {
                ProofOutcome::TestExists => SatVerdict::TestExists,
                ProofOutcome::ProvenUntestable => SatVerdict::ProvenUntestable,
                ProofOutcome::Aborted => unreachable!("unbounded PODEM aborted"),
            };
            assert_eq!(got, want, "disagreement on {fault:?}");
        }
    }
}
