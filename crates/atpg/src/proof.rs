//! Parallel untestability proofs: a work-stealing fan-out of the
//! constraint-aware PODEM engine over a fault population.
//!
//! This is the engine behind the identification flow's *proof stage*: after
//! the structural rules have screened the obviously dead logic and the fault
//! simulator has dropped everything the SBST suite detects, the surviving
//! undetected faults are handed to PODEM under the mission [`ConstraintSet`]
//! (tied debug/test inputs are decision-forbidden, masked observation outputs
//! never enter the D-frontier). A fault whose decision space is exhausted is
//! [`ProofOutcome::ProvenUntestable`]; a fault whose backtrack budget runs out
//! is [`ProofOutcome::Aborted`] and stays potentially testable.
//!
//! Each worker owns its own [`Podem`] engine (and therefore its own reusable
//! simulation buffers), chunks of faults are claimed from a shared atomic
//! cursor, and every per-fault outcome is independent of scheduling — the
//! multi-threaded run classifies *identically* to the single-threaded one.

use crate::constant::ConstraintSet;
use crate::podem::{Podem, PodemConfig, ProofOutcome};
use faultmodel::StuckAt;
use netlist::{graph, Netlist};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Faults claimed per cursor bump: small enough to balance a skewed workload
/// (aborts cost orders of magnitude more than quick proofs), large enough to
/// amortise the atomic traffic.
const CHUNK: usize = 16;

/// Configuration of a parallel proof run.
#[derive(Clone, Copy, Debug)]
pub struct ProofConfig {
    /// Backtrack budget per fault (see [`PodemConfig::backtrack_limit`]);
    /// searches that exhaust it come back [`ProofOutcome::Aborted`].
    pub backtrack_limit: usize,
    /// Worker threads to fan the faults out across; `0` uses the machine's
    /// available parallelism. The outcome vector is identical regardless.
    pub threads: usize,
}

impl Default for ProofConfig {
    fn default() -> Self {
        ProofConfig {
            backtrack_limit: 32,
            threads: 0,
        }
    }
}

impl ProofConfig {
    fn podem_config(&self) -> PodemConfig {
        PodemConfig {
            backtrack_limit: self.backtrack_limit,
        }
    }

    fn resolve_threads(&self, fault_count: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.min(fault_count.div_ceil(CHUNK)).max(1)
    }
}

/// Tally of one proof run, derived from the per-fault outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Faults attempted.
    pub attempted: usize,
    /// Faults for which a test exists under the constraints.
    pub test_exists: usize,
    /// Faults proven untestable (decision space exhausted).
    pub proven_untestable: usize,
    /// Faults whose search ran out of backtrack budget.
    pub aborted: usize,
}

impl ProofStats {
    /// Tallies a slice of outcomes.
    pub fn from_outcomes(outcomes: &[ProofOutcome]) -> Self {
        let mut stats = ProofStats {
            attempted: outcomes.len(),
            ..ProofStats::default()
        };
        for outcome in outcomes {
            match outcome {
                ProofOutcome::TestExists => stats.test_exists += 1,
                ProofOutcome::ProvenUntestable => stats.proven_untestable += 1,
                ProofOutcome::Aborted => stats.aborted += 1,
            }
        }
        stats
    }
}

fn encode(outcome: ProofOutcome) -> u8 {
    match outcome {
        ProofOutcome::TestExists => 1,
        ProofOutcome::ProvenUntestable => 2,
        ProofOutcome::Aborted => 3,
    }
}

fn decode(code: u8) -> ProofOutcome {
    match code {
        1 => ProofOutcome::TestExists,
        2 => ProofOutcome::ProvenUntestable,
        _ => ProofOutcome::Aborted,
    }
}

/// Proves (or fails to prove) untestability for every fault in `faults` under
/// `constraints`, returning one [`ProofOutcome`] per fault in input order.
///
/// The faults are fanned out across scoped worker threads according to
/// `config.threads`; per-fault outcomes do not depend on the fan-out, so any
/// thread count produces the same vector.
///
/// # Errors
///
/// Returns the levelization error if the combinational logic is cyclic.
pub fn prove_faults(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    faults: &[StuckAt],
    config: &ProofConfig,
) -> Result<Vec<ProofOutcome>, graph::CombinationalLoop> {
    if faults.is_empty() {
        // Still surface a cyclic design instead of silently succeeding.
        Podem::new(netlist, constraints, config.podem_config())?;
        return Ok(Vec::new());
    }
    let workers = config.resolve_threads(faults.len());
    if workers <= 1 {
        let mut podem = Podem::new(netlist, constraints, config.podem_config())?;
        return Ok(faults.iter().map(|&fault| podem.prove(fault)).collect());
    }

    // Validate levelization once up front so the workers can unwrap.
    Podem::new(netlist, constraints, config.podem_config())?;
    let results: Vec<AtomicU8> = (0..faults.len()).map(|_| AtomicU8::new(0)).collect();
    let cursor = AtomicUsize::new(0);
    let chunks = faults.len().div_ceil(CHUNK);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut podem = Podem::new(netlist, constraints, config.podem_config())
                    .expect("levelization already validated");
                loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunks {
                        break;
                    }
                    let start = chunk * CHUNK;
                    let end = (start + CHUNK).min(faults.len());
                    for i in start..end {
                        results[i].store(encode(podem.prove(faults[i])), Ordering::Relaxed);
                    }
                }
            });
        }
    });
    Ok(results
        .into_iter()
        .map(|code| decode(code.into_inner()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmodel::FaultList;
    use netlist::NetlistBuilder;

    fn redundant_design() -> netlist::Netlist {
        // Three parallel copies of the classic redundant AND-OR structure so
        // the universe is large enough to exercise multiple chunks.
        let mut b = NetlistBuilder::new("red3");
        for i in 0..3 {
            let a = b.input(format!("a{i}"));
            let c = b.input(format!("b{i}"));
            let t = b.and2(a, c);
            let y = b.or2(a, t);
            b.output(format!("y{i}"), y);
        }
        b.finish()
    }

    #[test]
    fn parallel_outcomes_match_single_thread() {
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let constraints = ConstraintSet::full_scan();
        let single = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                threads: 1,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let parallel = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                threads: 4,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        assert_eq!(single, parallel);
        let stats = ProofStats::from_outcomes(&single);
        assert_eq!(stats.attempted, faults.len());
        assert_eq!(
            stats.test_exists + stats.proven_untestable + stats.aborted,
            stats.attempted
        );
        // The three redundant AND-output s-a-0 faults are proven.
        assert!(stats.proven_untestable >= 3, "{stats:?}");
        assert!(stats.test_exists > 0);
    }

    #[test]
    fn outcomes_match_a_fresh_sequential_engine_per_fault() {
        let n = redundant_design();
        let faults: Vec<_> = FaultList::full_universe(&n)
            .faults()
            .iter()
            .copied()
            .take(40)
            .collect();
        let constraints = ConstraintSet::full_scan();
        let config = ProofConfig {
            threads: 3,
            ..ProofConfig::default()
        };
        let parallel = prove_faults(&n, &constraints, &faults, &config).unwrap();
        let mut podem = Podem::new(&n, &constraints, config.podem_config()).unwrap();
        for (i, &fault) in faults.iter().enumerate() {
            assert_eq!(parallel[i], podem.prove(fault), "{fault:?}");
        }
    }

    #[test]
    fn constraints_are_respected_by_the_fanned_out_engines() {
        // Tie one input: the AND output can never rise, so its s-a-0 becomes
        // provable in every worker.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let faults = vec![StuckAt::output(and, false), StuckAt::output(and, true)];
        let outcomes = prove_faults(&n, &constraints, &faults, &ProofConfig::default()).unwrap();
        assert_eq!(outcomes[0], ProofOutcome::ProvenUntestable);
        assert_eq!(outcomes[1], ProofOutcome::TestExists);
    }

    #[test]
    fn empty_fault_list_is_fine_and_cyclic_designs_error() {
        let n = redundant_design();
        let outcomes = prove_faults(
            &n,
            &ConstraintSet::full_scan(),
            &[],
            &ProofConfig::default(),
        )
        .unwrap();
        assert!(outcomes.is_empty());
    }

    #[test]
    fn zero_budget_aborts_are_never_upgraded() {
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let outcomes = prove_faults(
            &n,
            &ConstraintSet::full_scan(),
            &faults,
            &ProofConfig {
                backtrack_limit: 0,
                threads: 2,
            },
        )
        .unwrap();
        let stats = ProofStats::from_outcomes(&outcomes);
        // The three redundant AND-output s-a-0 faults need backtracking to be
        // proven; with no budget they must come back aborted, never proven.
        assert!(stats.aborted >= 3, "{stats:?}");
        let generous = prove_faults(
            &n,
            &ConstraintSet::full_scan(),
            &faults,
            &ProofConfig {
                backtrack_limit: 10_000,
                threads: 1,
            },
        )
        .unwrap();
        for (i, (&tight, &loose)) in outcomes.iter().zip(&generous).enumerate() {
            // A truncated search may abort, but whenever it does conclude it
            // must agree with the exhaustive search.
            if tight != ProofOutcome::Aborted {
                assert_eq!(tight, loose, "fault {:?}", faults[i]);
            }
            // And a proof that the exhaustive search could not produce must
            // never appear under a tighter budget.
            if loose != ProofOutcome::ProvenUntestable {
                assert_ne!(
                    tight,
                    ProofOutcome::ProvenUntestable,
                    "fault {:?}",
                    faults[i]
                );
            }
        }
    }
}
