//! Parallel untestability proofs: a work-stealing fan-out of the
//! constraint-aware PODEM engine over a fault population.
//!
//! This is the engine behind the identification flow's *proof stage*: after
//! the structural rules have screened the obviously dead logic and the fault
//! simulator has dropped everything the SBST suite detects, the surviving
//! undetected faults are handed to PODEM under the mission [`ConstraintSet`]
//! (tied debug/test inputs are decision-forbidden, masked observation outputs
//! never enter the D-frontier). A fault whose decision space is exhausted is
//! [`ProofOutcome::ProvenUntestable`]; a fault whose backtrack budget runs out
//! is [`ProofOutcome::Aborted`] and stays potentially testable.
//!
//! Three multiplicative per-fault reductions keep the run fast (all on by
//! default): the PODEM engines clip every search to the fault's fanout cone
//! (with an incrementally maintained good machine) and steer it with SCOAP
//! measures (see [`PodemConfig`]), and the
//! worklist itself is *collapse-scheduled* ([`ProofConfig::use_collapse`]):
//! structurally equivalent faults ([`faultmodel::collapse`]) share one proof
//! attempt — the class representative is proven and a **concluded** verdict
//! (`TestExists` / `ProvenUntestable`) expands to every member, since
//! equivalent faults have identical faulty functions under any constraint
//! environment. An `Aborted` representative expands to nothing: the
//! remaining members are proven individually in a second pass, so a
//! backtrack-budget give-up can never masquerade as a class-wide verdict.
//!
//! Each worker owns its own [`Podem`] engine (and therefore its own reusable
//! simulation buffers), chunks of faults are claimed from a shared atomic
//! cursor, and every per-fault outcome is independent of scheduling — the
//! multi-threaded run classifies *identically* to the single-threaded one.
//!
//! With [`ProofConfig::use_sat`] the fan-out becomes a **portfolio**: each
//! fault runs PODEM under its backtrack budget first, and an abort escalates
//! to the SAT backend ([`crate::cnf`]) — the cone-clipped fault machine is
//! encoded into CNF and handed to the CDCL core under
//! [`ProofConfig::sat_conflict_limit`]. `Unsat` is a completed untestability
//! proof, a model is a simulation-verified test, and conflict-budget
//! exhaustion keeps the abort (never conflated with a verdict). Each verdict
//! records the engine that produced it ([`EngineOutcome`]), and the CNF is
//! built deterministically, so the portfolio keeps the thread-invariance
//! guarantee.
//!
//! The fan-out is also the campaign's *survivability* layer
//! ([`prove_faults_campaign`]): a [`Budget`] bounds the run with a
//! cooperative cancel token, a whole-stage deadline and a per-fault
//! wall-clock limit (expiry turns a hang into an
//! [`AbortReason::Timeout`] verdict, never a lost run); each per-fault proof
//! runs under `catch_unwind`, so an engine bug on one cone records
//! [`AbortReason::Panicked`] for that fault while the campaign continues;
//! and an optional [`Checkpoint`] persists
//! verdicts incrementally so an interrupted campaign resumes by re-proving
//! only what never concluded. The checkpoint is applied by pre-seeding the
//! result slots *before* scheduling and the collapse classes are computed
//! over the full population, so a resumed run replays the uninterrupted
//! schedule exactly — the merged classification is bit-identical.

use crate::budget::{AbortReason, Budget, CancelToken, FailurePlan};
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::cnf::{SatProver, SatVerdict};
use crate::constant::ConstraintSet;
use crate::podem::{Podem, PodemConfig, ProofOutcome};
use faultmodel::{collapse_with_barriers, FaultList, StuckAt};
use netlist::{graph, Netlist};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

/// Faults claimed per cursor bump: small enough to balance a skewed workload
/// (aborts cost orders of magnitude more than quick proofs), large enough to
/// amortise the atomic traffic.
const CHUNK: usize = 16;

/// Configuration of a parallel proof run.
#[derive(Clone, Copy, Debug)]
pub struct ProofConfig {
    /// Backtrack budget per fault (see [`PodemConfig::backtrack_limit`]);
    /// searches that exhaust it come back [`ProofOutcome::Aborted`].
    pub backtrack_limit: usize,
    /// Worker threads to fan the faults out across; `0` uses the machine's
    /// available parallelism. The outcome vector is identical regardless.
    pub threads: usize,
    /// Prove one representative per structural equivalence class and expand
    /// concluded verdicts across the class (aborts never expand; their class
    /// members are proven individually instead).
    pub use_collapse: bool,
    /// Clip every PODEM search to the fault's cones (see
    /// [`PodemConfig::cone_clip`]).
    pub cone_clip: bool,
    /// Steer the PODEM searches with SCOAP testability measures (see
    /// [`PodemConfig::scoap_guidance`]).
    pub use_scoap: bool,
    /// Prune hopeless branches with the X-path check (see
    /// [`PodemConfig::x_path_check`]). Off reproduces the pre-acceleration
    /// reference engine exactly.
    pub use_x_path: bool,
    /// Escalate PODEM aborts to the SAT backend ([`crate::cnf`]): the
    /// cone-clipped fault machine is encoded into CNF and the CDCL core
    /// attempts the verdict the search engine gave up on. Off by default so
    /// the engine-level behaviour (and abort semantics) is unchanged unless
    /// a caller opts into the portfolio.
    pub use_sat: bool,
    /// Conflict budget per SAT escalation; exhaustion keeps the fault
    /// aborted. `u64::MAX` is effectively unbounded.
    pub sat_conflict_limit: u64,
    /// Deterministic failure injection for the robustness regression suite
    /// (see [`FailurePlan`]); `None` — the default — injects nothing.
    /// Production callers leave this unset.
    pub failure_plan: Option<FailurePlan>,
}

impl Default for ProofConfig {
    fn default() -> Self {
        ProofConfig {
            backtrack_limit: 32,
            threads: 0,
            use_collapse: true,
            cone_clip: true,
            use_scoap: true,
            use_x_path: true,
            use_sat: false,
            sat_conflict_limit: 20_000,
            failure_plan: None,
        }
    }
}

impl ProofConfig {
    fn podem_config(&self) -> PodemConfig {
        PodemConfig {
            backtrack_limit: self.backtrack_limit,
            cone_clip: self.cone_clip,
            scoap_guidance: self.use_scoap,
            x_path_check: self.use_x_path,
        }
    }

    fn resolve_threads(&self, fault_count: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.min(fault_count.div_ceil(CHUNK)).max(1)
    }
}

/// Tally of one proof run, derived from the per-fault outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Faults attempted.
    pub attempted: usize,
    /// Faults for which a test exists under the constraints.
    pub test_exists: usize,
    /// Faults proven untestable (decision space exhausted).
    pub proven_untestable: usize,
    /// Faults whose search ran out of backtrack budget.
    pub aborted: usize,
}

impl ProofStats {
    /// Tallies a slice of outcomes.
    pub fn from_outcomes(outcomes: &[ProofOutcome]) -> Self {
        let mut stats = ProofStats {
            attempted: outcomes.len(),
            ..ProofStats::default()
        };
        for outcome in outcomes {
            match outcome {
                ProofOutcome::TestExists => stats.test_exists += 1,
                ProofOutcome::ProvenUntestable => stats.proven_untestable += 1,
                ProofOutcome::Aborted => stats.aborted += 1,
            }
        }
        stats
    }
}

/// The engine that produced a fault's final verdict in the portfolio.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProofEngine {
    /// The PODEM search engine (also recorded when a SAT escalation declined
    /// the fault as unsupported, leaving PODEM's abort in place).
    Podem,
    /// The SAT (CDCL) proof backend — including escalations whose conflict
    /// budget ran out, which stay `Aborted` but are attributed to the SAT
    /// attempt.
    Sat,
}

/// A per-fault verdict tagged with the engine that produced it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EngineOutcome {
    /// The verdict.
    pub outcome: ProofOutcome,
    /// The engine responsible for it. A collapse-expanded member carries its
    /// class representative's engine: that is the proof that covers it.
    pub engine: ProofEngine,
    /// Why an [`Aborted`](ProofOutcome::Aborted) verdict gave up; `None` for
    /// concluded verdicts.
    pub reason: Option<AbortReason>,
}

impl EngineOutcome {
    /// A concluded verdict (no abort reason).
    pub fn concluded(outcome: ProofOutcome, engine: ProofEngine) -> Self {
        debug_assert_ne!(outcome, ProofOutcome::Aborted, "aborts carry a reason");
        EngineOutcome {
            outcome,
            engine,
            reason: None,
        }
    }

    /// An aborted verdict with its reason.
    pub fn aborted(engine: ProofEngine, reason: AbortReason) -> Self {
        EngineOutcome {
            outcome: ProofOutcome::Aborted,
            engine,
            reason: Some(reason),
        }
    }
}

/// Per-engine tally of a portfolio run: how the final verdicts split between
/// the PODEM search and the SAT escalations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineBreakdown {
    /// PODEM verdicts: test exists.
    pub podem_test_exists: usize,
    /// PODEM verdicts: proven untestable.
    pub podem_proven: usize,
    /// PODEM verdicts: aborted (includes SAT escalations declined as
    /// unsupported).
    pub podem_aborted: usize,
    /// SAT verdicts: test exists (model replayed through simulation).
    pub sat_test_exists: usize,
    /// SAT verdicts: proven untestable (UNSAT under the mission assumptions).
    pub sat_proven: usize,
    /// SAT escalations whose conflict budget ran out: still aborted.
    pub sat_aborted: usize,
    /// Aborts that exhausted the PODEM backtrack budget.
    pub aborted_backtracks: usize,
    /// Aborts that exhausted the SAT conflict budget.
    pub aborted_conflicts: usize,
    /// Aborts from a wall-clock limit or a campaign cancellation — the
    /// deadline-hit count.
    pub aborted_timeout: usize,
    /// Aborts from a caught per-fault engine panic.
    pub aborted_panicked: usize,
    /// Aborts kept because the SAT encoding declined the fault.
    pub aborted_unsupported: usize,
}

impl EngineBreakdown {
    /// Tallies a slice of engine-tagged outcomes.
    pub fn from_outcomes(outcomes: &[EngineOutcome]) -> Self {
        let mut b = EngineBreakdown::default();
        for o in outcomes {
            let slot = match (o.engine, o.outcome) {
                (ProofEngine::Podem, ProofOutcome::TestExists) => &mut b.podem_test_exists,
                (ProofEngine::Podem, ProofOutcome::ProvenUntestable) => &mut b.podem_proven,
                (ProofEngine::Podem, ProofOutcome::Aborted) => &mut b.podem_aborted,
                (ProofEngine::Sat, ProofOutcome::TestExists) => &mut b.sat_test_exists,
                (ProofEngine::Sat, ProofOutcome::ProvenUntestable) => &mut b.sat_proven,
                (ProofEngine::Sat, ProofOutcome::Aborted) => &mut b.sat_aborted,
            };
            *slot += 1;
            if let Some(reason) = o.reason {
                let slot = match reason {
                    AbortReason::Backtracks => &mut b.aborted_backtracks,
                    AbortReason::Conflicts => &mut b.aborted_conflicts,
                    AbortReason::Timeout => &mut b.aborted_timeout,
                    AbortReason::Panicked => &mut b.aborted_panicked,
                    AbortReason::Unsupported => &mut b.aborted_unsupported,
                };
                *slot += 1;
            }
        }
        b
    }
}

// Result-slot codes: 1 = TestExists, 2 = ProvenUntestable, 3..=7 = Aborted
// (one per AbortReason), all +7 for the SAT engine. 0 stays the never-written
// initializer.
fn encode(result: EngineOutcome) -> u8 {
    let base = match result.outcome {
        ProofOutcome::TestExists => 1,
        ProofOutcome::ProvenUntestable => 2,
        ProofOutcome::Aborted => {
            3 + match result.reason.unwrap_or(AbortReason::Backtracks) {
                AbortReason::Backtracks => 0,
                AbortReason::Conflicts => 1,
                AbortReason::Timeout => 2,
                AbortReason::Panicked => 3,
                AbortReason::Unsupported => 4,
            }
        }
    };
    match result.engine {
        ProofEngine::Podem => base,
        ProofEngine::Sat => base + 7,
    }
}

fn decode(code: u8) -> EngineOutcome {
    let engine = if code >= 8 {
        ProofEngine::Sat
    } else {
        ProofEngine::Podem
    };
    let base = if code >= 8 { code - 7 } else { code };
    match base {
        1 => EngineOutcome::concluded(ProofOutcome::TestExists, engine),
        2 => EngineOutcome::concluded(ProofOutcome::ProvenUntestable, engine),
        3 => EngineOutcome::aborted(engine, AbortReason::Backtracks),
        4 => EngineOutcome::aborted(engine, AbortReason::Conflicts),
        5 => EngineOutcome::aborted(engine, AbortReason::Timeout),
        6 => EngineOutcome::aborted(engine, AbortReason::Panicked),
        7 => EngineOutcome::aborted(engine, AbortReason::Unsupported),
        // 0 is the never-written initializer: a fan-out scheduling bug that
        // skipped a fault. Mapping it to `Aborted` would disguise the bug as
        // a legitimate budget give-up, so fail loudly instead.
        other => panic!("proof fan-out left a fault unvisited (result code {other})"),
    }
}

/// Proves one fault on the portfolio: PODEM first, SAT escalation on abort
/// (when enabled). The SAT engine is built lazily on the first abort so the
/// common all-concluded path never pays for it.
#[allow(clippy::too_many_arguments)]
fn prove_one<'a>(
    netlist: &'a Netlist,
    constraints: &ConstraintSet,
    config: &ProofConfig,
    budget: &Budget,
    podem: &mut Podem<'a>,
    sat_engine: &mut Option<SatProver<'a>>,
    index: usize,
    fault: StuckAt,
) -> EngineOutcome {
    let deadline = budget.fault_deadline(Instant::now());
    let interrupt = budget.cancel.as_ref().map(CancelToken::flag);
    if let Some(plan) = config.failure_plan {
        if plan.panic_on == Some(index) {
            panic!("injected engine panic on fault index {index}");
        }
        if plan.stall_on == Some(index) {
            // A simulated hang: block until a budget limit trips. With no
            // limit configured nothing ever would, so give up immediately
            // instead of wedging the harness.
            if budget.cancel.is_none() && deadline.is_none() {
                return EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Timeout);
            }
            loop {
                if budget.stage_stopped() || deadline.is_some_and(|d| Instant::now() >= d) {
                    return EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Timeout);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
    podem.set_search_limits(interrupt.clone(), deadline);
    let outcome = podem.prove(fault);
    if outcome != ProofOutcome::Aborted {
        return EngineOutcome::concluded(outcome, ProofEngine::Podem);
    }
    if podem.last_search_interrupted() {
        // A wall-clock give-up must not escalate: the SAT attempt would blow
        // the very deadline that stopped the search.
        return EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Timeout);
    }
    if !config.use_sat {
        return EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Backtracks);
    }
    let sat = match sat_engine {
        Some(sat) => sat,
        None => sat_engine.insert(
            SatProver::new(netlist, constraints, config.sat_conflict_limit)
                .expect("levelization already validated"),
        ),
    };
    sat.set_search_limits(interrupt, deadline);
    if config
        .failure_plan
        .is_some_and(|p| p.bogus_sat_model_on == Some(index))
    {
        sat.corrupt_next_model();
    }
    match sat.prove(fault) {
        SatVerdict::TestExists => {
            EngineOutcome::concluded(ProofOutcome::TestExists, ProofEngine::Sat)
        }
        SatVerdict::ProvenUntestable => {
            EngineOutcome::concluded(ProofOutcome::ProvenUntestable, ProofEngine::Sat)
        }
        SatVerdict::Aborted => EngineOutcome::aborted(
            ProofEngine::Sat,
            sat.last_abort_reason().unwrap_or(AbortReason::Conflicts),
        ),
        // The encoding declined (outside its exactness preconditions): keep
        // PODEM's abort untouched.
        SatVerdict::Unsupported => {
            EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Unsupported)
        }
    }
}

/// [`prove_one`] under per-fault panic isolation and the stage budget.
///
/// A stage-stopped budget short-circuits to an
/// [`AbortReason::Timeout`] verdict; a panic inside the engines is caught,
/// recorded as [`AbortReason::Panicked`], and the (possibly poisoned —
/// PODEM's reusable buffers are moved out during a search) engines are
/// dropped so the next fault rebuilds them from scratch.
#[allow(clippy::too_many_arguments)]
fn prove_guarded<'a>(
    netlist: &'a Netlist,
    constraints: &ConstraintSet,
    config: &ProofConfig,
    budget: &Budget,
    podem_slot: &mut Option<Podem<'a>>,
    sat_slot: &mut Option<SatProver<'a>>,
    index: usize,
    fault: StuckAt,
) -> EngineOutcome {
    if budget.stage_stopped() {
        return EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Timeout);
    }
    let podem = match podem_slot {
        Some(podem) => podem,
        None => podem_slot.insert(
            Podem::new(netlist, constraints, config.podem_config())
                .expect("levelization already validated"),
        ),
    };
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        prove_one(
            netlist,
            constraints,
            config,
            budget,
            podem,
            sat_slot,
            index,
            fault,
        )
    }));
    match attempt {
        Ok(result) => result,
        Err(_) => {
            *podem_slot = None;
            *sat_slot = None;
            EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Panicked)
        }
    }
}

/// Proves every fault in `worklist` (indices into `faults`) with a fan-out
/// over scoped worker threads, writing `encode`d outcomes into `results` at
/// the worklist positions. Slots already holding a verdict (pre-seeded from
/// a checkpoint) are skipped; freshly proven verdicts are appended to the
/// checkpoint as they conclude. Below two resolved workers the faults are
/// proven on `single_engine`, built lazily and kept alive across calls — the
/// collapse schedule invokes this twice (representatives, then the members
/// of aborted classes) and engine construction is design-sized (SCOAP,
/// baseline propagation).
///
/// The netlist must already have been validated acyclic (the workers unwrap
/// engine construction).
#[allow(clippy::too_many_arguments)]
fn prove_worklist<'a>(
    netlist: &'a Netlist,
    constraints: &ConstraintSet,
    faults: &[StuckAt],
    worklist: &[usize],
    config: &ProofConfig,
    budget: &Budget,
    checkpoint: Option<&Checkpoint>,
    results: &[AtomicU8],
    single_engine: &mut Option<Podem<'a>>,
    single_sat: &mut Option<SatProver<'a>>,
) {
    if worklist.is_empty() {
        return;
    }
    let workers = config.resolve_threads(worklist.len());
    if workers <= 1 {
        for &i in worklist {
            if results[i].load(Ordering::Relaxed) != 0 {
                continue;
            }
            let r = prove_guarded(
                netlist,
                constraints,
                config,
                budget,
                single_engine,
                single_sat,
                i,
                faults[i],
            );
            results[i].store(encode(r), Ordering::Relaxed);
            if let Some(cp) = checkpoint {
                cp.record(faults[i], r);
            }
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let chunks = worklist.len().div_ceil(CHUNK);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut podem_slot: Option<Podem<'a>> = None;
                let mut sat_engine: Option<SatProver<'a>> = None;
                loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunks {
                        break;
                    }
                    let start = chunk * CHUNK;
                    let end = (start + CHUNK).min(worklist.len());
                    for &i in &worklist[start..end] {
                        if results[i].load(Ordering::Relaxed) != 0 {
                            continue;
                        }
                        let r = prove_guarded(
                            netlist,
                            constraints,
                            config,
                            budget,
                            &mut podem_slot,
                            &mut sat_engine,
                            i,
                            faults[i],
                        );
                        results[i].store(encode(r), Ordering::Relaxed);
                        if let Some(cp) = checkpoint {
                            cp.record(faults[i], r);
                        }
                    }
                }
            });
        }
    });
}

/// Proves (or fails to prove) untestability for every fault in `faults` under
/// `constraints`, returning one [`ProofOutcome`] per fault in input order.
///
/// With [`ProofConfig::use_collapse`] the worklist is collapse-scheduled:
/// one representative per structural equivalence class is proven (the class's
/// first fault in input order), concluded verdicts expand to the rest of the
/// class, and members of classes whose representative *aborted* are proven
/// individually in a second pass — an abort never expands.
///
/// The faults are fanned out across scoped worker threads according to
/// `config.threads`; per-fault outcomes do not depend on the fan-out, so any
/// thread count produces the same vector.
///
/// # Errors
///
/// Returns the levelization error if the combinational logic is cyclic.
pub fn prove_faults(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    faults: &[StuckAt],
    config: &ProofConfig,
) -> Result<Vec<ProofOutcome>, graph::CombinationalLoop> {
    Ok(
        prove_faults_with_engines(netlist, constraints, faults, config)?
            .into_iter()
            .map(|r| r.outcome)
            .collect(),
    )
}

/// [`prove_faults`], keeping the engine attribution of every verdict — the
/// form the identification flow uses to report the PODEM/SAT portfolio
/// breakdown.
///
/// # Errors
///
/// Returns the levelization error if the combinational logic is cyclic.
pub fn prove_faults_with_engines(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    faults: &[StuckAt],
    config: &ProofConfig,
) -> Result<Vec<EngineOutcome>, graph::CombinationalLoop> {
    match prove_faults_campaign(
        netlist,
        constraints,
        faults,
        config,
        &Budget::unlimited(),
        None,
    ) {
        Ok(campaign) => Ok(campaign.outcomes),
        Err(CampaignError::Cyclic(e)) => Err(e),
        Err(CampaignError::Checkpoint(e)) => {
            unreachable!("no checkpoint was passed, yet one errored: {e}")
        }
    }
}

/// Why a proof campaign could not run to completion.
#[derive(Clone, Debug)]
pub enum CampaignError {
    /// The combinational logic is cyclic; no engine can be built.
    Cyclic(graph::CombinationalLoop),
    /// The checkpoint file could not be opened, parsed, or written.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Cyclic(e) => write!(f, "{e}"),
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// The result of one [`prove_faults_campaign`] run.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// One engine-tagged verdict per input fault, in input order.
    pub outcomes: Vec<EngineOutcome>,
    /// Faults whose verdict was replayed from the checkpoint instead of
    /// being proven by this run.
    pub from_checkpoint: usize,
    /// Whether any fault came back [`AbortReason::Timeout`] — the stage
    /// deadline, a per-fault limit, or a cancellation left work unresolved.
    pub deadline_hit: bool,
}

/// [`prove_faults_with_engines`] with the campaign-survivability layer: a
/// cooperative [`Budget`] (cancel token, stage deadline, per-fault limit),
/// per-fault panic isolation, and an optional incremental
/// [`Checkpoint`].
///
/// Checkpointed verdicts are pre-seeded into the result slots before
/// scheduling and the collapse classes are computed over the full
/// population, so a resumed campaign replays the uninterrupted schedule
/// exactly: the merged classification is bit-identical to a single
/// uninterrupted run under the same configuration, and only unconcluded
/// faults are re-proven.
///
/// # Errors
///
/// [`CampaignError::Cyclic`] if the combinational logic is cyclic,
/// [`CampaignError::Checkpoint`] if appending to the checkpoint failed.
pub fn prove_faults_campaign(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    faults: &[StuckAt],
    config: &ProofConfig,
    budget: &Budget,
    checkpoint: Option<&Checkpoint>,
) -> Result<CampaignOutcome, CampaignError> {
    // Validate levelization once up front (and still surface a cyclic design
    // when the fault list is empty) so the workers can unwrap — levelize is
    // the only error source of engine construction, and validating with it
    // directly avoids building (and immediately dropping) a full engine with
    // its SCOAP computation and baseline propagation.
    graph::levelize(netlist).map_err(CampaignError::Cyclic)?;
    if faults.is_empty() {
        return Ok(CampaignOutcome {
            outcomes: Vec::new(),
            from_checkpoint: 0,
            deadline_hit: false,
        });
    }
    let results: Vec<AtomicU8> = (0..faults.len()).map(|_| AtomicU8::new(0)).collect();
    let mut from_checkpoint = 0usize;
    if let Some(cp) = checkpoint {
        for (i, &fault) in faults.iter().enumerate() {
            if let Some(r) = cp.concluded(fault) {
                results[i].store(encode(r), Ordering::Relaxed);
                from_checkpoint += 1;
            }
        }
    }

    let mut single_engine: Option<Podem<'_>> = None;
    let mut single_sat: Option<SatProver<'_>> = None;

    if !config.use_collapse {
        let worklist: Vec<usize> = (0..faults.len()).collect();
        prove_worklist(
            netlist,
            constraints,
            faults,
            &worklist,
            config,
            budget,
            checkpoint,
            &results,
            &mut single_engine,
            &mut single_sat,
        );
        return finish_campaign(results, from_checkpoint, checkpoint);
    }

    // Collapse-schedule: group the population by structural equivalence
    // class and prove the first member of each class.
    //
    // One frame-specific restriction: structural equivalence reasons about
    // the faulty *function*, but a constraint-forced net decouples a stem
    // fault from its branch — a gate never overwrites a forced net, so the
    // stem fault is masked, while the branch fault still injects at the
    // load's pin read. Every forced net is therefore a stem/branch barrier
    // when the classes are built (a post-hoc exclusion would not do: the
    // union-find chains *through* the net, linking sound members upstream of
    // the forcing point to sound members downstream of it whose behaviour
    // differs). Gate-local unions stay valid on forced nets — a forced gate
    // output masks the gate's pin faults and its output fault alike.
    let list = FaultList::from_faults(faults.to_vec());
    let collapsed = collapse_with_barriers(netlist, &list, |net| {
        constraints.forced_nets.contains_key(&net)
    });
    // Class representative (universe index) → input index of its prover.
    let mut prover_of_class: Vec<Option<usize>> = vec![None; list.len()];
    let mut class_of: Vec<usize> = Vec::with_capacity(faults.len());
    let mut provers: Vec<usize> = Vec::new();
    for (i, &fault) in faults.iter().enumerate() {
        let class = collapsed.representative_of(
            list.index_of(fault)
                .expect("every input fault is in its own universe"),
        );
        class_of.push(class);
        if prover_of_class[class].is_none() {
            prover_of_class[class] = Some(i);
            provers.push(i);
        }
    }
    prove_worklist(
        netlist,
        constraints,
        faults,
        &provers,
        config,
        budget,
        checkpoint,
        &results,
        &mut single_engine,
        &mut single_sat,
    );

    // Expansion: concluded class verdicts cover every member (with the
    // representative's engine — that proof is what covers them); members of
    // aborted classes go into the individual second pass. A pre-seeded
    // member keeps its checkpointed verdict either way.
    let mut second_pass: Vec<usize> = Vec::new();
    for i in 0..faults.len() {
        let prover = prover_of_class[class_of[i]].expect("every class has a prover");
        if prover == i {
            continue;
        }
        let representative = decode(results[prover].load(Ordering::Relaxed));
        if representative.outcome == ProofOutcome::Aborted {
            second_pass.push(i);
        } else if results[i].load(Ordering::Relaxed) == 0 {
            results[i].store(encode(representative), Ordering::Relaxed);
        }
    }
    prove_worklist(
        netlist,
        constraints,
        faults,
        &second_pass,
        config,
        budget,
        checkpoint,
        &results,
        &mut single_engine,
        &mut single_sat,
    );

    finish_campaign(results, from_checkpoint, checkpoint)
}

/// Decodes the filled result slots, surfaces any deferred checkpoint write
/// error, and derives the deadline-hit flag.
fn finish_campaign(
    results: Vec<AtomicU8>,
    from_checkpoint: usize,
    checkpoint: Option<&Checkpoint>,
) -> Result<CampaignOutcome, CampaignError> {
    if let Some(cp) = checkpoint {
        cp.sync()?;
    }
    let outcomes: Vec<EngineOutcome> = results
        .into_iter()
        .map(|c| decode(c.into_inner()))
        .collect();
    let deadline_hit = outcomes
        .iter()
        .any(|o| o.reason == Some(AbortReason::Timeout));
    Ok(CampaignOutcome {
        outcomes,
        from_checkpoint,
        deadline_hit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmodel::{collapse, FaultList};
    use netlist::NetlistBuilder;

    fn redundant_design() -> netlist::Netlist {
        // Three parallel copies of the classic redundant AND-OR structure so
        // the universe is large enough to exercise multiple chunks.
        let mut b = NetlistBuilder::new("red3");
        for i in 0..3 {
            let a = b.input(format!("a{i}"));
            let c = b.input(format!("b{i}"));
            let t = b.and2(a, c);
            let y = b.or2(a, t);
            b.output(format!("y{i}"), y);
        }
        b.finish()
    }

    #[test]
    fn parallel_outcomes_match_single_thread() {
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let constraints = ConstraintSet::full_scan();
        let single = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                threads: 1,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let parallel = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                threads: 4,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        assert_eq!(single, parallel);
        let stats = ProofStats::from_outcomes(&single);
        assert_eq!(stats.attempted, faults.len());
        assert_eq!(
            stats.test_exists + stats.proven_untestable + stats.aborted,
            stats.attempted
        );
        // The three redundant AND-output s-a-0 faults are proven.
        assert!(stats.proven_untestable >= 3, "{stats:?}");
        assert!(stats.test_exists > 0);
    }

    #[test]
    fn outcomes_match_a_fresh_sequential_engine_per_fault() {
        let n = redundant_design();
        let faults: Vec<_> = FaultList::full_universe(&n)
            .faults()
            .iter()
            .copied()
            .take(40)
            .collect();
        let constraints = ConstraintSet::full_scan();
        let config = ProofConfig {
            threads: 3,
            ..ProofConfig::default()
        };
        let parallel = prove_faults(&n, &constraints, &faults, &config).unwrap();
        let mut podem = Podem::new(&n, &constraints, config.podem_config()).unwrap();
        for (i, &fault) in faults.iter().enumerate() {
            assert_eq!(parallel[i], podem.prove(fault), "{fault:?}");
        }
    }

    #[test]
    fn constraints_are_respected_by_the_fanned_out_engines() {
        // Tie one input: the AND output can never rise, so its s-a-0 becomes
        // provable in every worker.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let faults = vec![StuckAt::output(and, false), StuckAt::output(and, true)];
        let outcomes = prove_faults(&n, &constraints, &faults, &ProofConfig::default()).unwrap();
        assert_eq!(outcomes[0], ProofOutcome::ProvenUntestable);
        assert_eq!(outcomes[1], ProofOutcome::TestExists);
    }

    #[test]
    fn empty_fault_list_is_fine_and_cyclic_designs_error() {
        let n = redundant_design();
        let outcomes = prove_faults(
            &n,
            &ConstraintSet::full_scan(),
            &[],
            &ProofConfig::default(),
        )
        .unwrap();
        assert!(outcomes.is_empty());
    }

    #[test]
    #[should_panic(expected = "proof fan-out left a fault unvisited")]
    fn decode_rejects_the_unwritten_result_code() {
        // Regression: code 0 is the never-written initializer of the result
        // slots. It used to decode to `Aborted`, so a scheduling bug that
        // skipped a fault would masquerade as a legitimate budget give-up.
        let _ = decode(0);
    }

    #[test]
    fn decode_roundtrips_every_real_outcome() {
        for engine in [ProofEngine::Podem, ProofEngine::Sat] {
            for outcome in [ProofOutcome::TestExists, ProofOutcome::ProvenUntestable] {
                let tagged = EngineOutcome::concluded(outcome, engine);
                assert_eq!(decode(encode(tagged)), tagged);
            }
            for reason in [
                AbortReason::Backtracks,
                AbortReason::Conflicts,
                AbortReason::Timeout,
                AbortReason::Panicked,
                AbortReason::Unsupported,
            ] {
                let tagged = EngineOutcome::aborted(engine, reason);
                assert_eq!(decode(encode(tagged)), tagged);
            }
        }
    }

    #[test]
    fn collapse_scheduling_matches_individual_proofs() {
        // Expanded class verdicts must agree fault-by-fault with proving
        // every member on its own (generous budget: everything concludes).
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let constraints = ConstraintSet::full_scan();
        let scheduled = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 10_000,
                threads: 2,
                use_collapse: true,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let individual = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 10_000,
                threads: 1,
                use_collapse: false,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        assert_eq!(scheduled, individual);
        // The design collapses (AND/OR input faults merge with output
        // faults), so the schedule really did expand verdicts.
        let list = FaultList::from_faults(faults.clone());
        assert!(collapse(&n, &list).num_classes() < faults.len());
    }

    #[test]
    fn aborted_representatives_do_not_expand() {
        // With a zero budget the redundant-AND classes abort. The expansion
        // rule says: a class prover's concluded verdict covers its class; an
        // aborted prover covers nothing, and every other member falls back to
        // its own individual proof.
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let constraints = ConstraintSet::full_scan();
        let config = ProofConfig {
            backtrack_limit: 0,
            threads: 1,
            use_collapse: true,
            ..ProofConfig::default()
        };
        let scheduled = prove_faults(&n, &constraints, &faults, &config).unwrap();
        let mut podem = Podem::new(&n, &constraints, config.podem_config()).unwrap();
        let solo: Vec<ProofOutcome> = faults.iter().map(|&f| podem.prove(f)).collect();
        assert!(
            solo.contains(&ProofOutcome::Aborted),
            "the zero budget should abort some searches"
        );

        // Recompute the schedule's prover assignment.
        let list = FaultList::from_faults(faults.clone());
        let collapsed = collapse(&n, &list);
        let mut prover: std::collections::HashMap<usize, usize> = Default::default();
        for (i, &f) in faults.iter().enumerate() {
            prover
                .entry(collapsed.representative_of(list.index_of(f).unwrap()))
                .or_insert(i);
        }
        for (i, &f) in faults.iter().enumerate() {
            let p = prover[&collapsed.representative_of(list.index_of(f).unwrap())];
            if p == i || scheduled[p] == ProofOutcome::Aborted {
                // Provers and members of aborted classes: own verdict.
                assert_eq!(scheduled[i], solo[i], "{f:?}");
            } else {
                // Members of concluded classes: the expanded verdict.
                assert_eq!(scheduled[i], scheduled[p], "{f:?}");
                assert_ne!(scheduled[i], ProofOutcome::Aborted, "{f:?}");
            }
        }
    }

    #[test]
    fn forced_nets_never_share_a_scheduled_class() {
        // A forced gate-driven net masks its stem fault (gates never
        // overwrite forced nets) but not the branch fault at the load pin —
        // the two are structurally "equivalent" yet behave differently, so
        // the scheduler must prove them individually. y = buf(a AND b) into
        // an output, with the buffer's output net forced to 0: the branch
        // fault at the output pin (s-a-1) is detectable (good value 0 at an
        // observation pin), the stem fault (s-a-1) is masked and untestable.
        let mut b = NetlistBuilder::new("forced");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.buf(t);
        b.output("y", y);
        let n = b.finish();
        let buf = n.driver_of(y).unwrap();
        let po = n.primary_outputs()[0];
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(y, false);
        let stem = StuckAt::output(buf, true);
        let branch = StuckAt::input(po, 0, true);
        let faults = vec![stem, branch];
        for use_collapse in [false, true] {
            let outcomes = prove_faults(
                &n,
                &constraints,
                &faults,
                &ProofConfig {
                    backtrack_limit: 10_000,
                    threads: 1,
                    use_collapse,
                    ..ProofConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                outcomes[0],
                ProofOutcome::ProvenUntestable,
                "stem is masked by the forced net (use_collapse={use_collapse})"
            );
            assert_eq!(
                outcomes[1],
                ProofOutcome::TestExists,
                "branch at the observation pin stays detectable (use_collapse={use_collapse})"
            );
        }
    }

    #[test]
    fn classes_never_chain_through_a_forced_net() {
        // Regression: the structural union-find chains *through* a net —
        // gate-local rule on the AND, stem/branch rule on its (forced)
        // output, gate-local rule on the buffer — linking the masked
        // AND-input fault (untestable: the forced net swallows its effect)
        // to the live buffer-output fault (testable: downstream of the
        // forcing point). A site-based exclusion alone is not enough; the
        // forced net must be a barrier when the classes are built, or the
        // scheduler expands ProvenUntestable onto a genuinely testable
        // fault.
        //
        //   a, b → AND → t (forced to 1) → BUF → y (primary output)
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.buf(t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let buf = n.driver_of(y).unwrap();
        let po = n.primary_outputs()[0];
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(t, true);
        let faults = vec![
            StuckAt::input(and, 0, false), // masked: effect dies at forced t
            StuckAt::output(and, false),   // masked (sited on t)
            StuckAt::input(buf, 0, false), // live: pin read injects past t
            StuckAt::output(buf, false),   // live: y can be driven to 0
            StuckAt::input(po, 0, false),  // live branch at the output pin
        ];
        let expected = [
            ProofOutcome::ProvenUntestable,
            ProofOutcome::ProvenUntestable,
            ProofOutcome::TestExists,
            ProofOutcome::TestExists,
            ProofOutcome::TestExists,
        ];
        for use_collapse in [false, true] {
            let outcomes = prove_faults(
                &n,
                &constraints,
                &faults,
                &ProofConfig {
                    backtrack_limit: 10_000,
                    threads: 1,
                    use_collapse,
                    ..ProofConfig::default()
                },
            )
            .unwrap();
            assert_eq!(outcomes, expected, "use_collapse={use_collapse}");
        }
    }

    #[test]
    fn podem_aborts_escalate_to_sat_proofs_with_the_engine_recorded() {
        // Zero backtrack budget: PODEM aborts on the redundant AND s-a-0
        // faults (and others); the SAT escalation must convert those aborts
        // into verdicts attributed to the SAT engine, and every concluded
        // verdict must agree with an exhaustive PODEM-only run.
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let constraints = ConstraintSet::full_scan();
        let portfolio = prove_faults_with_engines(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 0,
                threads: 1,
                use_sat: true,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let exhaustive = prove_faults(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 10_000,
                threads: 1,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let mut sat_proofs = 0;
        for (i, (tagged, &expected)) in portfolio.iter().zip(&exhaustive).enumerate() {
            assert_eq!(tagged.outcome, expected, "fault {:?}", faults[i]);
            if tagged.engine == ProofEngine::Sat {
                sat_proofs += 1;
                assert_ne!(tagged.outcome, ProofOutcome::Aborted);
            }
        }
        assert!(sat_proofs > 0, "no abort ever reached the SAT backend");
        let breakdown = EngineBreakdown::from_outcomes(&portfolio);
        assert_eq!(breakdown.sat_test_exists + breakdown.sat_proven, sat_proofs);
        assert!(
            breakdown.sat_proven >= 3,
            "the redundant AND s-a-0 faults must become SAT untestability proofs: {breakdown:?}"
        );
        assert_eq!(breakdown.sat_aborted, 0);
    }

    #[test]
    fn sat_conflict_limit_exhaustion_stays_aborted() {
        // The redundancy proof needs at least one decision-level conflict, so
        // a zero conflict budget must leave the fault aborted (attributed to
        // the SAT attempt), never upgrade it — and lifting the budget turns
        // the same fault into a SAT proof.
        let mut b = NetlistBuilder::new("limited");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let faults = vec![StuckAt::output(and, false)];
        let constraints = ConstraintSet::full_scan();
        let starved = prove_faults_with_engines(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 0,
                threads: 1,
                use_sat: true,
                sat_conflict_limit: 0,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            starved[0],
            EngineOutcome::aborted(ProofEngine::Sat, AbortReason::Conflicts)
        );
        let funded = prove_faults_with_engines(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 0,
                threads: 1,
                use_sat: true,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            funded[0],
            EngineOutcome::concluded(ProofOutcome::ProvenUntestable, ProofEngine::Sat)
        );
        // When PODEM concludes on its own, SAT is never consulted.
        let podem_first = prove_faults_with_engines(
            &n,
            &constraints,
            &faults,
            &ProofConfig {
                backtrack_limit: 10_000,
                threads: 1,
                use_sat: true,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            podem_first[0],
            EngineOutcome::concluded(ProofOutcome::ProvenUntestable, ProofEngine::Podem)
        );
    }

    #[test]
    fn portfolio_outcomes_are_thread_invariant() {
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let constraints = ConstraintSet::full_scan();
        let config = |threads| ProofConfig {
            backtrack_limit: 0,
            threads,
            use_sat: true,
            ..ProofConfig::default()
        };
        let single = prove_faults_with_engines(&n, &constraints, &faults, &config(1)).unwrap();
        let parallel = prove_faults_with_engines(&n, &constraints, &faults, &config(4)).unwrap();
        assert_eq!(single, parallel);
    }

    #[test]
    fn zero_budget_aborts_are_never_upgraded() {
        let n = redundant_design();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let outcomes = prove_faults(
            &n,
            &ConstraintSet::full_scan(),
            &faults,
            &ProofConfig {
                backtrack_limit: 0,
                threads: 2,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        let stats = ProofStats::from_outcomes(&outcomes);
        // The three redundant AND-output s-a-0 faults need backtracking to be
        // proven; with no budget they must come back aborted, never proven.
        assert!(stats.aborted >= 3, "{stats:?}");
        let generous = prove_faults(
            &n,
            &ConstraintSet::full_scan(),
            &faults,
            &ProofConfig {
                backtrack_limit: 10_000,
                threads: 1,
                ..ProofConfig::default()
            },
        )
        .unwrap();
        for (i, (&tight, &loose)) in outcomes.iter().zip(&generous).enumerate() {
            // A truncated search may abort, but whenever it does conclude it
            // must agree with the exhaustive search.
            if tight != ProofOutcome::Aborted {
                assert_eq!(tight, loose, "fault {:?}", faults[i]);
            }
            // And a proof that the exhaustive search could not produce must
            // never appear under a tighter budget.
            if loose != ProofOutcome::ProvenUntestable {
                assert_ne!(
                    tight,
                    ProofOutcome::ProvenUntestable,
                    "fault {:?}",
                    faults[i]
                );
            }
        }
    }
}
