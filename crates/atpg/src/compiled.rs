//! One-time compilation of a levelized netlist into a flat, allocation-free
//! simulation program shared by the scalar three-valued simulator
//! ([`CombSim`](crate::sim::CombSim)) and the packed parallel-fault simulator
//! ([`FaultSim`](crate::fault_sim::FaultSim)).
//!
//! The interpreters this module replaces walked `HashMap`-keyed structures on
//! every simulated cycle: flop state keyed by `CellId`, fault injection keyed
//! by `NetId`/`CellId`, input vectors looked up per primary input per cycle,
//! and a fresh value array (plus one `Vec` per cell) allocated per
//! propagation. The compiled form is struct-of-arrays instead — one opcode
//! per combinational cell in topological order, an offset/len window into a
//! single flat `Vec<u32>` of input-net indices, a dense output-net index per
//! cell, and dense tie/flop/output tables — in the style of classical
//! bit-parallel (PPSFP) fault-simulation engines. Per-run state lives in
//! reusable [`PackedScratch`]/[`SimScratch`] buffers densely indexed by
//! `NetId::index()` / flop-table position, so the per-cycle hot path touches
//! no hash map and performs no allocation.

use crate::fault_sim::InputVector;
use crate::logic::Logic;
use faultmodel::{FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist, PinIndex, Reset};
use std::collections::HashMap;

/// Sentinel meaning "no net / no pin slot" in the dense `u32` tables.
pub const NO_INDEX: u32 = u32::MAX;

/// Opcode of a compiled combinational cell. The arity lives in the cell's pin
/// window, so one opcode covers every gate width.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Op {
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// N-input XOR.
    Xor,
    /// N-input XNOR.
    Xnor,
    /// 2-to-1 multiplexer (`D0`, `D1`, `S`).
    Mux2,
}

impl Op {
    fn from_kind(kind: CellKind) -> Option<Op> {
        match kind {
            CellKind::Buf => Some(Op::Buf),
            CellKind::Not => Some(Op::Not),
            CellKind::And(_) => Some(Op::And),
            CellKind::Nand(_) => Some(Op::Nand),
            CellKind::Or(_) => Some(Op::Or),
            CellKind::Nor(_) => Some(Op::Nor),
            CellKind::Xor(_) => Some(Op::Xor),
            CellKind::Xnor(_) => Some(Op::Xnor),
            CellKind::Mux2 => Some(Op::Mux2),
            _ => None,
        }
    }
}

/// One entry of the dense flip-flop table: the flop's output net and the
/// flat pin slots of its data/scan/reset pins. Packed state is stored per
/// table position, so no arena index is needed.
#[derive(Copy, Clone, Debug)]
struct Flop {
    /// Output net index (`NO_INDEX` when the driver was detached).
    q: u32,
    /// Flat pin slot of the `D` pin.
    d_slot: u32,
    /// Flat pin slots of `SI`/`SE`; `NO_INDEX` for plain D flip-flops.
    si_slot: u32,
    se_slot: u32,
    /// Flat pin slot of the reset pin; `NO_INDEX` when there is none.
    rst_slot: u32,
    /// Reset polarity (meaningful only when `rst_slot != NO_INDEX`).
    rst_active_high: bool,
}

/// The compiled simulation program: a netlist lowered once into flat,
/// densely indexed tables, ready for repeated allocation-free evaluation.
///
/// Build one with [`CompiledProgram::compile`]; per-run mutable state lives
/// in a [`PackedScratch`] (packed 64-machine simulation) or [`SimScratch`]
/// (scalar three-valued propagation) owned by the caller, so one program can
/// serve many concurrent workers.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    num_nets: usize,
    // ---- gate program, topological order (struct-of-arrays) ----
    op: Vec<Op>,
    gate_cell: Vec<u32>,
    out: Vec<u32>,
    in_start: Vec<u32>,
    in_len: Vec<u32>,
    /// Flat input-net indices of every live cell (gates, flops, outputs).
    pins: Vec<u32>,
    /// First flat pin slot per cell arena index (`NO_INDEX` when the cell is
    /// dead or has no input pins).
    cell_pin_start: Vec<u32>,
    // ---- dense source / sink tables ----
    /// Nets driven by primary-input pseudo-cells, in creation order.
    pi_nets: Vec<u32>,
    /// Nets driven by tie cells, with their constant value.
    tie_nets: Vec<(u32, bool)>,
    /// Flip-flop table.
    flops: Vec<Flop>,
}

impl CompiledProgram {
    /// Lowers `netlist` into a compiled program.
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the combinational logic is cyclic.
    pub fn compile(netlist: &Netlist) -> Result<Self, graph::CombinationalLoop> {
        let lev = graph::levelize(netlist)?;
        let cells = netlist.cells();

        let mut cell_pin_start = vec![NO_INDEX; cells.len()];
        let mut pins: Vec<u32> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            if cell.is_dead() || cell.inputs().is_empty() {
                continue;
            }
            cell_pin_start[i] = pins.len() as u32;
            pins.extend(cell.inputs().iter().map(|n| n.index() as u32));
        }

        let mut program = CompiledProgram {
            num_nets: netlist.num_nets(),
            op: Vec::with_capacity(lev.order.len()),
            gate_cell: Vec::with_capacity(lev.order.len()),
            out: Vec::with_capacity(lev.order.len()),
            in_start: Vec::with_capacity(lev.order.len()),
            in_len: Vec::with_capacity(lev.order.len()),
            pins,
            cell_pin_start,
            pi_nets: Vec::new(),
            tie_nets: Vec::new(),
            flops: Vec::new(),
        };

        for &cell_id in &lev.order {
            let cell = &cells[cell_id.index()];
            // A gate whose driver was detached computes nothing observable.
            let Some(out_net) = cell.output() else {
                continue;
            };
            program
                .op
                .push(Op::from_kind(cell.kind()).expect("levelized cells are combinational"));
            program.gate_cell.push(cell_id.index() as u32);
            program.out.push(out_net.index() as u32);
            program
                .in_start
                .push(program.cell_pin_start[cell_id.index()]);
            program.in_len.push(cell.inputs().len() as u32);
        }

        for (i, cell) in cells.iter().enumerate() {
            if cell.is_dead() {
                continue;
            }
            match cell.kind() {
                CellKind::Input => {
                    if let Some(out) = cell.output() {
                        program.pi_nets.push(out.index() as u32);
                    }
                }
                CellKind::Tie0 | CellKind::Tie1 => {
                    if let Some(out) = cell.output() {
                        program
                            .tie_nets
                            .push((out.index() as u32, cell.kind() == CellKind::Tie1));
                    }
                }
                kind @ (CellKind::Dff { .. } | CellKind::Sdff { .. }) => {
                    let start = program.cell_pin_start[i];
                    let is_scan = matches!(kind, CellKind::Sdff { .. });
                    program.flops.push(Flop {
                        q: cell.output().map_or(NO_INDEX, |n| n.index() as u32),
                        d_slot: start,
                        si_slot: if is_scan { start + 1 } else { NO_INDEX },
                        se_slot: if is_scan { start + 2 } else { NO_INDEX },
                        rst_slot: kind.reset_pin().map_or(NO_INDEX, |p| start + u32::from(p)),
                        rst_active_high: matches!(kind.reset(), Some(Reset::ActiveHigh)),
                    });
                }
                _ => {}
            }
        }

        Ok(program)
    }

    /// Number of nets the program was compiled for.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of compiled combinational cells.
    pub fn num_gates(&self) -> usize {
        self.op.len()
    }

    /// Dense map from cell arena index to compiled gate-program index
    /// ([`NO_INDEX`] for cells that did not compile to a gate: ports, ties,
    /// flip-flops, dead cells and detached gates). Gate-program indices are
    /// topological, so a sorted subset of them is a valid evaluation order —
    /// the property cone-clipped propagation relies on.
    pub fn gate_index_by_cell(&self) -> Vec<u32> {
        let mut map = vec![NO_INDEX; self.cell_pin_start.len()];
        for (g, &cell) in self.gate_cell.iter().enumerate() {
            map[cell as usize] = g as u32;
        }
        map
    }

    /// The flat pin slot of input pin `pin` of `cell`, or `None` when the
    /// cell is dead, has no compiled pins, or the pin index is out of range.
    fn pin_slot(&self, netlist: &Netlist, cell: CellId, pin: PinIndex) -> Option<usize> {
        let start = self.cell_pin_start[cell.index()];
        if start == NO_INDEX || usize::from(pin) >= netlist.cells()[cell.index()].inputs().len() {
            return None;
        }
        Some(start as usize + usize::from(pin))
    }

    // ------------------------------------------------------------------
    // Packed (64 machines per word) simulation
    // ------------------------------------------------------------------

    /// Creates the reusable per-worker buffers for packed simulation.
    pub fn packed_scratch(&self) -> PackedScratch {
        PackedScratch {
            nets: vec![0; self.num_nets],
            state: vec![0; self.flops.len()],
        }
    }

    /// Creates an (empty) dense fault-injection table sized for this program.
    pub fn packed_injection(&self) -> PackedInjection {
        PackedInjection {
            net_mask: vec![0; self.num_nets],
            net_stuck: vec![0; self.num_nets],
            pin_mask: vec![0; self.pins.len()],
            pin_stuck: vec![0; self.pins.len()],
            touched_nets: Vec::new(),
            touched_pins: Vec::new(),
            fault_bits: 0,
        }
    }

    /// Bit-packs a sequence of input vectors into one dense per-cycle bitset
    /// over the primary inputs, so the per-cycle source application is a
    /// linear scan instead of one hash lookup per input per cycle.
    /// Unmentioned inputs take their mission (inactive) value 0.
    pub fn pack_vectors(&self, vectors: &[InputVector]) -> PackedVectors {
        let words_per_cycle = self.pi_nets.len().div_ceil(64).max(1);
        let mut bits = vec![0u64; words_per_cycle * vectors.len()];
        for (cycle, vector) in vectors.iter().enumerate() {
            let base = cycle * words_per_cycle;
            for (k, &net) in self.pi_nets.iter().enumerate() {
                let id = NetId::from_index(net as usize);
                if vector.get(&id).copied().unwrap_or(false) {
                    bits[base + k / 64] |= 1u64 << (k % 64);
                }
            }
        }
        PackedVectors {
            cycles: vectors.len(),
            words_per_cycle,
            bits,
        }
    }

    /// Simulates one clock cycle of up to 64 packed machines: applies the
    /// cycle's primary-input bits, tie constants and flop state, propagates
    /// the gate program in topological order and captures the next state.
    /// Touches only `scratch`; allocates nothing.
    pub fn run_cycle(
        &self,
        vectors: &PackedVectors,
        cycle: usize,
        injection: &PackedInjection,
        scratch: &mut PackedScratch,
    ) {
        let PackedScratch { nets, state } = scratch;

        // Sources: primary inputs, ties, flip-flop outputs.
        for (k, &net) in self.pi_nets.iter().enumerate() {
            let n = net as usize;
            let v = if vectors.bit(cycle, k) { !0u64 } else { 0 };
            nets[n] = (v & !injection.net_mask[n]) | injection.net_stuck[n];
        }
        for &(net, value) in &self.tie_nets {
            let n = net as usize;
            let v = if value { !0u64 } else { 0 };
            nets[n] = (v & !injection.net_mask[n]) | injection.net_stuck[n];
        }
        for (fi, flop) in self.flops.iter().enumerate() {
            if flop.q != NO_INDEX {
                let n = flop.q as usize;
                nets[n] = (state[fi] & !injection.net_mask[n]) | injection.net_stuck[n];
            }
        }

        // Combinational propagation in topological order.
        for g in 0..self.op.len() {
            let start = self.in_start[g] as usize;
            let len = self.in_len[g] as usize;
            let value = {
                let nets = &*nets;
                let read = |k: usize| -> u64 {
                    let slot = start + k;
                    (nets[self.pins[slot] as usize] & !injection.pin_mask[slot])
                        | injection.pin_stuck[slot]
                };
                match self.op[g] {
                    Op::Buf => read(0),
                    Op::Not => !read(0),
                    Op::And => (0..len).fold(!0u64, |acc, k| acc & read(k)),
                    Op::Nand => !(0..len).fold(!0u64, |acc, k| acc & read(k)),
                    Op::Or => (0..len).fold(0u64, |acc, k| acc | read(k)),
                    Op::Nor => !(0..len).fold(0u64, |acc, k| acc | read(k)),
                    Op::Xor => (0..len).fold(0u64, |acc, k| acc ^ read(k)),
                    Op::Xnor => !(0..len).fold(0u64, |acc, k| acc ^ read(k)),
                    Op::Mux2 => {
                        let select = read(2);
                        (read(0) & !select) | (read(1) & select)
                    }
                }
            };
            let out = self.out[g] as usize;
            nets[out] = (value & !injection.net_mask[out]) | injection.net_stuck[out];
        }

        // Next-state capture. The loop reads only `nets` (state was consumed
        // by the source phase above), so captures commit in place.
        for (fi, flop) in self.flops.iter().enumerate() {
            let read = |slot: u32| -> u64 {
                let s = slot as usize;
                (nets[self.pins[s] as usize] & !injection.pin_mask[s]) | injection.pin_stuck[s]
            };
            let mut data = if flop.si_slot != NO_INDEX {
                let d = read(flop.d_slot);
                let si = read(flop.si_slot);
                let se = read(flop.se_slot);
                (d & !se) | (si & se)
            } else {
                read(flop.d_slot)
            };
            if flop.rst_slot != NO_INDEX {
                let rst = read(flop.rst_slot);
                let active = if flop.rst_active_high { rst } else { !rst };
                data &= !active;
            }
            // A stuck output pin also pins the stored state.
            if flop.q != NO_INDEX {
                let n = flop.q as usize;
                data = (data & !injection.net_mask[n]) | injection.net_stuck[n];
            }
            state[fi] = data;
        }
    }

    /// The packed value observed at an `Output` pseudo-cell, including any
    /// injected fault on the output's own input pin — the single place both
    /// the good-machine response extraction and the detection loop read
    /// primary outputs.
    pub fn observe_output(
        &self,
        scratch: &PackedScratch,
        injection: &PackedInjection,
        output: CellId,
    ) -> u64 {
        let slot = self.cell_pin_start[output.index()];
        debug_assert_ne!(slot, NO_INDEX, "observed cell has no input pin");
        let slot = slot as usize;
        (scratch.nets[self.pins[slot] as usize] & !injection.pin_mask[slot])
            | injection.pin_stuck[slot]
    }

    // ------------------------------------------------------------------
    // Scalar three-valued propagation
    // ------------------------------------------------------------------

    /// Creates the reusable scratch for [`propagate_scalar`]
    /// (an empty default-constructed [`SimScratch`] works too — it is sized
    /// lazily on first use).
    ///
    /// [`propagate_scalar`]: CompiledProgram::propagate_scalar
    pub fn sim_scratch(&self) -> SimScratch {
        SimScratch {
            forced: vec![false; self.num_nets],
            touched: Vec::new(),
        }
    }

    /// Three-valued propagation over the compiled program: the engine behind
    /// [`CombSim::propagate`](crate::sim::CombSim::propagate), evaluating
    /// every gate directly over its pin window — no per-cell input buffer is
    /// allocated.
    ///
    /// On entry `values` holds primary-input, flip-flop-output and forced net
    /// values; every other net is recomputed. `forced` nets are never
    /// overwritten. `fault` optionally injects one stuck-at fault.
    pub fn propagate_scalar(
        &self,
        netlist: &Netlist,
        values: &mut [Logic],
        forced: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
        scratch: &mut SimScratch,
    ) {
        debug_assert_eq!(values.len(), self.num_nets);
        if scratch.forced.len() != self.num_nets {
            scratch.forced = vec![false; self.num_nets];
            scratch.touched.clear();
        }

        // Apply forced values and tie constants first.
        for (&net, &v) in forced {
            values[net.index()] = v;
            if !scratch.forced[net.index()] {
                scratch.forced[net.index()] = true;
                scratch.touched.push(net.index() as u32);
            }
        }
        for &(net, value) in &self.tie_nets {
            let n = net as usize;
            if !scratch.forced[n] {
                values[n] = Logic::from_bool(value);
            }
        }

        // Output-pin fault on a source (input / tie / flip-flop): override
        // the driven net before propagation.
        if let Some(f) = fault {
            if let FaultSite::CellOutput { cell } = f.site {
                if !netlist.cell(cell).kind().is_combinational() {
                    if let Some(out) = netlist.output_net(cell) {
                        values[out.index()] = Logic::from_bool(f.value);
                    }
                }
            }
        }

        // Decompose the fault once for the gate loop.
        let (fault_cell, fault_pin, fault_value, fault_on_output) = decompose_fault(fault);

        for g in 0..self.op.len() {
            self.eval_gate(
                g,
                values,
                &scratch.forced,
                fault_cell,
                fault_pin,
                fault_value,
                fault_on_output,
            );
        }

        // Clear the forced marks for the next call.
        for &n in &scratch.touched {
            scratch.forced[n as usize] = false;
        }
        scratch.touched.clear();
    }

    /// Cone-clipped three-valued propagation: like
    /// [`propagate_scalar`](Self::propagate_scalar) but evaluating only the
    /// gates in `gates` — ascending gate-program indices, i.e. a
    /// topologically consistent subset such as a fault's fanout cone — with
    /// the constraint environment pre-lowered by the caller into
    /// `forced_mask`, the dense never-overwrite bitmap of forced nets.
    ///
    /// `values` must already hold the values of every net the clipped gates
    /// read (a cone-clipped caller syncs them from its good machine); nets
    /// outside the cone are left untouched.
    pub fn propagate_scalar_clipped(
        &self,
        netlist: &Netlist,
        values: &mut [Logic],
        forced_mask: &[bool],
        fault: Option<StuckAt>,
        gates: &[u32],
    ) {
        debug_assert_eq!(values.len(), self.num_nets);
        debug_assert!(gates.windows(2).all(|w| w[0] < w[1]));

        // Output-pin fault on a source (input / tie / flip-flop): override
        // the driven net before propagation.
        if let Some(f) = fault {
            if let FaultSite::CellOutput { cell } = f.site {
                if !netlist.cell(cell).kind().is_combinational() {
                    if let Some(out) = netlist.output_net(cell) {
                        values[out.index()] = Logic::from_bool(f.value);
                    }
                }
            }
        }

        let (fault_cell, fault_pin, fault_value, fault_on_output) = decompose_fault(fault);
        for &g in gates {
            self.eval_gate(
                g as usize,
                values,
                forced_mask,
                fault_cell,
                fault_pin,
                fault_value,
                fault_on_output,
            );
        }
    }

    /// Evaluates the logic function of compiled gate `g` over a caller
    /// supplied pin-read closure — the shared core of every scalar gate
    /// evaluation path.
    #[inline(always)]
    fn compute_gate(&self, g: usize, read: impl Fn(usize) -> Logic) -> Logic {
        let len = self.in_len[g] as usize;
        match self.op[g] {
            Op::Buf => read(0),
            Op::Not => read(0).not(),
            Op::And => (0..len).fold(Logic::One, |acc, k| acc.and(read(k))),
            Op::Nand => (0..len).fold(Logic::One, |acc, k| acc.and(read(k))).not(),
            Op::Or => (0..len).fold(Logic::Zero, |acc, k| acc.or(read(k))),
            Op::Nor => (0..len).fold(Logic::Zero, |acc, k| acc.or(read(k))).not(),
            Op::Xor => (0..len).fold(Logic::Zero, |acc, k| acc.xor(read(k))),
            Op::Xnor => (0..len).fold(Logic::Zero, |acc, k| acc.xor(read(k))).not(),
            Op::Mux2 => Logic::mux(read(0), read(1), read(2)),
        }
    }

    /// Fault-free evaluation of compiled gate `g` over `values`, without
    /// writing the result — the inner step of event-driven incremental
    /// good-machine updates (cone-clipped PODEM re-evaluates only the gates
    /// downstream of a changed assignment).
    #[inline]
    pub fn eval_gate_scalar(&self, g: usize, values: &[Logic]) -> Logic {
        let start = self.in_start[g] as usize;
        self.compute_gate(g, |k| values[self.pins[start + k] as usize])
    }

    /// The output-net index of compiled gate `g`.
    #[inline]
    pub fn gate_output(&self, g: usize) -> u32 {
        self.out[g]
    }

    /// Evaluates one compiled gate into `values`, honouring an injected
    /// stuck-at fault and the forced-net bitmap — the shared inner step of
    /// the full and cone-clipped scalar propagations.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn eval_gate(
        &self,
        g: usize,
        values: &mut [Logic],
        forced: &[bool],
        fault_cell: u32,
        fault_pin: u32,
        fault_value: Logic,
        fault_on_output: bool,
    ) {
        let start = self.in_start[g] as usize;
        let cell = self.gate_cell[g];
        let faulty_pin = if cell == fault_cell && !fault_on_output {
            fault_pin
        } else {
            NO_INDEX
        };
        let mut out_value = {
            let values = &*values;
            self.compute_gate(g, |k| {
                if k as u32 == faulty_pin {
                    fault_value
                } else {
                    values[self.pins[start + k] as usize]
                }
            })
        };
        if fault_on_output && cell == fault_cell {
            out_value = fault_value;
        }
        let out = self.out[g] as usize;
        if !forced[out] {
            values[out] = out_value;
        }
    }
}

/// Lowers an optional stuck-at fault into the dense fields the gate loops
/// branch on: `(cell arena index, pin index, stuck value, is-output-fault)`.
#[inline]
fn decompose_fault(fault: Option<StuckAt>) -> (u32, u32, Logic, bool) {
    match fault {
        Some(f) => match f.site {
            FaultSite::CellOutput { cell } => (
                cell.index() as u32,
                NO_INDEX,
                Logic::from_bool(f.value),
                true,
            ),
            FaultSite::CellInput { cell, pin } => (
                cell.index() as u32,
                u32::from(pin),
                Logic::from_bool(f.value),
                false,
            ),
        },
        None => (NO_INDEX, NO_INDEX, Logic::X, false),
    }
}

/// Reusable per-worker buffers for packed simulation: net values indexed by
/// `NetId::index()` and flop state indexed by flop-table position.
#[derive(Clone, Debug)]
pub struct PackedScratch {
    nets: Vec<u64>,
    state: Vec<u64>,
}

impl PackedScratch {
    /// Resets the sequential state to the all-zero reset value (net values
    /// need no reset: every driven net is rewritten each cycle and floating
    /// nets are never written, staying at their initial 0).
    pub fn reset(&mut self) {
        self.state.fill(0);
    }
}

/// Dense per-chunk fault-injection tables: one mask/stuck word per net and
/// per flat pin slot. Loading a chunk touches only the faulty entries and
/// remembers them, so re-loading is O(chunk), not O(design).
#[derive(Clone, Debug)]
pub struct PackedInjection {
    net_mask: Vec<u64>,
    net_stuck: Vec<u64>,
    pin_mask: Vec<u64>,
    pin_stuck: Vec<u64>,
    touched_nets: Vec<u32>,
    touched_pins: Vec<u32>,
    fault_bits: u64,
}

impl PackedInjection {
    /// Mask of bits carrying a fault (bit 0 — the good machine — excluded).
    pub fn fault_bits(&self) -> u64 {
        self.fault_bits
    }

    /// Loads a chunk of up to 63 faults, clearing the previous chunk first.
    /// Fault `i` of the chunk occupies bit `i + 1`; bit 0 stays the good
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if the chunk holds more than 63 faults.
    pub fn load(
        &mut self,
        program: &CompiledProgram,
        netlist: &Netlist,
        chunk: impl IntoIterator<Item = StuckAt>,
    ) {
        for &n in &self.touched_nets {
            self.net_mask[n as usize] = 0;
            self.net_stuck[n as usize] = 0;
        }
        for &s in &self.touched_pins {
            self.pin_mask[s as usize] = 0;
            self.pin_stuck[s as usize] = 0;
        }
        self.touched_nets.clear();
        self.touched_pins.clear();
        self.fault_bits = 0;

        for (i, fault) in chunk.into_iter().enumerate() {
            assert!(i < 63, "fault chunk exceeds 63 faults");
            let bit = 1u64 << (i + 1);
            self.fault_bits |= bit;
            let stuck = if fault.value { bit } else { 0 };
            match fault.site {
                FaultSite::CellOutput { cell } => {
                    if let Some(net) = netlist.output_net(cell) {
                        let n = net.index();
                        self.net_mask[n] |= bit;
                        self.net_stuck[n] |= stuck;
                        self.touched_nets.push(n as u32);
                    }
                }
                FaultSite::CellInput { cell, pin } => {
                    if let Some(slot) = program.pin_slot(netlist, cell, pin) {
                        self.pin_mask[slot] |= bit;
                        self.pin_stuck[slot] |= stuck;
                        self.touched_pins.push(slot as u32);
                    }
                }
            }
        }
    }
}

/// Input vectors bit-packed once per campaign: one bit per primary input per
/// cycle, in the program's dense primary-input order.
#[derive(Clone, Debug)]
pub struct PackedVectors {
    cycles: usize,
    words_per_cycle: usize,
    bits: Vec<u64>,
}

impl PackedVectors {
    /// Number of packed cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    #[inline]
    fn bit(&self, cycle: usize, pi: usize) -> bool {
        self.bits[cycle * self.words_per_cycle + pi / 64] >> (pi % 64) & 1 == 1
    }
}

/// Reusable scratch for [`CompiledProgram::propagate_scalar`]: a dense
/// forced-net bitmap plus the list of entries to clear afterwards. A
/// default-constructed scratch is sized lazily on first use.
#[derive(Clone, Debug, Default)]
pub struct SimScratch {
    forced: Vec<bool>,
    touched: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn vector(pairs: &[(NetId, bool)]) -> InputVector {
        pairs.iter().copied().collect()
    }

    #[test]
    fn compiles_gates_in_topological_order() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let z = b.not(y);
        b.output("z", z);
        let n = b.finish();
        let program = CompiledProgram::compile(&n).unwrap();
        assert_eq!(program.num_gates(), 2);
        assert_eq!(program.op, vec![Op::And, Op::Not]);
        assert_eq!(program.pi_nets.len(), 2);
    }

    #[test]
    fn packed_cycle_evaluates_gates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let program = CompiledProgram::compile(&n).unwrap();
        let packed = program.pack_vectors(&[
            vector(&[(a, true), (c, true)]),
            vector(&[(a, true), (c, false)]),
        ]);
        let injection = program.packed_injection();
        let mut scratch = program.packed_scratch();
        let po = n.primary_outputs()[0];
        program.run_cycle(&packed, 0, &injection, &mut scratch);
        assert_eq!(program.observe_output(&scratch, &injection, po) & 1, 1);
        program.run_cycle(&packed, 1, &injection, &mut scratch);
        assert_eq!(program.observe_output(&scratch, &injection, po) & 1, 0);
    }

    #[test]
    fn injection_reload_clears_previous_chunk() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.buf(a);
        b.output("y", y);
        let n = b.finish();
        let buf = n.driver_of(y).unwrap();
        let program = CompiledProgram::compile(&n).unwrap();
        let mut injection = program.packed_injection();
        injection.load(&program, &n, [StuckAt::output(buf, true)]);
        assert_eq!(injection.fault_bits(), 0b10);
        assert_eq!(injection.net_mask[y.index()], 0b10);
        injection.load(&program, &n, [StuckAt::input(buf, 0, false)]);
        assert_eq!(injection.net_mask[y.index()], 0, "stale override kept");
        let slot = program.pin_slot(&n, buf, 0).unwrap();
        assert_eq!(injection.pin_mask[slot], 0b10);
    }

    #[test]
    fn out_of_range_pin_fault_is_ignored() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.buf(a);
        b.output("y", y);
        let n = b.finish();
        let buf = n.driver_of(y).unwrap();
        let program = CompiledProgram::compile(&n).unwrap();
        assert_eq!(program.pin_slot(&n, buf, 7), None);
        let mut injection = program.packed_injection();
        injection.load(&program, &n, [StuckAt::input(buf, 7, true)]);
        assert!(injection.touched_pins.is_empty());
    }

    #[test]
    fn scalar_propagation_matches_logic_eval() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.xor2(a, c);
        b.output("y", y);
        let n = b.finish();
        let program = CompiledProgram::compile(&n).unwrap();
        let mut scratch = SimScratch::default();
        let mut values = vec![Logic::X; n.num_nets()];
        values[a.index()] = Logic::One;
        values[c.index()] = Logic::Zero;
        program.propagate_scalar(&n, &mut values, &HashMap::new(), None, &mut scratch);
        assert_eq!(values[y.index()], Logic::One);
    }
}
