//! Cooperative campaign budgets: wall-clock deadlines and cancellation for
//! the proof fan-out.
//!
//! A long identification campaign must be *boundable* and *interruptible*:
//! one runaway SAT cone or one hung search must turn into an
//! [`Aborted`](crate::podem::ProofOutcome::Aborted) verdict instead of
//! wedging the whole run. The engines never kill threads — they poll. A
//! [`Budget`] carries an optional shared [`CancelToken`], an optional
//! whole-stage deadline and an optional per-fault wall-clock limit; the
//! PODEM backtrack loop, the CDCL restart loop and the fault-simulation
//! chunk fan-out all check it at their natural backoff points, so
//! cancellation latency is bounded by one search step, never by one fault.
//!
//! Every abort records *why* it happened ([`AbortReason`]), which the
//! breakdown reporting and the checkpoint format both preserve: a
//! deterministic budget give-up (backtracks, conflicts) is a reproducible
//! fact about the fault and may be persisted, while a timeout or a panic is
//! an accident of the run and must be retried on resume.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a proof attempt concluded `Aborted` instead of producing a verdict.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The PODEM search exhausted its backtrack budget (deterministic).
    Backtracks,
    /// The SAT escalation exhausted its conflict budget (deterministic).
    Conflicts,
    /// A wall-clock limit expired or the campaign was cancelled — an
    /// accident of the run, retried on resume.
    Timeout,
    /// The engine panicked on this fault; the worker caught the panic and
    /// the campaign continued.
    Panicked,
    /// The SAT encoding declined the fault (outside its exactness
    /// preconditions, or the CNF exceeded the clause guard).
    Unsupported,
}

impl AbortReason {
    /// Stable lower-case name, used by the checkpoint format and reports.
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::Backtracks => "backtracks",
            AbortReason::Conflicts => "conflicts",
            AbortReason::Timeout => "timeout",
            AbortReason::Panicked => "panicked",
            AbortReason::Unsupported => "unsupported",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<AbortReason> {
        Some(match name {
            "backtracks" => AbortReason::Backtracks,
            "conflicts" => AbortReason::Conflicts,
            "timeout" => AbortReason::Timeout,
            "panicked" => AbortReason::Panicked,
            "unsupported" => AbortReason::Unsupported,
            _ => return None,
        })
    }

    /// Whether the abort is a deterministic, reproducible fact about the
    /// fault under the configured budgets (and may therefore be persisted in
    /// a checkpoint) rather than an accident of this particular run.
    pub fn is_deterministic(self) -> bool {
        matches!(
            self,
            AbortReason::Backtracks | AbortReason::Conflicts | AbortReason::Unsupported
        )
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A shared stop flag: cloning the token shares the flag, so one `cancel()`
/// stops every engine polling any clone.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    stop: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cooperative cancellation; every engine polling this token
    /// (or a clone of it) aborts at its next poll point.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// The raw shared flag — the form the dependency-free SAT core accepts
    /// as its interrupt hook.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }
}

/// Wall-clock and cancellation limits for one proof campaign. The default
/// is unlimited: no token, no deadline, no per-fault limit — exactly the
/// pre-robustness behaviour.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Cooperative stop flag shared with the caller (and, on request, with
    /// every engine poll point).
    pub cancel: Option<CancelToken>,
    /// Whole-stage deadline: faults not concluded by this instant come back
    /// [`AbortReason::Timeout`].
    pub deadline: Option<Instant>,
    /// Per-fault wall-clock limit, additionally capped by the stage
    /// deadline.
    pub fault_timeout: Option<Duration>,
}

impl Budget {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Attaches a cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the whole-stage deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the whole-stage deadline `timeout` from now.
    pub fn with_stage_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Sets the per-fault wall-clock limit.
    pub fn with_fault_timeout(mut self, timeout: Duration) -> Self {
        self.fault_timeout = Some(timeout);
        self
    }

    /// Whether this budget can never stop anything.
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none() && self.fault_timeout.is_none()
    }

    /// Whether the whole stage should stop now (cancelled or past the
    /// deadline).
    pub fn stage_stopped(&self) -> bool {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return true;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The wall-clock deadline for one fault whose proof starts at
    /// `started`: the per-fault limit capped by the stage deadline (`None`
    /// when neither is set).
    pub fn fault_deadline(&self, started: Instant) -> Option<Instant> {
        let per_fault = self.fault_timeout.map(|t| started + t);
        match (per_fault, self.deadline) {
            (Some(f), Some(s)) => Some(f.min(s)),
            (f, s) => f.or(s),
        }
    }
}

/// Deterministic failure injection for the proof fan-out — the test harness
/// behind the robustness regression suite. Indices refer to positions in the
/// fault slice handed to the campaign. Production callers leave this unset;
/// it exists so the isolation, deadline and checkpoint machinery can be
/// exercised without waiting for a real engine bug.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// Panic inside the worker when proving this fault (exercises
    /// `catch_unwind` isolation → [`AbortReason::Panicked`]).
    pub panic_on: Option<usize>,
    /// Busy-stall on this fault until a budget limit trips (exercises
    /// deadline enforcement → [`AbortReason::Timeout`]).
    pub stall_on: Option<usize>,
    /// Corrupt the SAT model extracted for this fault before the simulation
    /// replay (exercises graceful degradation: the replay check must reject
    /// the bogus test, never trust it).
    pub bogus_sat_model_on: Option<usize>,
}

impl FailurePlan {
    /// Whether the plan injects nothing (the default).
    pub fn is_empty(&self) -> bool {
        *self == FailurePlan::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(token.flag().load(Ordering::Relaxed));
    }

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        assert!(!budget.stage_stopped());
        assert_eq!(budget.fault_deadline(Instant::now()), None);
    }

    #[test]
    fn stage_deadline_and_cancel_both_stop_the_stage() {
        let expired = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(expired.stage_stopped());
        let token = CancelToken::new();
        let cancelled = Budget::unlimited().with_cancel(token.clone());
        assert!(!cancelled.stage_stopped());
        token.cancel();
        assert!(cancelled.stage_stopped());
    }

    #[test]
    fn fault_deadline_is_capped_by_the_stage_deadline() {
        let started = Instant::now();
        let stage = started + Duration::from_millis(10);
        let budget = Budget::unlimited()
            .with_deadline(stage)
            .with_fault_timeout(Duration::from_secs(60));
        assert_eq!(budget.fault_deadline(started), Some(stage));
        let loose = Budget::unlimited().with_fault_timeout(Duration::from_millis(5));
        assert_eq!(
            loose.fault_deadline(started),
            Some(started + Duration::from_millis(5))
        );
    }

    #[test]
    fn abort_reason_names_round_trip() {
        for reason in [
            AbortReason::Backtracks,
            AbortReason::Conflicts,
            AbortReason::Timeout,
            AbortReason::Panicked,
            AbortReason::Unsupported,
        ] {
            assert_eq!(AbortReason::from_name(reason.name()), Some(reason));
        }
        assert_eq!(AbortReason::from_name("nonsense"), None);
        assert!(AbortReason::Backtracks.is_deterministic());
        assert!(!AbortReason::Timeout.is_deterministic());
        assert!(!AbortReason::Panicked.is_deterministic());
    }
}
