//! Parallel-fault stuck-at fault simulation on the compiled engine.
//!
//! The simulator packs up to 63 faulty machines plus the good machine into
//! the bits of a `u64` per net and simulates them in lockstep over a sequence
//! of input vectors (one vector per clock cycle). A fault is *detected* when
//! the value observed at any primary output differs from the good machine in
//! the corresponding bit position.
//!
//! Two-valued logic is used: all flip-flops start at 0 (a deterministic reset
//! state) and every input vector must assign a definite value to every
//! primary input it mentions (unmentioned inputs default to 0). This is the
//! standard setting for evaluating SBST program coverage, where the processor
//! is reset before the test program runs.
//!
//! The heavy lifting happens in [`CompiledProgram`]: the netlist is lowered
//! once into a flat struct-of-arrays program, input vectors are bit-packed
//! once per campaign, fault injection is a dense per-chunk override table,
//! and every per-cycle buffer is reused — the hot path performs no hash-map
//! lookup and no allocation. Chunks of still-undetected faults are fanned out
//! across scoped worker threads, each with its own scratch.

use crate::compiled::{CompiledProgram, PackedInjection, PackedScratch, PackedVectors};
use faultmodel::{FaultClass, FaultList, StuckAt};
use netlist::{graph, CellId, Netlist};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One input vector: values applied to primary-input nets for one cycle.
pub type InputVector = HashMap<netlist::NetId, bool>;

/// Result of a fault-simulation campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSimOutcome {
    /// Number of faults newly marked detected.
    pub detected: usize,
    /// Number of faults simulated.
    pub simulated: usize,
}

/// Parallel-fault simulator over a fixed netlist.
#[derive(Debug)]
pub struct FaultSim<'a> {
    netlist: &'a Netlist,
    program: CompiledProgram,
    outputs: Vec<CellId>,
    cancel: Option<crate::budget::CancelToken>,
}

impl<'a> FaultSim<'a> {
    /// Builds the simulator (compiles the netlist into the flat program).
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic contains a cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, graph::CombinationalLoop> {
        Ok(FaultSim {
            netlist,
            program: CompiledProgram::compile(netlist)?,
            outputs: netlist.primary_outputs(),
            cancel: None,
        })
    }

    /// Installs (or clears) a cooperative cancel token polled before every
    /// 63-fault chunk. Chunks skipped after cancellation report *no*
    /// detections — the safe direction: an undetected fault stays in the
    /// population for the next (resumed) campaign, it is never classified on
    /// a simulation that did not run.
    pub fn set_cancel(&mut self, cancel: Option<crate::budget::CancelToken>) {
        self.cancel = cancel;
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(crate::budget::CancelToken::is_cancelled)
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Simulates `vectors` (one per cycle, starting from the all-zero reset
    /// state) against every fault in `faults` and returns, for each fault,
    /// whether it was detected at any primary output.
    pub fn detect(&self, faults: &[StuckAt], vectors: &[InputVector]) -> Vec<bool> {
        self.detect_at(faults, vectors, &self.outputs)
    }

    /// Like [`detect`](Self::detect), but only the given `Output` pseudo-cells
    /// count as observation points — the way an on-line functional test only
    /// observes the system bus, not the scan-out or debug-observation ports.
    pub fn detect_at(
        &self,
        faults: &[StuckAt],
        vectors: &[InputVector],
        observed_outputs: &[CellId],
    ) -> Vec<bool> {
        self.detect_batches(faults, &[vectors], observed_outputs)
    }

    /// Grades `faults` against several vector batches (e.g. one SBST program
    /// per batch, each restarting from the reset state). Faults detected by
    /// an earlier batch are dropped from the later batches' simulations, so a
    /// mature suite grades far fewer fault-machines than `batches × faults`.
    pub fn detect_batches(
        &self,
        faults: &[StuckAt],
        batches: &[&[InputVector]],
        observed_outputs: &[CellId],
    ) -> Vec<bool> {
        let mut detected = vec![false; faults.len()];
        for &batch in batches {
            let remaining: Vec<u32> = (0..faults.len() as u32)
                .filter(|&i| !detected[i as usize])
                .collect();
            if remaining.is_empty() {
                break;
            }
            let packed = self.program.pack_vectors(batch);
            let masks = self.simulate_chunks(&remaining, faults, &packed, observed_outputs);
            for (chunk, mask) in remaining.chunks(63).zip(masks) {
                for (bit, &fault_index) in chunk.iter().enumerate() {
                    if mask & (1u64 << (bit + 1)) != 0 {
                        detected[fault_index as usize] = true;
                    }
                }
            }
        }
        detected
    }

    /// Runs [`detect`](Self::detect) over every still-undetected fault in the
    /// list and marks the detected ones as [`FaultClass::Detected`].
    pub fn run_and_classify(
        &self,
        faults: &mut FaultList,
        vectors: &[InputVector],
    ) -> FaultSimOutcome {
        self.run_batches_and_classify(faults, &[vectors], &self.outputs)
    }

    /// Batch-aware [`run_and_classify`](Self::run_and_classify): grades the
    /// still-undetected faults against every batch in turn (dropping freshly
    /// detected faults between batches) while observing only the given
    /// outputs.
    pub fn run_batches_and_classify(
        &self,
        faults: &mut FaultList,
        batches: &[&[InputVector]],
        observed_outputs: &[CellId],
    ) -> FaultSimOutcome {
        let (indices, targets): (Vec<usize>, Vec<StuckAt>) = faults.undetected().unzip();
        let detected = self.detect_batches(&targets, batches, observed_outputs);
        let mut outcome = FaultSimOutcome {
            simulated: targets.len(),
            detected: 0,
        };
        for (index, hit) in indices.into_iter().zip(detected) {
            if hit {
                faults.classify_at(index, FaultClass::Detected);
                outcome.detected += 1;
            }
        }
        outcome
    }

    /// Simulates the good machine only and returns the per-cycle values of
    /// the primary outputs (useful for building expected responses).
    pub fn good_responses(&self, vectors: &[InputVector]) -> Vec<Vec<bool>> {
        let packed = self.program.pack_vectors(vectors);
        let injection = self.program.packed_injection();
        let mut scratch = self.program.packed_scratch();
        let mut responses = Vec::with_capacity(vectors.len());
        for cycle in 0..packed.cycles() {
            self.program
                .run_cycle(&packed, cycle, &injection, &mut scratch);
            responses.push(
                self.outputs
                    .iter()
                    .map(|&po| self.program.observe_output(&scratch, &injection, po) & 1 == 1)
                    .collect(),
            );
        }
        responses
    }

    /// Simulates every 63-fault chunk of `remaining` (indices into `faults`)
    /// and returns one detection mask per chunk, fanning the chunks out
    /// across scoped worker threads when the machine and the workload allow.
    fn simulate_chunks(
        &self,
        remaining: &[u32],
        faults: &[StuckAt],
        packed: &PackedVectors,
        observed_outputs: &[CellId],
    ) -> Vec<u64> {
        let chunks: Vec<&[u32]> = remaining.chunks(63).collect();
        // Spawning workers costs thread setup plus one scratch + injection
        // table each; only fan out when the campaign amortises that.
        const MIN_PARALLEL_GATE_EVALS: usize = 4_000_000;
        let work = chunks.len() * packed.cycles() * self.program.num_gates().max(1);
        let workers = if work < MIN_PARALLEL_GATE_EVALS {
            1
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(chunks.len())
        };
        if workers <= 1 {
            let mut scratch = self.program.packed_scratch();
            let mut injection = self.program.packed_injection();
            return chunks
                .iter()
                .map(|chunk| {
                    if self.cancelled() {
                        return 0;
                    }
                    self.simulate_chunk(
                        chunk,
                        faults,
                        packed,
                        observed_outputs,
                        &mut scratch,
                        &mut injection,
                    )
                })
                .collect();
        }
        let results: Vec<AtomicU64> = (0..chunks.len()).map(|_| AtomicU64::new(0)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = self.program.packed_scratch();
                    let mut injection = self.program.packed_injection();
                    loop {
                        if self.cancelled() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&chunk) = chunks.get(i) else { break };
                        let mask = self.simulate_chunk(
                            chunk,
                            faults,
                            packed,
                            observed_outputs,
                            &mut scratch,
                            &mut injection,
                        );
                        results[i].store(mask, Ordering::Relaxed);
                    }
                });
            }
        });
        results.into_iter().map(AtomicU64::into_inner).collect()
    }

    fn simulate_chunk(
        &self,
        chunk: &[u32],
        faults: &[StuckAt],
        packed: &PackedVectors,
        observed_outputs: &[CellId],
        scratch: &mut PackedScratch,
        injection: &mut PackedInjection,
    ) -> u64 {
        injection.load(
            &self.program,
            self.netlist,
            chunk.iter().map(|&i| faults[i as usize]),
        );
        scratch.reset();
        let mut detected = 0u64;
        for cycle in 0..packed.cycles() {
            self.program.run_cycle(packed, cycle, injection, scratch);
            for &po in observed_outputs {
                let observed = self.program.observe_output(scratch, injection, po);
                let good = if observed & 1 == 1 { !0u64 } else { 0u64 };
                detected |= (observed ^ good) & injection.fault_bits();
            }
            if detected == injection.fault_bits() && !chunk.is_empty() {
                break;
            }
        }
        detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{CellKind, NetId, NetlistBuilder};

    fn vector(pairs: &[(NetId, bool)]) -> InputVector {
        pairs.iter().copied().collect()
    }

    #[test]
    fn detects_combinational_faults_with_exhaustive_patterns() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let z = b.xor2(y, a);
        b.output("z", z);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let vectors: Vec<InputVector> = (0..4)
            .map(|p| vector(&[(a, p & 1 == 1), (c, p & 2 == 2)]))
            .collect();
        let mut faults = FaultList::full_universe(&n);
        let outcome = sim.run_and_classify(&mut faults, &vectors);
        assert_eq!(outcome.simulated, faults.len());
        // With exhaustive patterns every testable fault of this tiny circuit
        // is found; coverage should be high (>70 %).
        assert!(outcome.detected * 10 >= faults.len() * 7, "{outcome:?}");
        // And the AND output stuck-at-0 must definitely be among them.
        let and = n.driver_of(y).unwrap();
        assert_eq!(
            faults.class_of(StuckAt::output(and, false)),
            Some(FaultClass::Detected)
        );
    }

    #[test]
    fn undetectable_fault_stays_undetected() {
        // y = a OR (a AND b): the AND output stuck-at-0 is undetectable
        // (redundant logic).
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let sim = FaultSim::new(&n).unwrap();
        let vectors: Vec<InputVector> = (0..4)
            .map(|p| vector(&[(a, p & 1 == 1), (c, p & 2 == 2)]))
            .collect();
        let detected = sim.detect(&[StuckAt::output(and, false)], &vectors);
        assert_eq!(detected, vec![false]);
    }

    #[test]
    fn sequential_fault_detection_through_state() {
        // A 1-bit toggle register: q' = q XOR en. A stuck-at on the XOR is
        // only observable after a clock cycle.
        let mut b = NetlistBuilder::new("tog");
        let en = b.input("en");
        let ck = b.input("ck");
        let d = b.netlist_mut().add_net("d");
        let q = b.dff(d, ck);
        let x = b.xor2(q, en);
        b.netlist_mut().add_cell(CellKind::Buf, "fb", &[x], Some(d));
        b.output("q", q);
        let n = b.finish();
        let xor = n.driver_of(x).unwrap();
        let sim = FaultSim::new(&n).unwrap();
        let vectors: Vec<InputVector> = (0..4).map(|_| vector(&[(en, true), (ck, true)])).collect();
        let faults = [StuckAt::output(xor, false), StuckAt::input(xor, 1, false)];
        let detected = sim.detect(&faults, &vectors);
        assert_eq!(detected, vec![true, true]);
    }

    #[test]
    fn more_than_63_faults_use_multiple_chunks() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let x = b.xor_word(&a, &c);
        b.output_bus("y", &x);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let mut faults = FaultList::full_universe(&n);
        assert!(faults.len() > 63);
        let mut rng_patterns = Vec::new();
        for p in 0..16u64 {
            let mut v = InputVector::new();
            for (i, &net) in a.iter().enumerate() {
                v.insert(net, (p >> i) & 1 == 1);
            }
            for (i, &net) in c.iter().enumerate() {
                v.insert(net, (p.wrapping_mul(7) >> i) & 1 == 1);
            }
            rng_patterns.push(v);
        }
        let outcome = sim.run_and_classify(&mut faults, &rng_patterns);
        // XOR trees are highly testable; expect most faults detected.
        assert!(outcome.detected > faults.len() / 2);
    }

    #[test]
    fn good_responses_match_expected_logic() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let vectors = vec![
            vector(&[(a, true), (c, true)]),
            vector(&[(a, true), (c, false)]),
        ];
        let responses = sim.good_responses(&vectors);
        assert_eq!(responses, vec![vec![true], vec![false]]);
    }

    #[test]
    fn detect_at_restricts_observation_points() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y1 = b.not(a);
        let y2 = b.buf(a);
        b.output("bus", y1);
        b.output("debug_only", y2);
        let n = b.finish();
        let bus = n
            .primary_outputs()
            .into_iter()
            .find(|&po| n.cell(po).name() == "bus")
            .unwrap();
        let buf = n.driver_of(y2).unwrap();
        let sim = FaultSim::new(&n).unwrap();
        let vectors = vec![vector(&[(a, true)]), vector(&[(a, false)])];
        let fault = StuckAt::output(buf, false);
        // Observable at the debug output…
        assert_eq!(sim.detect(&[fault], &vectors), vec![true]);
        // …but not when only the bus output counts.
        assert_eq!(sim.detect_at(&[fault], &vectors, &[bus]), vec![false]);
    }

    #[test]
    fn po_pin_fault_is_detected() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish();
        let po = n.primary_outputs()[0];
        let sim = FaultSim::new(&n).unwrap();
        let vectors = vec![vector(&[(a, true)]), vector(&[(a, false)])];
        let detected = sim.detect(
            &[StuckAt::input(po, 0, false), StuckAt::input(po, 0, true)],
            &vectors,
        );
        assert_eq!(detected, vec![true, true]);
    }

    #[test]
    fn batches_drop_detected_faults_and_agree_with_single_passes() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let z = b.or2(a, c);
        b.output("y", y);
        b.output("z", z);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let faults = FaultList::full_universe(&n).faults().to_vec();
        let batch1 = vec![vector(&[(a, true), (c, true)])];
        let batch2 = vec![
            vector(&[(a, false), (c, true)]),
            vector(&[(a, true), (c, false)]),
        ];
        let combined = sim.detect_batches(&faults, &[&batch1, &batch2], &n.primary_outputs());
        let first = sim.detect(&faults, &batch1);
        let second = sim.detect(&faults, &batch2);
        for i in 0..faults.len() {
            assert_eq!(combined[i], first[i] || second[i], "fault {:?}", faults[i]);
        }
    }

    #[test]
    fn run_batches_and_classify_counts_each_fault_once() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let mut faults = FaultList::full_universe(&n);
        let batch1 = vec![vector(&[(a, true)])];
        let batch2 = vec![vector(&[(a, false)])];
        let outcome =
            sim.run_batches_and_classify(&mut faults, &[&batch1, &batch2], &n.primary_outputs());
        assert_eq!(outcome.simulated, faults.len());
        assert_eq!(outcome.detected, faults.counts().detected);
        // Exhaustive single-input patterns detect everything on a BUF/NOT path.
        assert_eq!(outcome.detected, faults.len());
    }
}
