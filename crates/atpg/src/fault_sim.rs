//! Parallel-fault stuck-at fault simulation.
//!
//! The simulator packs up to 63 faulty machines plus the good machine into
//! the bits of a `u64` per net and simulates them in lockstep over a sequence
//! of input vectors (one vector per clock cycle). A fault is *detected* when
//! the value observed at any primary output differs from the good machine in
//! the corresponding bit position.
//!
//! Two-valued logic is used: all flip-flops start at 0 (a deterministic reset
//! state) and every input vector must assign a definite value to every
//! primary input it mentions (unmentioned inputs default to 0). This is the
//! standard setting for evaluating SBST program coverage, where the processor
//! is reset before the test program runs.

use faultmodel::{FaultClass, FaultList, FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist, PinIndex, Reset};
use std::collections::HashMap;

/// One input vector: values applied to primary-input nets for one cycle.
pub type InputVector = HashMap<NetId, bool>;

/// Result of a fault-simulation campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSimOutcome {
    /// Number of faults newly marked detected.
    pub detected: usize,
    /// Number of faults simulated.
    pub simulated: usize,
}

/// Parallel-fault simulator over a fixed netlist.
#[derive(Debug)]
pub struct FaultSim<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    flops: Vec<CellId>,
    outputs: Vec<CellId>,
}

struct ChunkInjection {
    /// Output-pin overrides per net: (mask, stuck bits).
    net_overrides: HashMap<NetId, Vec<(u64, u64)>>,
    /// Input-pin overrides per cell: (pin, mask, stuck bits).
    pin_overrides: HashMap<CellId, Vec<(PinIndex, u64, u64)>>,
    /// Mask of bits that carry a fault (bit 0 — the good machine — excluded).
    fault_bits: u64,
}

impl ChunkInjection {
    fn new(netlist: &Netlist, chunk: &[StuckAt]) -> Self {
        let mut net_overrides: HashMap<NetId, Vec<(u64, u64)>> = HashMap::new();
        let mut pin_overrides: HashMap<CellId, Vec<(PinIndex, u64, u64)>> = HashMap::new();
        let mut fault_bits = 0u64;
        for (i, fault) in chunk.iter().enumerate() {
            let bit = 1u64 << (i + 1);
            fault_bits |= bit;
            let stuck = if fault.value { bit } else { 0 };
            match fault.site {
                FaultSite::CellOutput { cell } => {
                    if let Some(net) = netlist.output_net(cell) {
                        net_overrides.entry(net).or_default().push((bit, stuck));
                    }
                }
                FaultSite::CellInput { cell, pin } => {
                    pin_overrides
                        .entry(cell)
                        .or_default()
                        .push((pin, bit, stuck));
                }
            }
        }
        ChunkInjection {
            net_overrides,
            pin_overrides,
            fault_bits,
        }
    }

    #[inline]
    fn apply_net(&self, net: NetId, value: u64) -> u64 {
        match self.net_overrides.get(&net) {
            None => value,
            Some(overrides) => {
                let mut v = value;
                for &(mask, stuck) in overrides {
                    v = (v & !mask) | stuck;
                }
                v
            }
        }
    }

    #[inline]
    fn apply_pin(&self, cell: CellId, pin: PinIndex, value: u64) -> u64 {
        match self.pin_overrides.get(&cell) {
            None => value,
            Some(overrides) => {
                let mut v = value;
                for &(p, mask, stuck) in overrides {
                    if p == pin {
                        v = (v & !mask) | stuck;
                    }
                }
                v
            }
        }
    }
}

fn eval_packed(kind: CellKind, inputs: &[u64]) -> u64 {
    match kind {
        CellKind::Tie0 => 0,
        CellKind::Tie1 => !0,
        CellKind::Buf => inputs[0],
        CellKind::Not => !inputs[0],
        CellKind::And(_) => inputs.iter().fold(!0u64, |acc, &v| acc & v),
        CellKind::Nand(_) => !inputs.iter().fold(!0u64, |acc, &v| acc & v),
        CellKind::Or(_) => inputs.iter().fold(0u64, |acc, &v| acc | v),
        CellKind::Nor(_) => !inputs.iter().fold(0u64, |acc, &v| acc | v),
        CellKind::Xor(_) => inputs.iter().fold(0u64, |acc, &v| acc ^ v),
        CellKind::Xnor(_) => !inputs.iter().fold(0u64, |acc, &v| acc ^ v),
        CellKind::Mux2 => (inputs[0] & !inputs[2]) | (inputs[1] & inputs[2]),
        CellKind::Input | CellKind::Output | CellKind::Dff { .. } | CellKind::Sdff { .. } => 0,
    }
}

impl<'a> FaultSim<'a> {
    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic contains a cycle.
    pub fn new(netlist: &'a Netlist) -> Result<Self, graph::CombinationalLoop> {
        let lev = graph::levelize(netlist)?;
        Ok(FaultSim {
            netlist,
            order: lev.order,
            flops: netlist.sequential_cells(),
            outputs: netlist.primary_outputs(),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Simulates `vectors` (one per cycle, starting from the all-zero reset
    /// state) against every fault in `faults` and returns, for each fault,
    /// whether it was detected at any primary output.
    pub fn detect(&self, faults: &[StuckAt], vectors: &[InputVector]) -> Vec<bool> {
        self.detect_at(faults, vectors, &self.outputs)
    }

    /// Like [`detect`](Self::detect), but only the given `Output` pseudo-cells
    /// count as observation points — the way an on-line functional test only
    /// observes the system bus, not the scan-out or debug-observation ports.
    pub fn detect_at(
        &self,
        faults: &[StuckAt],
        vectors: &[InputVector],
        observed_outputs: &[CellId],
    ) -> Vec<bool> {
        let mut detected = vec![false; faults.len()];
        for (chunk_index, chunk) in faults.chunks(63).enumerate() {
            let mask = self.simulate_chunk(chunk, vectors, observed_outputs);
            for (i, _) in chunk.iter().enumerate() {
                if mask & (1u64 << (i + 1)) != 0 {
                    detected[chunk_index * 63 + i] = true;
                }
            }
        }
        detected
    }

    /// Runs [`detect`](Self::detect) over every still-undetected fault in the
    /// list and marks the detected ones as [`FaultClass::Detected`].
    pub fn run_and_classify(
        &self,
        faults: &mut FaultList,
        vectors: &[InputVector],
    ) -> FaultSimOutcome {
        let targets: Vec<StuckAt> = faults
            .iter()
            .filter(|&(_, c)| c == FaultClass::Undetected)
            .map(|(f, _)| f)
            .collect();
        let detected = self.detect(&targets, vectors);
        let mut outcome = FaultSimOutcome {
            simulated: targets.len(),
            detected: 0,
        };
        for (fault, hit) in targets.into_iter().zip(detected) {
            if hit {
                faults.classify(fault, FaultClass::Detected);
                outcome.detected += 1;
            }
        }
        outcome
    }

    /// Simulates the good machine only and returns the per-cycle values of
    /// the primary outputs (useful for building expected responses).
    pub fn good_responses(&self, vectors: &[InputVector]) -> Vec<Vec<bool>> {
        let chunk: [StuckAt; 0] = [];
        let injection = ChunkInjection::new(self.netlist, &chunk);
        let mut state: HashMap<CellId, u64> = self.flops.iter().map(|&f| (f, 0u64)).collect();
        let mut responses = Vec::with_capacity(vectors.len());
        for vector in vectors {
            let values = self.simulate_cycle(vector, &mut state, &injection);
            responses.push(
                self.outputs
                    .iter()
                    .map(|&po| {
                        let net = self.netlist.cell(po).inputs()[0];
                        values[net.index()] & 1 == 1
                    })
                    .collect(),
            );
        }
        responses
    }

    fn simulate_chunk(
        &self,
        chunk: &[StuckAt],
        vectors: &[InputVector],
        observed_outputs: &[CellId],
    ) -> u64 {
        let injection = ChunkInjection::new(self.netlist, chunk);
        let mut state: HashMap<CellId, u64> = self.flops.iter().map(|&f| (f, 0u64)).collect();
        let mut detected = 0u64;
        for vector in vectors {
            let values = self.simulate_cycle(vector, &mut state, &injection);
            // Observe primary outputs.
            for &po in observed_outputs {
                let net = self.netlist.cell(po).inputs()[0];
                let mut observed = values[net.index()];
                observed = injection.apply_pin(po, 0, observed);
                let good = if observed & 1 == 1 { !0u64 } else { 0u64 };
                detected |= (observed ^ good) & injection.fault_bits;
            }
            if detected == injection.fault_bits && !chunk.is_empty() {
                break;
            }
        }
        detected
    }

    fn simulate_cycle(
        &self,
        vector: &InputVector,
        state: &mut HashMap<CellId, u64>,
        injection: &ChunkInjection,
    ) -> Vec<u64> {
        let n = self.netlist;
        let mut values = vec![0u64; n.num_nets()];
        // Sources: primary inputs, ties, flip-flop outputs.
        for (id, cell) in n.live_cells() {
            let Some(out) = cell.output() else { continue };
            let value = match cell.kind() {
                CellKind::Input => {
                    let name_net = out;
                    let bit = vector.get(&name_net).copied().unwrap_or(false);
                    if bit {
                        !0u64
                    } else {
                        0u64
                    }
                }
                CellKind::Tie0 => 0u64,
                CellKind::Tie1 => !0u64,
                CellKind::Dff { .. } | CellKind::Sdff { .. } => state[&id],
                _ => continue,
            };
            values[out.index()] = injection.apply_net(out, value);
        }
        // Combinational propagation in topological order.
        let mut input_buffer: Vec<u64> = Vec::with_capacity(8);
        for &cell_id in &self.order {
            let cell = n.cell(cell_id);
            input_buffer.clear();
            for (pin, &net) in cell.inputs().iter().enumerate() {
                let v = injection.apply_pin(cell_id, pin as PinIndex, values[net.index()]);
                input_buffer.push(v);
            }
            let mut out_value = eval_packed(cell.kind(), &input_buffer);
            if let Some(out) = cell.output() {
                out_value = injection.apply_net(out, out_value);
                values[out.index()] = out_value;
            }
        }
        // Next state.
        let mut next: Vec<(CellId, u64)> = Vec::with_capacity(self.flops.len());
        for &ff in &self.flops {
            let cell = n.cell(ff);
            let kind = cell.kind();
            let read = |pin: PinIndex| -> u64 {
                injection.apply_pin(ff, pin, values[cell.inputs()[pin as usize].index()])
            };
            let mut data = match kind {
                CellKind::Sdff { .. } => {
                    let d = read(0);
                    let si = read(1);
                    let se = read(2);
                    (d & !se) | (si & se)
                }
                _ => read(0),
            };
            if let (Some(reset), Some(rst_pin)) = (kind.reset(), kind.reset_pin()) {
                let rst = read(rst_pin);
                let active = match reset {
                    Reset::ActiveLow => !rst,
                    Reset::ActiveHigh => rst,
                };
                data &= !active;
            }
            // A stuck output pin also pins the stored state.
            if let Some(out) = cell.output() {
                data = injection.apply_net(out, data);
            }
            next.push((ff, data));
        }
        for (ff, v) in next {
            state.insert(ff, v);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn vector(pairs: &[(NetId, bool)]) -> InputVector {
        pairs.iter().copied().collect()
    }

    #[test]
    fn detects_combinational_faults_with_exhaustive_patterns() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let z = b.xor2(y, a);
        b.output("z", z);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let vectors: Vec<InputVector> = (0..4)
            .map(|p| vector(&[(a, p & 1 == 1), (c, p & 2 == 2)]))
            .collect();
        let mut faults = FaultList::full_universe(&n);
        let outcome = sim.run_and_classify(&mut faults, &vectors);
        assert_eq!(outcome.simulated, faults.len());
        // With exhaustive patterns every testable fault of this tiny circuit
        // is found; coverage should be high (>70 %).
        assert!(outcome.detected * 10 >= faults.len() * 7, "{outcome:?}");
        // And the AND output stuck-at-0 must definitely be among them.
        let and = n.driver_of(y).unwrap();
        assert_eq!(
            faults.class_of(StuckAt::output(and, false)),
            Some(FaultClass::Detected)
        );
    }

    #[test]
    fn undetectable_fault_stays_undetected() {
        // y = a OR (a AND b): the AND output stuck-at-0 is undetectable
        // (redundant logic).
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let sim = FaultSim::new(&n).unwrap();
        let vectors: Vec<InputVector> = (0..4)
            .map(|p| vector(&[(a, p & 1 == 1), (c, p & 2 == 2)]))
            .collect();
        let detected = sim.detect(&[StuckAt::output(and, false)], &vectors);
        assert_eq!(detected, vec![false]);
    }

    #[test]
    fn sequential_fault_detection_through_state() {
        // A 1-bit toggle register: q' = q XOR en. A stuck-at on the XOR is
        // only observable after a clock cycle.
        let mut b = NetlistBuilder::new("tog");
        let en = b.input("en");
        let ck = b.input("ck");
        let d = b.netlist_mut().add_net("d");
        let q = b.dff(d, ck);
        let x = b.xor2(q, en);
        b.netlist_mut().add_cell(CellKind::Buf, "fb", &[x], Some(d));
        b.output("q", q);
        let n = b.finish();
        let xor = n.driver_of(x).unwrap();
        let sim = FaultSim::new(&n).unwrap();
        let vectors: Vec<InputVector> = (0..4).map(|_| vector(&[(en, true), (ck, true)])).collect();
        let faults = [StuckAt::output(xor, false), StuckAt::input(xor, 1, false)];
        let detected = sim.detect(&faults, &vectors);
        assert_eq!(detected, vec![true, true]);
    }

    #[test]
    fn more_than_63_faults_use_multiple_chunks() {
        let mut b = NetlistBuilder::new("wide");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let x = b.xor_word(&a, &c);
        b.output_bus("y", &x);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let mut faults = FaultList::full_universe(&n);
        assert!(faults.len() > 63);
        let mut rng_patterns = Vec::new();
        for p in 0..16u64 {
            let mut v = InputVector::new();
            for (i, &net) in a.iter().enumerate() {
                v.insert(net, (p >> i) & 1 == 1);
            }
            for (i, &net) in c.iter().enumerate() {
                v.insert(net, (p.wrapping_mul(7) >> i) & 1 == 1);
            }
            rng_patterns.push(v);
        }
        let outcome = sim.run_and_classify(&mut faults, &rng_patterns);
        // XOR trees are highly testable; expect most faults detected.
        assert!(outcome.detected > faults.len() / 2);
    }

    #[test]
    fn good_responses_match_expected_logic() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSim::new(&n).unwrap();
        let vectors = vec![
            vector(&[(a, true), (c, true)]),
            vector(&[(a, true), (c, false)]),
        ];
        let responses = sim.good_responses(&vectors);
        assert_eq!(responses, vec![vec![true], vec![false]]);
    }

    #[test]
    fn detect_at_restricts_observation_points() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y1 = b.not(a);
        let y2 = b.buf(a);
        b.output("bus", y1);
        b.output("debug_only", y2);
        let n = b.finish();
        let bus = n
            .primary_outputs()
            .into_iter()
            .find(|&po| n.cell(po).name() == "bus")
            .unwrap();
        let buf = n.driver_of(y2).unwrap();
        let sim = FaultSim::new(&n).unwrap();
        let vectors = vec![vector(&[(a, true)]), vector(&[(a, false)])];
        let fault = StuckAt::output(buf, false);
        // Observable at the debug output…
        assert_eq!(sim.detect(&[fault], &vectors), vec![true]);
        // …but not when only the bus output counts.
        assert_eq!(sim.detect_at(&[fault], &vectors, &[bus]), vec![false]);
    }

    #[test]
    fn po_pin_fault_is_detected() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish();
        let po = n.primary_outputs()[0];
        let sim = FaultSim::new(&n).unwrap();
        let vectors = vec![vector(&[(a, true)]), vector(&[(a, false)])];
        let detected = sim.detect(
            &[StuckAt::input(po, 0, false), StuckAt::input(po, 0, true)],
            &vectors,
        );
        assert_eq!(detected, vec![true, true]);
    }
}
