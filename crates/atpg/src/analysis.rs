//! Structural untestability analysis — the workspace's substitute for the
//! commercial tool (Synopsys TetraMAX) used in the paper.
//!
//! Given a netlist and a [`ConstraintSet`] describing the mission-mode
//! environment (tied nets, masked observation outputs), the analysis
//! classifies every still-unclassified stuck-at fault as:
//!
//! * [`FaultClass::Tied`] — unexcitable because the fault site carries a
//!   constant equal to the stuck value ("UT — untestable due to tied value"),
//! * [`FaultClass::Blocked`] — excitable but with every propagation path
//!   blocked by constant side inputs,
//! * [`FaultClass::Unused`] — sitting on logic with no path to any
//!   observation point at all (e.g. cones feeding only masked debug outputs),
//! * [`FaultClass::Redundant`] — proven untestable by the optional PODEM
//!   redundancy proof,
//! * or left [`FaultClass::Undetected`] (potentially testable).
//!
//! The classification is *conservative*: a fault is only moved to an
//! untestable class when the structural argument is airtight under the given
//! constraints.

use crate::constant::{propagate_constants, ConstantValues, ConstraintSet};
use crate::logic::Logic;
use crate::podem::{Podem, PodemConfig, PodemOutcome};
use faultmodel::{FaultClass, FaultList, FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a [`StructuralAnalysis`] run.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// The mission-mode constraints (tied nets, masked outputs, scan
    /// assumptions).
    pub constraints: ConstraintSet,
    /// Additionally run a PODEM redundancy proof on faults that the fast
    /// structural pass leaves unclassified. Much slower; off by default.
    pub prove_redundancy: bool,
    /// PODEM backtrack limit per fault when `prove_redundancy` is on.
    pub podem_backtrack_limit: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            constraints: ConstraintSet::full_scan(),
            prove_redundancy: false,
            podem_backtrack_limit: 2_000,
        }
    }
}

/// Summary statistics of one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// Faults examined (those still undetected on entry).
    pub examined: usize,
    /// Newly classified as tied (UT).
    pub tied: usize,
    /// Newly classified as blocked (UB).
    pub blocked: usize,
    /// Newly classified as unused (UU).
    pub unused: usize,
    /// Newly classified as redundant (UR) by PODEM.
    pub redundant: usize,
}

impl AnalysisOutcome {
    /// Total number of faults newly classified untestable.
    pub fn total_untestable(&self) -> usize {
        self.tied + self.blocked + self.unused + self.redundant
    }
}

/// Per-net observability and per-pin propagation information computed by the
/// structural analysis.
#[derive(Clone, Debug)]
pub struct Observability {
    net_observable: Vec<bool>,
}

impl Observability {
    /// Whether a difference on `net` can structurally reach an observation
    /// point under the constraints.
    pub fn net_observable(&self, net: NetId) -> bool {
        self.net_observable[net.index()]
    }
}

/// The structural untestability analysis engine.
#[derive(Debug)]
pub struct StructuralAnalysis {
    config: AnalysisConfig,
}

impl StructuralAnalysis {
    /// Creates an analysis with the given configuration.
    pub fn new(config: AnalysisConfig) -> Self {
        StructuralAnalysis { config }
    }

    /// Creates an analysis with default full-scan constraints.
    pub fn with_constraints(constraints: ConstraintSet) -> Self {
        StructuralAnalysis {
            config: AnalysisConfig {
                constraints,
                ..AnalysisConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Runs constant propagation only and returns the values.
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the combinational logic is cyclic.
    pub fn constants(&self, netlist: &Netlist) -> Result<ConstantValues, graph::CombinationalLoop> {
        propagate_constants(netlist, &self.config.constraints)
    }

    /// Computes net observability under the constraints.
    pub fn observability(&self, netlist: &Netlist, constants: &ConstantValues) -> Observability {
        let constraints = &self.config.constraints;
        let mut net_observable = vec![false; netlist.num_nets()];
        let mut queue: VecDeque<NetId> = VecDeque::new();

        let mark = |net: NetId, net_observable: &mut Vec<bool>, queue: &mut VecDeque<NetId>| {
            if !net_observable[net.index()] {
                net_observable[net.index()] = true;
                queue.push_back(net);
            }
        };

        // Observation points: unmasked primary outputs and (under the
        // full-scan assumption) every flip-flop input pin.
        for po in netlist.primary_outputs() {
            if constraints.masked_outputs.contains(&po) {
                continue;
            }
            let net = netlist.cell(po).inputs()[0];
            mark(net, &mut net_observable, &mut queue);
        }
        if constraints.observe_ff_inputs {
            for ff in netlist.sequential_cells() {
                for &net in netlist.cell(ff).inputs() {
                    mark(net, &mut net_observable, &mut queue);
                }
            }
        }

        // Backward propagation: if a gate's output is observable, each input
        // pin whose effect can pass the gate marks its net observable.
        while let Some(net) = queue.pop_front() {
            let Some(driver) = netlist.driver_of(net) else {
                continue;
            };
            let cell = netlist.cell(driver);
            if cell.is_dead() || !cell.kind().is_combinational() {
                continue;
            }
            for pin in 0..cell.inputs().len() {
                if pin_propagates(netlist, constants, driver, pin) {
                    let in_net = cell.inputs()[pin];
                    mark(in_net, &mut net_observable, &mut queue);
                }
            }
        }

        Observability { net_observable }
    }

    /// Runs the full analysis, classifying every still-undetected fault in
    /// `faults`. Returns summary statistics.
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the combinational logic is cyclic.
    pub fn run(
        &self,
        netlist: &Netlist,
        faults: &mut FaultList,
    ) -> Result<AnalysisOutcome, graph::CombinationalLoop> {
        let constants = self.constants(netlist)?;
        let observability = self.observability(netlist, &constants);
        let mut outcome = AnalysisOutcome::default();

        let targets: Vec<StuckAt> = faults.undetected().map(|(_, f)| f).collect();
        outcome.examined = targets.len();

        let mut podem_candidates: Vec<StuckAt> = Vec::new();

        for fault in targets {
            match classify_fault(
                netlist,
                &self.config.constraints,
                &constants,
                &observability,
                fault,
            ) {
                Some(FaultClass::Tied) => {
                    faults.classify(fault, FaultClass::Tied);
                    outcome.tied += 1;
                }
                Some(FaultClass::Blocked) => {
                    faults.classify(fault, FaultClass::Blocked);
                    outcome.blocked += 1;
                }
                Some(FaultClass::Unused) => {
                    faults.classify(fault, FaultClass::Unused);
                    outcome.unused += 1;
                }
                _ => {
                    if self.config.prove_redundancy {
                        podem_candidates.push(fault);
                    }
                }
            }
        }

        if self.config.prove_redundancy && !podem_candidates.is_empty() {
            let mut podem = Podem::new(
                netlist,
                &self.config.constraints,
                PodemConfig {
                    backtrack_limit: self.config.podem_backtrack_limit,
                    ..PodemConfig::default()
                },
            )?;
            for fault in podem_candidates {
                if podem.generate(fault) == PodemOutcome::Redundant {
                    faults.classify(fault, FaultClass::Redundant);
                    outcome.redundant += 1;
                }
            }
        }

        Ok(outcome)
    }
}

/// Whether a value change on input pin `pin` of `cell` can pass through the
/// cell, given the constant values of the other pins. Conservative: unknown
/// side inputs are assumed settable to non-controlling values.
pub(crate) fn pin_propagates(
    netlist: &Netlist,
    constants: &ConstantValues,
    cell: CellId,
    pin: usize,
) -> bool {
    let c = netlist.cell(cell);
    let kind = c.kind();
    let side_value = |p: usize| constants.value(c.inputs()[p]);
    match kind {
        CellKind::Buf | CellKind::Not => true,
        CellKind::And(_) | CellKind::Nand(_) => (0..c.inputs().len())
            .filter(|&p| p != pin)
            .all(|p| side_value(p) != Logic::Zero),
        CellKind::Or(_) | CellKind::Nor(_) => (0..c.inputs().len())
            .filter(|&p| p != pin)
            .all(|p| side_value(p) != Logic::One),
        CellKind::Xor(_) | CellKind::Xnor(_) => true,
        CellKind::Mux2 => match pin {
            0 => side_value(2) != Logic::One,  // D0 passes when S can be 0
            1 => side_value(2) != Logic::Zero, // D1 passes when S can be 1
            2 => {
                // The select only matters if the two data inputs can differ.
                let d0 = side_value(0);
                let d1 = side_value(1);
                !(d0.is_definite() && d1.is_definite() && d0 == d1)
            }
            _ => true,
        },
        // Sequential and port cells are handled by the observation-point
        // logic, not here.
        _ => true,
    }
}

fn classify_fault(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    constants: &ConstantValues,
    observability: &Observability,
    fault: StuckAt,
) -> Option<FaultClass> {
    let cell_id = fault.site.cell();
    let cell = netlist.cell(cell_id);
    if cell.is_dead() {
        return Some(FaultClass::Unused);
    }
    match fault.site {
        FaultSite::CellOutput { cell: c } => {
            let Some(net) = netlist.output_net(c) else {
                // Detached (floated) output pin: nothing downstream.
                return Some(FaultClass::Unused);
            };
            // Unexcitable? (A stuck value equal to the mission constant can
            // never be distinguished from the fault-free behaviour. The
            // opposite polarity stays testable — Fig. 5: for a register
            // constant at 0 only the stuck-at-1 faults on D and Q remain.)
            if constants.value(net) == Logic::from_bool(fault.value) {
                return Some(FaultClass::Tied);
            }
            let has_live_load = netlist
                .loads_of(net)
                .iter()
                .any(|l| !netlist.cell(l.cell).is_dead());
            if !has_live_load {
                return Some(FaultClass::Unused);
            }
            // A fault of the opposite polarity on a constant net is *always*
            // excited; it flips the very constant the downstream blocking
            // argument relies on, so the purely structural observability
            // reasoning is not sound for it. Leave it potentially testable.
            if constants.value(net).is_definite() {
                return None;
            }
            if !observability.net_observable(net) {
                return Some(FaultClass::Blocked);
            }
            None
        }
        FaultSite::CellInput { cell: c, pin } => {
            let in_net = netlist.input_net(c, pin);
            // Unexcitable?
            if constants.value(in_net) == Logic::from_bool(fault.value) {
                return Some(FaultClass::Tied);
            }
            let kind = cell.kind();
            match kind {
                CellKind::Output => {
                    if constraints.masked_outputs.contains(&c) {
                        // Observed nowhere: the classic "unused observation
                        // logic" case of §3.2.2.
                        return Some(FaultClass::Unused);
                    }
                    None
                }
                CellKind::Dff { .. } | CellKind::Sdff { .. } => {
                    if constraints.observe_ff_inputs {
                        None
                    } else {
                        Some(FaultClass::Blocked)
                    }
                }
                _ => {
                    // Combinational cell: the branch fault must pass this cell
                    // and then reach an observation point from its output.
                    let Some(out_net) = netlist.output_net(c) else {
                        return Some(FaultClass::Unused);
                    };
                    // Same reconvergence caveat as for stem faults: an
                    // always-excited branch fault on a constant pin flips the
                    // constants the blocking argument is built on.
                    if constants.value(in_net).is_definite() {
                        return None;
                    }
                    if !pin_propagates(netlist, constants, c, pin as usize)
                        || !observability.net_observable(out_net)
                    {
                        return Some(FaultClass::Blocked);
                    }
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn tied_input_yields_ut_and_ub_faults() {
        // y = (a AND b) OR c, with a tied to 0: the AND cone dies.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c2 = b.input("b");
        let c3 = b.input("c");
        let t = b.and2(a, c2);
        let y = b.or2(t, c3);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();

        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let analysis = StructuralAnalysis::with_constraints(constraints);
        let mut faults = FaultList::full_universe(&n);
        let outcome = analysis.run(&n, &mut faults).unwrap();

        // AND output is constant 0: its stuck-at-0 is tied.
        assert_eq!(
            faults.class_of(StuckAt::output(and, false)),
            Some(FaultClass::Tied)
        );
        // Pin A0 reads constant 0: stuck-at-0 tied; stuck-at-1 is excitable
        // and propagates (b can be 1), so it stays undetected/testable? No —
        // wait: with a tied to 0 the AND output is constant 0 regardless, so a
        // stuck-at-1 on A0 CAN change the output when b=1; it remains
        // potentially testable.
        assert_eq!(
            faults.class_of(StuckAt::input(and, 0, false)),
            Some(FaultClass::Tied)
        );
        assert_eq!(
            faults.class_of(StuckAt::input(and, 0, true)),
            Some(FaultClass::Undetected)
        );
        // Pin A1 (from b) cannot propagate through the AND because the side
        // input is constant 0: blocked.
        assert_eq!(
            faults.class_of(StuckAt::input(and, 1, true)),
            Some(FaultClass::Blocked)
        );
        assert!(outcome.tied > 0);
        assert!(outcome.blocked > 0);
    }

    #[test]
    fn masked_output_yields_unused_faults() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let dbg = b.not(a);
        let y = b.buf(a);
        b.output("debug_out", dbg);
        b.output("y", y);
        let n = b.finish();
        let inv = n.driver_of(dbg).unwrap();
        let debug_po = n
            .primary_outputs()
            .into_iter()
            .find(|&po| n.cell(po).name() == "debug_out")
            .unwrap();

        let mut constraints = ConstraintSet::full_scan();
        constraints.mask_output(debug_po);
        let analysis = StructuralAnalysis::with_constraints(constraints);
        let mut faults = FaultList::full_universe(&n);
        analysis.run(&n, &mut faults).unwrap();

        // The inverter feeds only the masked output: all its faults are
        // blocked or unused.
        for f in faults.faults_of_cell(inv) {
            assert!(
                faults.class_of(f).unwrap().is_structurally_untestable(),
                "{f:?} should be untestable"
            );
        }
        // Faults on the masked output pin itself are unused.
        assert_eq!(
            faults.class_of(StuckAt::input(debug_po, 0, false)),
            Some(FaultClass::Unused)
        );
        // The functional path stays testable.
        let buf = n.driver_of(y).unwrap();
        assert_eq!(
            faults.class_of(StuckAt::output(buf, false)),
            Some(FaultClass::Undetected)
        );
    }

    #[test]
    fn clean_design_has_no_untestable_faults() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let x = b.xor_word(&a, &c);
        b.output_bus("y", &x);
        let n = b.finish();
        let analysis = StructuralAnalysis::new(AnalysisConfig::default());
        let mut faults = FaultList::full_universe(&n);
        let outcome = analysis.run(&n, &mut faults).unwrap();
        assert_eq!(outcome.total_untestable(), 0);
    }

    #[test]
    fn ff_inputs_act_as_observation_points_in_full_scan() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ck = b.input("ck");
        let x = b.not(a);
        let q = b.dff(x, ck);
        // q drives nothing visible — without the full-scan assumption the
        // inverter would be unobservable.
        let _unused = q;
        let n = b.finish();
        let inv = n.driver_of(x).unwrap();

        let mut faults = FaultList::full_universe(&n);
        let analysis = StructuralAnalysis::new(AnalysisConfig::default());
        analysis.run(&n, &mut faults).unwrap();
        assert_eq!(
            faults.class_of(StuckAt::output(inv, false)),
            Some(FaultClass::Undetected)
        );

        // Without observing FF inputs the same fault becomes blocked.
        let mut constraints = ConstraintSet::full_scan();
        constraints.observe_ff_inputs = false;
        let mut faults2 = FaultList::full_universe(&n);
        StructuralAnalysis::with_constraints(constraints)
            .run(&n, &mut faults2)
            .unwrap();
        assert!(faults2
            .class_of(StuckAt::output(inv, false))
            .unwrap()
            .is_structurally_untestable());
    }

    #[test]
    fn forced_ff_output_makes_downstream_cone_untestable() {
        // The §3.3 situation: an address register bit that never toggles.
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let ck = b.input("ck");
        let other = b.input("other");
        let q = b.dff(d, ck);
        let y = b.and2(q, other);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();

        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(q, false);
        let analysis = StructuralAnalysis::with_constraints(constraints);
        let mut faults = FaultList::full_universe(&n);
        analysis.run(&n, &mut faults).unwrap();
        // AND output constant 0 -> stuck-at-0 tied; the `other` pin cannot
        // propagate -> blocked.
        assert_eq!(
            faults.class_of(StuckAt::output(and, false)),
            Some(FaultClass::Tied)
        );
        assert_eq!(
            faults.class_of(StuckAt::input(and, 1, true)),
            Some(FaultClass::Blocked)
        );
    }

    #[test]
    fn dead_cell_faults_are_unused() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.not(a);
        let y = b.buf(a);
        b.output("y", y);
        let mut n = b.finish();
        let inv = n.driver_of(x).unwrap();
        n.remove_cell(inv);
        let mut faults = FaultList::full_universe(&n);
        // Rebuild the universe on the live design, then add back a fault on
        // the dead cell to exercise the classification path.
        let dead_fault = StuckAt::output(inv, true);
        let mut all = faults.faults().to_vec();
        all.push(dead_fault);
        faults = FaultList::from_faults(all);
        let analysis = StructuralAnalysis::new(AnalysisConfig::default());
        analysis.run(&n, &mut faults).unwrap();
        assert_eq!(faults.class_of(dead_fault), Some(FaultClass::Unused));
    }

    #[test]
    fn mux_select_blocked_when_data_equal_constants() {
        let mut b = NetlistBuilder::new("t");
        let s = b.input("s");
        let zero_a = b.tie0();
        let one = b.tie1();
        let extra = b.input("e");
        // Both data inputs of the mux are the SAME constant 0 (one via an AND
        // with 0 to avoid sharing the tie net twice on the same pin).
        let also_zero = b.and2(one, zero_a);
        let m = b.mux2(zero_a, also_zero, s);
        let y = b.or2(m, extra);
        b.output("y", y);
        let n = b.finish();
        let mux = n.driver_of(m).unwrap();
        let analysis = StructuralAnalysis::new(AnalysisConfig::default());
        let mut faults = FaultList::full_universe(&n);
        analysis.run(&n, &mut faults).unwrap();
        // The select pin cannot influence the output: stuck-at faults on S are
        // blocked (its net is not constant, so they are not tied).
        assert!(faults
            .class_of(StuckAt::input(mux, 2, true))
            .unwrap()
            .is_structurally_untestable());
    }

    #[test]
    fn outcome_totals_are_consistent() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(t, a);
        b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, true);
        let analysis = StructuralAnalysis::with_constraints(constraints);
        let mut faults = FaultList::full_universe(&n);
        let outcome = analysis.run(&n, &mut faults).unwrap();
        let counts = faults.counts();
        assert_eq!(counts.tied, outcome.tied);
        assert_eq!(counts.blocked, outcome.blocked);
        assert_eq!(counts.unused, outcome.unused);
        assert_eq!(outcome.total_untestable(), counts.structurally_untestable());
    }
}
