//! SCOAP testability measures (combinational controllability and
//! observability), computed on the full-scan frame.
//!
//! Controllability `CC0(n)` / `CC1(n)` estimate how many input assignments
//! are needed to set net `n` to 0 / 1; observability `CO(n)` estimates how
//! many assignments are needed to propagate a change on `n` to an observation
//! point. Primary inputs and flip-flop outputs cost 1; unreachable values get
//! [`SCOAP_INFINITY`].

use crate::constant::ConstraintSet;
use netlist::{graph, CellKind, NetId, Netlist};

/// Sentinel for "not achievable".
pub const SCOAP_INFINITY: u32 = u32::MAX / 4;

/// SCOAP measures for every net of a design.
#[derive(Clone, Debug)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Scoap {
    /// Controllability-to-0 of a net.
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc0[net.index()]
    }

    /// Controllability-to-1 of a net.
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc1[net.index()]
    }

    /// Observability of a net.
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net.index()]
    }

    /// Combined testability of a stuck-at-`value` fault on the net
    /// (controllability of the opposite value plus observability).
    pub fn stuck_at_testability(&self, net: NetId, value: bool) -> u32 {
        let cc = if value { self.cc0(net) } else { self.cc1(net) };
        cc.saturating_add(self.co(net))
    }
}

fn add1(x: u32) -> u32 {
    x.saturating_add(1).min(SCOAP_INFINITY)
}

fn sum(values: impl Iterator<Item = u32>) -> u32 {
    values
        .fold(0u32, |acc, v| acc.saturating_add(v))
        .min(SCOAP_INFINITY)
}

/// Computes SCOAP measures under the given constraints (tied nets become
/// perfectly controllable to their tied value and uncontrollable to the
/// other; masked outputs are not observation points).
///
/// # Errors
///
/// Returns the levelization error if the combinational logic is cyclic.
pub fn compute_scoap(
    netlist: &Netlist,
    constraints: &ConstraintSet,
) -> Result<Scoap, graph::CombinationalLoop> {
    let lev = graph::levelize(netlist)?;
    let n = netlist.num_nets();
    let mut cc0 = vec![SCOAP_INFINITY; n];
    let mut cc1 = vec![SCOAP_INFINITY; n];
    let mut co = vec![SCOAP_INFINITY; n];

    // Sources.
    for (_, cell) in netlist.live_cells() {
        let Some(out) = cell.output() else { continue };
        match cell.kind() {
            CellKind::Input => {
                cc0[out.index()] = 1;
                cc1[out.index()] = 1;
            }
            CellKind::Tie0 => {
                cc0[out.index()] = 0;
                cc1[out.index()] = SCOAP_INFINITY;
            }
            CellKind::Tie1 => {
                cc1[out.index()] = 0;
                cc0[out.index()] = SCOAP_INFINITY;
            }
            CellKind::Dff { .. } | CellKind::Sdff { .. } if constraints.control_ff_outputs => {
                cc0[out.index()] = 1;
                cc1[out.index()] = 1;
            }
            _ => {}
        }
    }
    // Constraint ties override.
    for (&net, &value) in &constraints.forced_nets {
        match value.to_bool() {
            Some(true) => {
                cc1[net.index()] = 0;
                cc0[net.index()] = SCOAP_INFINITY;
            }
            Some(false) => {
                cc0[net.index()] = 0;
                cc1[net.index()] = SCOAP_INFINITY;
            }
            None => {}
        }
    }

    // Forward controllability in topological order.
    for &cell_id in &lev.order {
        let cell = netlist.cell(cell_id);
        let Some(out) = cell.output() else { continue };
        if constraints.forced_nets.contains_key(&out) {
            continue;
        }
        let in0 = |p: usize| cc0[cell.inputs()[p].index()];
        let in1 = |p: usize| cc1[cell.inputs()[p].index()];
        let pins = cell.inputs().len();
        let (c0, c1) = match cell.kind() {
            CellKind::Buf => (in0(0), in1(0)),
            CellKind::Not => (in1(0), in0(0)),
            CellKind::And(_) => (
                (0..pins).map(in0).min().unwrap_or(SCOAP_INFINITY),
                sum((0..pins).map(in1)),
            ),
            CellKind::Nand(_) => (
                sum((0..pins).map(in1)),
                (0..pins).map(in0).min().unwrap_or(SCOAP_INFINITY),
            ),
            CellKind::Or(_) => (
                sum((0..pins).map(in0)),
                (0..pins).map(in1).min().unwrap_or(SCOAP_INFINITY),
            ),
            CellKind::Nor(_) => (
                (0..pins).map(in1).min().unwrap_or(SCOAP_INFINITY),
                sum((0..pins).map(in0)),
            ),
            CellKind::Xor(_) | CellKind::Xnor(_) => {
                // Cost of producing even / odd parity over the inputs; a
                // simple approximation: cheapest way to reach each parity.
                let mut even = 0u32;
                let mut odd = SCOAP_INFINITY;
                for p in 0..pins {
                    let (z, o) = (in0(p), in1(p));
                    let new_even = (even.saturating_add(z)).min(odd.saturating_add(o));
                    let new_odd = (even.saturating_add(o)).min(odd.saturating_add(z));
                    even = new_even.min(SCOAP_INFINITY);
                    odd = new_odd.min(SCOAP_INFINITY);
                }
                if matches!(cell.kind(), CellKind::Xor(_)) {
                    (even, odd)
                } else {
                    (odd, even)
                }
            }
            CellKind::Mux2 => {
                let d0 = (in0(0), in1(0));
                let d1 = (in0(1), in1(1));
                let s = (in0(2), in1(2));
                (
                    d0.0.saturating_add(s.0).min(d1.0.saturating_add(s.1)),
                    d0.1.saturating_add(s.0).min(d1.1.saturating_add(s.1)),
                )
            }
            _ => (SCOAP_INFINITY, SCOAP_INFINITY),
        };
        cc0[out.index()] = add1(c0).min(SCOAP_INFINITY);
        cc1[out.index()] = add1(c1).min(SCOAP_INFINITY);
    }

    // Observation points.
    for po in netlist.primary_outputs() {
        if constraints.masked_outputs.contains(&po) {
            continue;
        }
        co[netlist.cell(po).inputs()[0].index()] = 0;
    }
    if constraints.observe_ff_inputs {
        for ff in netlist.sequential_cells() {
            for &net in netlist.cell(ff).inputs() {
                co[net.index()] = 0;
            }
        }
    }

    // Backward observability in reverse topological order.
    for &cell_id in lev.order.iter().rev() {
        let cell = netlist.cell(cell_id);
        let Some(out) = cell.output() else { continue };
        let out_co = co[out.index()];
        if out_co >= SCOAP_INFINITY {
            continue;
        }
        let pins = cell.inputs().len();
        for pin in 0..pins {
            let side_cost: u32 = match cell.kind() {
                CellKind::Buf | CellKind::Not => 0,
                CellKind::And(_) | CellKind::Nand(_) => sum((0..pins)
                    .filter(|&p| p != pin)
                    .map(|p| cc1[cell.inputs()[p].index()])),
                CellKind::Or(_) | CellKind::Nor(_) => sum((0..pins)
                    .filter(|&p| p != pin)
                    .map(|p| cc0[cell.inputs()[p].index()])),
                CellKind::Xor(_) | CellKind::Xnor(_) => sum((0..pins)
                    .filter(|&p| p != pin)
                    .map(|p| cc0[cell.inputs()[p].index()].min(cc1[cell.inputs()[p].index()]))),
                CellKind::Mux2 => match pin {
                    0 => cc0[cell.inputs()[2].index()],
                    1 => cc1[cell.inputs()[2].index()],
                    _ => cc0[cell.inputs()[0].index()].min(cc1[cell.inputs()[1].index()]),
                },
                _ => SCOAP_INFINITY,
            };
            let new_co = add1(out_co.saturating_add(side_cost));
            let net = cell.inputs()[pin];
            if new_co < co[net.index()] {
                co[net.index()] = new_co;
            }
        }
    }

    Ok(Scoap { cc0, cc1, co })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn inputs_are_cheap_and_deep_logic_is_costlier() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 4);
        let and_all = b.reduce_and(&a);
        b.output("y", and_all);
        let n = b.finish();
        let scoap = compute_scoap(&n, &ConstraintSet::full_scan()).unwrap();
        assert_eq!(scoap.cc0(a[0]), 1);
        assert_eq!(scoap.cc1(a[0]), 1);
        // Setting the AND of four inputs to 1 needs all four inputs at 1.
        assert!(scoap.cc1(and_all) > scoap.cc1(a[0]));
        assert!(scoap.cc1(and_all) >= 4);
        // Setting it to 0 needs a single 0.
        assert!(scoap.cc0(and_all) <= 2);
        // The output net is directly observable.
        assert_eq!(scoap.co(and_all), 0);
        // Observing an individual input requires the other three at 1.
        assert!(scoap.co(a[0]) >= 3);
    }

    #[test]
    fn tie_cells_have_one_sided_controllability() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let one = b.tie1();
        let y = b.and2(a, one);
        b.output("y", y);
        let n = b.finish();
        let scoap = compute_scoap(&n, &ConstraintSet::full_scan()).unwrap();
        assert_eq!(scoap.cc1(one), 0);
        assert_eq!(scoap.cc0(one), SCOAP_INFINITY);
        // The AND output follows `a` cheaply.
        assert!(scoap.cc1(y) <= 2);
    }

    #[test]
    fn constrained_net_is_uncontrollable_to_other_value() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.or2(a, c);
        b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, true);
        let scoap = compute_scoap(&n, &constraints).unwrap();
        assert_eq!(scoap.cc1(a), 0);
        assert_eq!(scoap.cc0(a), SCOAP_INFINITY);
        // The OR output can no longer be set to 0.
        assert!(scoap.cc0(y) >= SCOAP_INFINITY);
    }

    #[test]
    fn masked_output_kills_observability() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let n = b.finish();
        let po = n.primary_outputs()[0];
        let mut constraints = ConstraintSet::full_scan();
        constraints.mask_output(po);
        let scoap = compute_scoap(&n, &constraints).unwrap();
        assert!(scoap.co(y) >= SCOAP_INFINITY);
        assert!(scoap.co(a) >= SCOAP_INFINITY);
        assert!(scoap.stuck_at_testability(a, true) >= SCOAP_INFINITY);
    }

    #[test]
    fn ff_boundaries_are_cheap_in_full_scan() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ck = b.input("ck");
        let q = b.dff(a, ck);
        let y = b.not(q);
        let _q2 = b.dff(y, ck);
        let n = b.finish();
        let scoap = compute_scoap(&n, &ConstraintSet::full_scan()).unwrap();
        assert_eq!(scoap.cc0(q), 1);
        assert_eq!(scoap.cc1(q), 1);
        assert_eq!(scoap.co(y), 0, "feeds a flip-flop D pin");
    }
}
