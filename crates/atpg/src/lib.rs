//! Structural test engine for the DATE 2013 on-line untestability
//! reproduction — the workspace's substitute for the commercial ATPG tool
//! (Synopsys TetraMAX) used by the paper.
//!
//! The crate provides:
//!
//! * a **compiled simulation program** ([`compiled`]): the netlist lowered
//!   once into flat struct-of-arrays tables with reusable scratch buffers,
//!   shared by every simulator so the per-cycle hot paths are free of hash
//!   maps and allocations;
//! * three-valued [`logic`] and scalar simulation ([`sim`]): levelized
//!   combinational propagation and a cycle-accurate sequential simulator,
//!   both with single stuck-at fault injection;
//! * packed **parallel-fault simulation** ([`fault_sim`]) for grading test
//!   vector sequences (and SBST programs) against thousands of faults;
//! * **constant propagation** from tied nets ([`constant`]) and the
//!   **structural untestability analysis** ([`analysis`]) that classifies
//!   faults as tied / blocked / unused — the step the paper delegates to
//!   "any EDA tool able to identify structural untestable faults";
//! * **PODEM** test generation with redundancy proofs ([`podem`]), a
//!   **SAT proof backend** ([`cnf`]) that encodes the cone-clipped fault
//!   machine into CNF for the vendored CDCL core (`sat`), and the
//!   **parallel untestability proof engine** ([`proof`]) that fans the
//!   constraint-aware PODEM out across worker threads and escalates aborted
//!   searches to the SAT backend (the PODEM/SAT portfolio);
//! * **SCOAP** testability measures ([`scoap`]);
//! * random + deterministic **test-generation campaigns** ([`tpg`]).
//!
//! # Examples
//!
//! Classify the faults of a design in which one input is tied to ground
//! (the situation §3.2.1 of the paper creates for debug control inputs):
//!
//! ```
//! use atpg::analysis::StructuralAnalysis;
//! use atpg::constant::ConstraintSet;
//! use faultmodel::FaultList;
//! use netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("demo");
//! let dbg_en = b.input("debug_en");
//! let d = b.input("d");
//! let q = b.mux2(d, d, dbg_en); // degenerate mux: debug_en never matters
//! b.output("q", q);
//! let n = b.finish();
//!
//! let mut constraints = ConstraintSet::full_scan();
//! constraints.tie_net(dbg_en, false);
//! let mut faults = FaultList::full_universe(&n);
//! let outcome = StructuralAnalysis::with_constraints(constraints)
//!     .run(&n, &mut faults)
//!     .unwrap();
//! assert!(outcome.total_untestable() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod budget;
pub mod checkpoint;
pub mod cnf;
pub mod compiled;
pub mod constant;
pub mod fault_sim;
pub mod logic;
pub mod podem;
pub mod proof;
pub mod scoap;
pub mod sim;
pub mod tpg;

pub use analysis::{AnalysisConfig, AnalysisOutcome, StructuralAnalysis};
pub use budget::{AbortReason, Budget, CancelToken, FailurePlan};
pub use checkpoint::{campaign_fingerprint, Checkpoint, CheckpointError};
pub use cnf::{SatProver, SatVerdict};
pub use compiled::{CompiledProgram, PackedInjection, PackedScratch, PackedVectors, SimScratch};
pub use constant::{propagate_constants, ConstantValues, ConstraintSet};
pub use fault_sim::{FaultSim, FaultSimOutcome, InputVector};
pub use logic::Logic;
pub use podem::{Podem, PodemConfig, PodemOutcome, ProofOutcome, TestPattern};
pub use proof::{
    prove_faults, prove_faults_campaign, prove_faults_with_engines, CampaignOutcome,
    EngineBreakdown, EngineOutcome, ProofConfig, ProofEngine, ProofStats,
};
pub use scoap::{compute_scoap, Scoap, SCOAP_INFINITY};
pub use sim::{CombSim, SeqSim};
pub use tpg::{run_campaign, TpgConfig, TpgOutcome};
