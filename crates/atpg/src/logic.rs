//! Three-valued logic used by the simulators and the structural analyses.

use netlist::CellKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A three-valued logic value: `0`, `1` or unknown (`X`).
///
/// High-impedance is not modelled separately; floating nets evaluate to `X`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum Logic {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown / don't-care.
    #[default]
    X,
}

impl Logic {
    /// Converts a boolean to a definite logic value.
    pub fn from_bool(value: bool) -> Self {
        if value {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns the boolean value if the logic value is definite.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True if the value is 0 or 1.
    pub fn is_definite(self) -> bool {
        self != Logic::X
    }

    /// Logical NOT.
    ///
    /// (Named `not` for symmetry with `and`/`or`/`xor`; the `!` operator is
    /// deliberately not overloaded for a three-valued type.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }

    /// Logical AND.
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Logical OR.
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical XOR.
    pub fn xor(self, other: Self) -> Self {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }

    /// 2-to-1 multiplexer (`s ? d1 : d0`), with optimistic X handling: when
    /// the select is `X` but both data values agree, the common value is
    /// returned.
    pub fn mux(d0: Self, d1: Self, s: Self) -> Self {
        match s {
            Logic::Zero => d0,
            Logic::One => d1,
            Logic::X => {
                if d0 == d1 {
                    d0
                } else {
                    Logic::X
                }
            }
        }
    }

    /// The lattice meet: equal values stay, differing values become `X`.
    pub fn meet(self, other: Self) -> Self {
        if self == other {
            self
        } else {
            Logic::X
        }
    }
}

impl From<bool> for Logic {
    fn from(value: bool) -> Self {
        Logic::from_bool(value)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic::Zero => f.write_str("0"),
            Logic::One => f.write_str("1"),
            Logic::X => f.write_str("X"),
        }
    }
}

/// Evaluates a combinational cell over three-valued inputs.
///
/// Returns `Logic::X` for sequential cells (their value is owned by the
/// sequential simulator) and for `Output`/`Input` pseudo-cells.
pub fn eval_cell(kind: CellKind, inputs: &[Logic]) -> Logic {
    match kind {
        CellKind::Tie0 => Logic::Zero,
        CellKind::Tie1 => Logic::One,
        CellKind::Buf => inputs[0],
        CellKind::Not => inputs[0].not(),
        CellKind::And(_) => inputs.iter().fold(Logic::One, |acc, &v| acc.and(v)),
        CellKind::Nand(_) => inputs.iter().fold(Logic::One, |acc, &v| acc.and(v)).not(),
        CellKind::Or(_) => inputs.iter().fold(Logic::Zero, |acc, &v| acc.or(v)),
        CellKind::Nor(_) => inputs.iter().fold(Logic::Zero, |acc, &v| acc.or(v)).not(),
        CellKind::Xor(_) => inputs.iter().fold(Logic::Zero, |acc, &v| acc.xor(v)),
        CellKind::Xnor(_) => inputs.iter().fold(Logic::Zero, |acc, &v| acc.xor(v)).not(),
        CellKind::Mux2 => Logic::mux(inputs[0], inputs[1], inputs[2]),
        CellKind::Input | CellKind::Output | CellKind::Dff { .. } | CellKind::Sdff { .. } => {
            Logic::X
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero);
        assert_eq!(Logic::One.and(Logic::X), Logic::X);
        assert_eq!(Logic::One.or(Logic::X), Logic::One);
        assert_eq!(Logic::Zero.or(Logic::X), Logic::X);
        assert_eq!(Logic::X.not(), Logic::X);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::X), Logic::X);
    }

    #[test]
    fn mux_optimistic_x() {
        assert_eq!(Logic::mux(Logic::One, Logic::One, Logic::X), Logic::One);
        assert_eq!(Logic::mux(Logic::Zero, Logic::One, Logic::X), Logic::X);
        assert_eq!(Logic::mux(Logic::Zero, Logic::One, Logic::One), Logic::One);
        assert_eq!(
            Logic::mux(Logic::Zero, Logic::One, Logic::Zero),
            Logic::Zero
        );
    }

    #[test]
    fn meet_is_lattice_meet() {
        assert_eq!(Logic::One.meet(Logic::One), Logic::One);
        assert_eq!(Logic::One.meet(Logic::Zero), Logic::X);
        assert_eq!(Logic::X.meet(Logic::Zero), Logic::X);
    }

    #[test]
    fn conversions() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Zero.is_definite());
        assert!(!Logic::X.is_definite());
        assert_eq!(Logic::X.to_string(), "X");
    }

    #[test]
    fn eval_cell_matches_bool_eval_on_definite_inputs() {
        use netlist::CellKind as K;
        let kinds = [
            K::Buf,
            K::Not,
            K::And(3),
            K::Nand(3),
            K::Or(3),
            K::Nor(3),
            K::Xor(3),
            K::Xnor(3),
        ];
        for kind in kinds {
            let n = kind.num_inputs();
            for pattern in 0..(1u32 << n) {
                let bools: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
                let logics: Vec<Logic> = bools.iter().map(|&b| Logic::from_bool(b)).collect();
                let expected = kind.eval_bool(&bools).unwrap();
                assert_eq!(
                    eval_cell(kind, &logics),
                    Logic::from_bool(expected),
                    "{kind:?} {pattern:b}"
                );
            }
        }
        // Mux separately (3 pins).
        for pattern in 0..8u32 {
            let bools: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            let logics: Vec<Logic> = bools.iter().map(|&b| Logic::from_bool(b)).collect();
            assert_eq!(
                eval_cell(K::Mux2, &logics),
                Logic::from_bool(K::Mux2.eval_bool(&bools).unwrap())
            );
        }
    }

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(
            eval_cell(CellKind::And(2), &[Logic::Zero, Logic::X]),
            Logic::Zero
        );
        assert_eq!(
            eval_cell(CellKind::Nor(2), &[Logic::One, Logic::X]),
            Logic::Zero
        );
        assert_eq!(
            eval_cell(CellKind::Nand(2), &[Logic::Zero, Logic::X]),
            Logic::One
        );
        assert_eq!(eval_cell(CellKind::Or(2), &[Logic::X, Logic::X]), Logic::X);
    }
}
