//! Scalar three-valued simulation: levelized combinational propagation and a
//! cycle-accurate sequential wrapper, both with single-stuck-at fault
//! injection.

use crate::compiled::{CompiledProgram, SimScratch};
use crate::logic::Logic;
use faultmodel::{FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist, Reset};
use std::collections::HashMap;

/// Net values indexed by `NetId::index()`.
pub type NetValues = Vec<Logic>;

/// Flip-flop state indexed by `CellId::index()` (only entries of sequential
/// cells are meaningful).
pub type FfState = Vec<Logic>;

/// Levelized three-valued combinational simulator.
///
/// The simulator treats flip-flop output nets as inputs (their values come
/// from the caller-provided state) and evaluates every combinational cell in
/// topological order over the [`CompiledProgram`]. A single stuck-at fault
/// can be injected; nets listed in `forced` keep their caller-provided value
/// regardless of their driver.
#[derive(Debug)]
pub struct CombSim<'a> {
    netlist: &'a Netlist,
    program: CompiledProgram,
}

impl<'a> CombSim<'a> {
    /// Builds the simulator (levelizes and compiles the design).
    ///
    /// # Errors
    ///
    /// Returns the combinational loop error from levelization if the design
    /// is cyclic.
    pub fn new(netlist: &'a Netlist) -> Result<Self, graph::CombinationalLoop> {
        Ok(CombSim {
            netlist,
            program: CompiledProgram::compile(netlist)?,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The compiled simulation program this simulator evaluates — shared
    /// with callers that drive clipped propagation themselves (PODEM's
    /// cone-clipped search).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Creates an all-`X` value array sized for this design.
    pub fn blank_values(&self) -> NetValues {
        vec![Logic::X; self.netlist.num_nets()]
    }

    /// Creates a reusable scratch for [`propagate_with`](Self::propagate_with).
    pub fn scratch(&self) -> SimScratch {
        self.program.sim_scratch()
    }

    /// Propagates values through the combinational logic.
    ///
    /// On entry `values` must hold the desired values of primary-input nets,
    /// flip-flop output nets and any forced nets; every other net is
    /// recomputed. `forced` nets are never overwritten. `fault` optionally
    /// injects one stuck-at fault.
    ///
    /// Allocates a transient scratch; hot callers should hold a
    /// [`SimScratch`] and use [`propagate_with`](Self::propagate_with).
    pub fn propagate(
        &self,
        values: &mut NetValues,
        forced: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
    ) {
        let mut scratch = SimScratch::default();
        self.propagate_with(values, forced, fault, &mut scratch);
    }

    /// [`propagate`](Self::propagate) with a caller-held scratch: the
    /// allocation-free form used by the hot paths (PODEM, constant
    /// propagation, repeated sequential stepping).
    pub fn propagate_with(
        &self,
        values: &mut NetValues,
        forced: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
        scratch: &mut SimScratch,
    ) {
        self.program
            .propagate_scalar(self.netlist, values, forced, fault, scratch);
    }

    /// The value observed at a primary output pseudo-cell, taking a fault on
    /// the output's own input pin into account.
    pub fn observed_value(
        &self,
        values: &NetValues,
        output_cell: CellId,
        fault: Option<StuckAt>,
    ) -> Logic {
        let cell = self.netlist.cell(output_cell);
        debug_assert_eq!(cell.kind(), CellKind::Output);
        if let Some(f) = fault {
            if f.site
                == (FaultSite::CellInput {
                    cell: output_cell,
                    pin: 0,
                })
            {
                return Logic::from_bool(f.value);
            }
        }
        values[cell.inputs()[0].index()]
    }
}

/// Cycle-accurate three-valued sequential simulator built on [`CombSim`].
///
/// A single free-running clock is assumed: every flip-flop captures once per
/// [`step`](SeqSim::step). Asynchronous resets are honoured combinationally
/// (an active reset value forces the state to 0 regardless of the clock).
#[derive(Debug)]
pub struct SeqSim<'a> {
    comb: CombSim<'a>,
    flops: Vec<CellId>,
}

impl<'a> SeqSim<'a> {
    /// Builds the sequential simulator.
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic is cyclic.
    pub fn new(netlist: &'a Netlist) -> Result<Self, graph::CombinationalLoop> {
        let comb = CombSim::new(netlist)?;
        let flops = netlist.sequential_cells();
        Ok(SeqSim { comb, flops })
    }

    /// The underlying combinational simulator.
    pub fn comb(&self) -> &CombSim<'a> {
        &self.comb
    }

    /// The flip-flops of the design, in a fixed order.
    pub fn flops(&self) -> &[CellId] {
        &self.flops
    }

    /// A state with every flip-flop at `value`.
    pub fn uniform_state(&self, value: Logic) -> FfState {
        vec![value; self.comb.netlist().num_cells()]
    }

    /// Performs one clock cycle: loads `state` and `pi_values` (keyed by the
    /// primary-input *net*), propagates the combinational logic, computes the
    /// next state and returns the full net-value array of the cycle.
    ///
    /// `state` is updated in place to the next state. Allocates a transient
    /// scratch; multi-cycle callers should hold a [`SimScratch`] and use
    /// [`step_with`](Self::step_with).
    pub fn step(
        &self,
        state: &mut FfState,
        pi_values: &HashMap<NetId, Logic>,
        forced: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
    ) -> NetValues {
        let mut scratch = SimScratch::default();
        self.step_with(state, pi_values, forced, fault, &mut scratch)
    }

    /// [`step`](Self::step) with a caller-held propagation scratch, for
    /// multi-cycle runs.
    pub fn step_with(
        &self,
        state: &mut FfState,
        pi_values: &HashMap<NetId, Logic>,
        forced: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
        scratch: &mut SimScratch,
    ) -> NetValues {
        let netlist = self.comb.netlist();
        let mut values = self.comb.blank_values();
        for (&net, &v) in pi_values {
            values[net.index()] = v;
        }
        for &ff in &self.flops {
            if let Some(q) = netlist.output_net(ff) {
                values[q.index()] = state[ff.index()];
            }
        }
        self.comb
            .propagate_with(&mut values, forced, fault, scratch);

        // Next-state computation.
        let mut next: Vec<(CellId, Logic)> = Vec::with_capacity(self.flops.len());
        for &ff in &self.flops {
            let cell = netlist.cell(ff);
            let kind = cell.kind();
            let read_pin = |pin: netlist::PinIndex| -> Logic {
                let mut v = values[cell.inputs()[pin as usize].index()];
                if let Some(f) = fault {
                    if f.site == (FaultSite::CellInput { cell: ff, pin }) {
                        v = Logic::from_bool(f.value);
                    }
                }
                v
            };
            let data = match kind {
                CellKind::Sdff { .. } => {
                    let d = read_pin(0);
                    let si = read_pin(1);
                    let se = read_pin(2);
                    Logic::mux(d, si, se)
                }
                _ => read_pin(0),
            };
            let mut new_value = data;
            if let (Some(reset), Some(rst_pin)) = (kind.reset(), kind.reset_pin()) {
                let rst = read_pin(rst_pin);
                let active = match reset {
                    Reset::ActiveLow => rst.not(),
                    Reset::ActiveHigh => rst,
                };
                new_value = match active {
                    Logic::One => Logic::Zero,
                    Logic::X => Logic::Zero.meet(data),
                    Logic::Zero => data,
                };
            }
            // An output-pin fault on the flip-flop pins its state.
            if let Some(f) = fault {
                if f.site == (FaultSite::CellOutput { cell: ff }) {
                    new_value = Logic::from_bool(f.value);
                }
            }
            next.push((ff, new_value));
        }
        for (ff, v) in next {
            state[ff.index()] = v;
        }
        values
    }

    /// Runs a sequence of input vectors from an all-zero reset state and
    /// returns the values observed at the primary outputs after every cycle.
    pub fn run(
        &self,
        vectors: &[HashMap<NetId, Logic>],
        fault: Option<StuckAt>,
    ) -> Vec<Vec<Logic>> {
        let netlist = self.comb.netlist();
        let outputs = netlist.primary_outputs();
        let mut state = self.uniform_state(Logic::Zero);
        let forced = HashMap::new();
        let mut scratch = self.comb.scratch();
        let mut observed = Vec::with_capacity(vectors.len());
        for vector in vectors {
            let values = self.step_with(&mut state, vector, &forced, fault, &mut scratch);
            observed.push(
                outputs
                    .iter()
                    .map(|&po| self.comb.observed_value(&values, po, fault))
                    .collect(),
            );
        }
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn pi_map(pairs: &[(NetId, bool)]) -> HashMap<NetId, Logic> {
        pairs
            .iter()
            .map(|&(n, v)| (n, Logic::from_bool(v)))
            .collect()
    }

    #[test]
    fn comb_propagation_evaluates_gates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let z = b.not(y);
        b.output("z", z);
        let n = b.finish();
        let sim = CombSim::new(&n).unwrap();
        let mut values = sim.blank_values();
        values[a.index()] = Logic::One;
        values[c.index()] = Logic::One;
        sim.propagate(&mut values, &HashMap::new(), None);
        assert_eq!(values[y.index()], Logic::One);
        assert_eq!(values[z.index()], Logic::Zero);
    }

    #[test]
    fn x_inputs_propagate_as_x() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.or2(a, c);
        b.output("y", y);
        let n = b.finish();
        let sim = CombSim::new(&n).unwrap();
        let mut values = sim.blank_values();
        values[a.index()] = Logic::Zero;
        sim.propagate(&mut values, &HashMap::new(), None);
        assert_eq!(values[y.index()], Logic::X);
        values[c.index()] = Logic::One;
        sim.propagate(&mut values, &HashMap::new(), None);
        assert_eq!(values[y.index()], Logic::One);
    }

    #[test]
    fn output_pin_fault_overrides_gate() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let sim = CombSim::new(&n).unwrap();
        let mut values = sim.blank_values();
        values[a.index()] = Logic::One;
        values[c.index()] = Logic::One;
        sim.propagate(
            &mut values,
            &HashMap::new(),
            Some(StuckAt::output(and, false)),
        );
        assert_eq!(values[y.index()], Logic::Zero);
    }

    #[test]
    fn input_pin_fault_affects_only_that_branch() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y1 = b.buf(a);
        let y2 = b.buf(a);
        b.output("y1", y1);
        b.output("y2", y2);
        let n = b.finish();
        let buf1 = n.driver_of(y1).unwrap();
        let sim = CombSim::new(&n).unwrap();
        let mut values = sim.blank_values();
        values[a.index()] = Logic::One;
        sim.propagate(
            &mut values,
            &HashMap::new(),
            Some(StuckAt::input(buf1, 0, false)),
        );
        assert_eq!(values[y1.index()], Logic::Zero, "faulty branch");
        assert_eq!(values[y2.index()], Logic::One, "healthy branch");
    }

    #[test]
    fn forced_nets_are_not_overwritten() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let n = b.finish();
        let sim = CombSim::new(&n).unwrap();
        let mut values = sim.blank_values();
        values[a.index()] = Logic::One;
        let mut forced = HashMap::new();
        forced.insert(y, Logic::One);
        values[y.index()] = Logic::One;
        sim.propagate(&mut values, &forced, None);
        assert_eq!(values[y.index()], Logic::One);
    }

    #[test]
    fn observed_value_accounts_for_po_fault() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish();
        let po = n.primary_outputs()[0];
        let sim = CombSim::new(&n).unwrap();
        let mut values = sim.blank_values();
        values[a.index()] = Logic::Zero;
        sim.propagate(&mut values, &HashMap::new(), None);
        assert_eq!(sim.observed_value(&values, po, None), Logic::Zero);
        let f = StuckAt::input(po, 0, true);
        assert_eq!(sim.observed_value(&values, po, Some(f)), Logic::One);
    }

    #[test]
    fn sequential_counter_counts() {
        // A 3-bit counter built from registers and an incrementer.
        let mut b = NetlistBuilder::new("cnt");
        let ck = b.input("ck");
        // Feedback: build placeholder state nets first.
        let mut nlb = b;
        // simpler: use register with incrementer on its own output via en=1
        // We need feedback; construct manually.
        let ph: Vec<NetId> = (0..3)
            .map(|i| nlb.netlist_mut().add_net(format!("d{i}")))
            .collect();
        let q: Vec<NetId> = ph.iter().map(|&d| nlb.dff(d, ck)).collect();
        let (inc, _) = nlb.incrementer(&q);
        for i in 0..3 {
            let name = format!("fb{i}");
            nlb.netlist_mut()
                .add_cell(netlist::CellKind::Buf, name, &[inc[i]], Some(ph[i]));
        }
        nlb.output_bus("count", &q);
        let n = nlb.finish();
        let sim = SeqSim::new(&n).unwrap();
        let vectors: Vec<HashMap<NetId, Logic>> = (0..5).map(|_| pi_map(&[(ck, true)])).collect();
        let observed = sim.run(&vectors, None);
        // After k cycles the counter holds k (observed value is the state
        // *during* the cycle, i.e. before the edge).
        for (cycle, outs) in observed.iter().enumerate() {
            let value: usize = outs
                .iter()
                .enumerate()
                .map(|(i, v)| (v.to_bool().unwrap() as usize) << i)
                .sum();
            assert_eq!(value, cycle % 8, "cycle {cycle}");
        }
    }

    #[test]
    fn sdff_selects_scan_input_when_se_high() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let si = b.input("si");
        let se = b.input("se");
        let ck = b.input("ck");
        let q = b.sdff(d, si, se, ck);
        b.output("q", q);
        let n = b.finish();
        let sim = SeqSim::new(&n).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        let forced = HashMap::new();
        // SE=1: capture SI.
        sim.step(
            &mut state,
            &pi_map(&[(d, false), (si, true), (se, true), (ck, true)]),
            &forced,
            None,
        );
        let ff = n.sequential_cells()[0];
        assert_eq!(state[ff.index()], Logic::One);
        // SE=0: capture D.
        sim.step(
            &mut state,
            &pi_map(&[(d, false), (si, true), (se, false), (ck, true)]),
            &forced,
            None,
        );
        assert_eq!(state[ff.index()], Logic::Zero);
    }

    #[test]
    fn reset_forces_zero() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let ck = b.input("ck");
        let rst = b.input("rstn");
        let q = b.dff_r(d, ck, rst, Reset::ActiveLow);
        b.output("q", q);
        let n = b.finish();
        let sim = SeqSim::new(&n).unwrap();
        let ff = n.sequential_cells()[0];
        let mut state = sim.uniform_state(Logic::One);
        let forced = HashMap::new();
        // Reset asserted (active low, rstn=0): state goes to 0 even with d=1.
        sim.step(
            &mut state,
            &pi_map(&[(d, true), (ck, true), (rst, false)]),
            &forced,
            None,
        );
        assert_eq!(state[ff.index()], Logic::Zero);
        // Reset released: capture d.
        sim.step(
            &mut state,
            &pi_map(&[(d, true), (ck, true), (rst, true)]),
            &forced,
            None,
        );
        assert_eq!(state[ff.index()], Logic::One);
    }

    #[test]
    fn ff_output_fault_pins_state() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let ck = b.input("ck");
        let q = b.dff(d, ck);
        b.output("q", q);
        let n = b.finish();
        let ff = n.sequential_cells()[0];
        let sim = SeqSim::new(&n).unwrap();
        let vectors: Vec<HashMap<NetId, Logic>> =
            (0..3).map(|_| pi_map(&[(d, true), (ck, true)])).collect();
        let good = sim.run(&vectors, None);
        let faulty = sim.run(&vectors, Some(StuckAt::output(ff, false)));
        // Good machine eventually outputs 1, faulty machine stays 0.
        assert_eq!(good[2][0], Logic::One);
        assert_eq!(faulty[2][0], Logic::Zero);
    }
}
