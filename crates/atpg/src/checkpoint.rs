//! Incremental campaign checkpoints: crash-safe persistence of concluded
//! proof verdicts, keyed by a fingerprint of the proof problem.
//!
//! A long proof campaign appends one line per concluded fault to a plain
//! text file as the verdicts arrive (flushed per line, so an interrupted
//! process loses at most the line being written). A resumed campaign loads
//! the file, re-seeds every recorded verdict, and proves only the faults the
//! interrupted run never concluded — the collapse schedule is recomputed
//! over the *full* population, so the merged classification is bit-identical
//! to an uninterrupted run under the same configuration.
//!
//! Two persistence rules keep a resume sound:
//!
//! * The file is keyed by [`campaign_fingerprint`] — a structural hash of
//!   the netlist, the [`ConstraintSet`] and the verdict-affecting parts of
//!   the [`ProofConfig`]. A checkpoint whose
//!   fingerprint mismatches is refused
//!   ([`CheckpointError::FingerprintMismatch`]): replaying verdicts across a
//!   different design, environment or budget would silently corrupt the
//!   classification. Thread count and wall-clock limits do *not* enter the
//!   fingerprint — they change how fast verdicts arrive, never which
//!   verdicts arrive.
//! * Only reproducible outcomes are persisted: concluded verdicts and
//!   *deterministic* aborts ([`AbortReason::is_deterministic`] — backtrack /
//!   conflict budget exhaustion, unsupported encodings). A timeout or a
//!   caught panic is an accident of the interrupted run and is re-proven on
//!   resume.
//!
//! The format is hand-rolled (the vendored serde stub has no (de)serializer,
//! matching the BENCH reference readers): a two-line header followed by one
//! whitespace-separated record per fault.
//!
//! ```text
//! untestable-checkpoint v1
//! fingerprint 1f3a5c...
//! fault o 12 - 1 podem proven
//! fault i 7 3 0 sat aborted conflicts
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use faultmodel::{FaultSite, StuckAt};
use netlist::{Netlist, PinIndex};

use crate::budget::AbortReason;
use crate::constant::ConstraintSet;
use crate::podem::ProofOutcome;
use crate::proof::{EngineOutcome, ProofConfig, ProofEngine};

/// Why a checkpoint file could not be opened, parsed, or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(String),
    /// A line of the file does not parse (`line` is 1-based).
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file was written for a different proof problem (netlist,
    /// constraint environment, or verdict-affecting configuration).
    FingerprintMismatch {
        /// Fingerprint of the current campaign.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(message) => write!(f, "checkpoint I/O error: {message}"),
            CheckpointError::Format { line, message } => {
                write!(f, "checkpoint format error at line {line}: {message}")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: file was written for campaign \
                 {found:016x}, this campaign is {expected:016x} (different design, \
                 constraints, or proof configuration) — delete the file or point \
                 --checkpoint elsewhere"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a, the same dependency-free construction the workspace uses for its
/// deterministic shuffles: good avalanche for fingerprinting, trivially
/// stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    fn write_bool(&mut self, v: bool) {
        self.write(&[u8::from(v)]);
    }
}

/// The structural hash that keys a checkpoint to its proof problem: the
/// netlist (cells, connectivity, names), the mission [`ConstraintSet`], and
/// the verdict-affecting fields of the [`ProofConfig`]. Scheduling knobs
/// (thread count) and wall-clock limits are deliberately excluded — they
/// never change which verdict a fault gets.
pub fn campaign_fingerprint(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    config: &ProofConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.write_str(netlist.name());
    h.write_usize(netlist.num_nets());
    h.write_usize(netlist.num_cells());
    for cell in netlist.cells() {
        h.write_str(&cell.kind().lib_name());
        h.write_str(cell.name());
        h.write_usize(cell.inputs().len());
        for &net in cell.inputs() {
            h.write_usize(net.index());
        }
        match cell.output() {
            Some(net) => h.write_usize(net.index() + 1),
            None => h.write_usize(0),
        }
    }
    let mut forced: Vec<(usize, u8)> = constraints
        .forced_nets
        .iter()
        .map(|(&net, &value)| {
            let v = match value.to_bool() {
                Some(false) => 0,
                Some(true) => 1,
                None => 2,
            };
            (net.index(), v)
        })
        .collect();
    forced.sort_unstable();
    h.write_usize(forced.len());
    for (net, value) in forced {
        h.write_usize(net);
        h.write(&[value]);
    }
    let mut masked: Vec<usize> = constraints
        .masked_outputs
        .iter()
        .map(|&cell| cell.index())
        .collect();
    masked.sort_unstable();
    h.write_usize(masked.len());
    for cell in masked {
        h.write_usize(cell);
    }
    h.write_bool(constraints.observe_ff_inputs);
    h.write_bool(constraints.control_ff_outputs);
    h.write_bool(constraints.sequential_fixpoint);
    h.write_usize(constraints.max_fixpoint_iterations);
    h.write_usize(config.backtrack_limit);
    h.write_bool(config.use_collapse);
    h.write_bool(config.cone_clip);
    h.write_bool(config.use_scoap);
    h.write_bool(config.use_x_path);
    h.write_bool(config.use_sat);
    h.write_u64(config.sat_conflict_limit);
    h.0
}

/// A fault's identity inside the checkpoint: site kind, cell, pin, stuck
/// value.
type FaultKey = (u8, usize, u64, bool);

fn key_of(fault: StuckAt) -> FaultKey {
    match fault.site {
        FaultSite::CellOutput { cell } => (b'o', cell.index(), 0, fault.value),
        FaultSite::CellInput { cell, pin } => (b'i', cell.index(), u64::from(pin), fault.value),
    }
}

const HEADER: &str = "untestable-checkpoint v1";

struct WriterState {
    writer: Option<BufWriter<File>>,
    /// First deferred write error; surfaced by [`Checkpoint::sync`].
    error: Option<String>,
}

/// An append-only verdict store shared by the campaign's worker threads.
///
/// Created (or resumed) with [`create_or_resume`](Self::create_or_resume);
/// the campaign pre-seeds every [`concluded`](Self::concluded) verdict,
/// [`record`](Self::record)s new ones as they arrive, and calls
/// [`sync`](Self::sync) at the end to surface any deferred write error.
pub struct Checkpoint {
    path: PathBuf,
    fingerprint: u64,
    entries: HashMap<FaultKey, EngineOutcome>,
    /// The torn trailing record dropped at load time, if any (1-based line
    /// number and the raw line) — the crash artefact of the interrupted run.
    torn_tail: Option<(usize, String)>,
    state: Mutex<WriterState>,
}

impl fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("path", &self.path)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl Checkpoint {
    /// Opens `path` for the campaign identified by `fingerprint`: an
    /// existing file is parsed and its verdicts loaded (refusing a
    /// fingerprint mismatch), a missing file is created with a fresh header.
    /// Either way the file is then held open for incremental appends.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read or created,
    /// [`CheckpointError::Format`] on a malformed interior line, and
    /// [`CheckpointError::FingerprintMismatch`] when the file belongs to a
    /// different proof problem. A malformed *final* record is tolerated: it
    /// is the torn write of the interrupted run, and its fault is simply
    /// re-proven.
    pub fn create_or_resume(
        path: impl AsRef<Path>,
        fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io(e)),
        };
        let mut entries = HashMap::new();
        let mut torn_tail = None;
        let mut fresh = true;
        let mut needs_newline = false;
        if let Some(text) = existing.filter(|t| !t.trim().is_empty()) {
            fresh = false;
            let parsed = parse_checkpoint(&text, fingerprint)?;
            entries = parsed.entries;
            if let Some((line, start, tail)) = parsed.torn_tail {
                // Cut the torn record off before reopening for append: left
                // in place, the next append would concatenate onto it and
                // turn the tolerated crash artefact into interior corruption
                // that refuses every later resume.
                OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|file| file.set_len(start as u64))
                    .map_err(io)?;
                torn_tail = Some((line, tail));
            } else {
                // A crash can also tear *exactly* the final newline off an
                // otherwise complete record; appending straight after it
                // would concatenate two records into one corrupt line.
                needs_newline = !text.ends_with('\n');
            }
        }
        if fresh {
            // Write the header through a sibling temp file and publish it
            // with an atomic rename: a crash during creation leaves either no
            // file or a complete two-line header, never a half-written header
            // that a later resume would refuse.
            let mut tmp_name = path.as_os_str().to_os_string();
            tmp_name.push(format!(".tmp{}", std::process::id()));
            let tmp = PathBuf::from(tmp_name);
            let header = {
                let mut file = File::create(&tmp).map_err(io)?;
                let attempt = writeln!(file, "{HEADER}")
                    .and_then(|()| writeln!(file, "fingerprint {fingerprint:016x}"))
                    .and_then(|()| file.sync_all());
                attempt.and_then(|()| std::fs::rename(&tmp, &path))
            };
            if let Err(e) = header {
                let _ = std::fs::remove_file(&tmp);
                return Err(io(e));
            }
        }
        if let Some((line, text)) = &torn_tail {
            eprintln!(
                "warning: checkpoint {}: dropped torn trailing record at line {line} \
                 ({text:?}); its fault will be re-proven",
                path.display()
            );
        }
        let mut writer = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(io)?,
        );
        if needs_newline {
            writer
                .write_all(b"\n")
                .and_then(|()| writer.flush())
                .map_err(io)?;
        }
        Ok(Checkpoint {
            path,
            fingerprint,
            entries,
            torn_tail,
            state: Mutex::new(WriterState {
                writer: Some(writer),
                error: None,
            }),
        })
    }

    /// The campaign fingerprint this file is keyed by.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of verdicts loaded from the file at open time.
    pub fn loaded(&self) -> usize {
        self.entries.len()
    }

    /// The torn trailing record dropped (and truncated off the file) at open
    /// time, if the interrupted run crashed mid-append: the raw text of the
    /// incomplete line. Its fault is simply re-proven; callers may surface
    /// this as a warning.
    pub fn torn_tail(&self) -> Option<&str> {
        self.torn_tail.as_ref().map(|(_, text)| text.as_str())
    }

    /// The verdict recorded for `fault` by a previous run, if any.
    pub fn concluded(&self, fault: StuckAt) -> Option<EngineOutcome> {
        self.entries.get(&key_of(fault)).copied()
    }

    /// Appends one verdict (thread-safe, flushed immediately so a crash
    /// loses at most this line). Non-reproducible outcomes — timeouts and
    /// caught panics — are silently skipped: they must be re-proven by the
    /// resumed run, not replayed into it. A write error is deferred and
    /// surfaced by [`sync`](Self::sync); recording continues in memory-less
    /// mode so the campaign itself never dies on a full disk.
    pub fn record(&self, fault: StuckAt, result: EngineOutcome) {
        if let Some(reason) = result.reason {
            if !reason.is_deterministic() {
                return;
            }
        }
        let line = format_record(fault, result);
        let mut state = self.state.lock().expect("checkpoint writer poisoned");
        let Some(writer) = state.writer.as_mut() else {
            return;
        };
        let attempt = writeln!(writer, "{line}").and_then(|()| writer.flush());
        if let Err(e) = attempt {
            state.error = Some(format!("{}: {e}", self.path.display()));
            state.writer = None;
        }
    }

    /// Flushes the file and surfaces the first deferred write error, if any.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when any append since the last `sync` failed.
    pub fn sync(&self) -> Result<(), CheckpointError> {
        let mut state = self.state.lock().expect("checkpoint writer poisoned");
        if let Some(message) = state.error.take() {
            return Err(CheckpointError::Io(message));
        }
        if let Some(writer) = state.writer.as_mut() {
            if let Err(e) = writer.flush() {
                state.writer = None;
                return Err(CheckpointError::Io(format!("{}: {e}", self.path.display())));
            }
        }
        Ok(())
    }
}

fn format_record(fault: StuckAt, result: EngineOutcome) -> String {
    let (kind, cell, pin) = match fault.site {
        FaultSite::CellOutput { cell } => ('o', cell.index(), "-".to_string()),
        FaultSite::CellInput { cell, pin } => ('i', cell.index(), pin.to_string()),
    };
    let value = u8::from(fault.value);
    let engine = match result.engine {
        ProofEngine::Podem => "podem",
        ProofEngine::Sat => "sat",
    };
    let verdict = match result.outcome {
        ProofOutcome::TestExists => "test-exists".to_string(),
        ProofOutcome::ProvenUntestable => "proven".to_string(),
        ProofOutcome::Aborted => {
            let reason = result.reason.unwrap_or(AbortReason::Backtracks);
            format!("aborted {}", reason.name())
        }
    };
    format!("fault {kind} {cell} {pin} {value} {engine} {verdict}")
}

fn parse_record(tokens: &[&str]) -> Result<(FaultKey, EngineOutcome), String> {
    if tokens.len() < 6 {
        return Err("truncated fault record".to_string());
    }
    let kind = match tokens[1] {
        "o" => b'o',
        "i" => b'i',
        other => return Err(format!("unknown fault site kind {other:?}")),
    };
    let cell: usize = tokens[2]
        .parse()
        .map_err(|_| format!("bad cell index {:?}", tokens[2]))?;
    let pin: u64 = if kind == b'o' {
        if tokens[3] != "-" {
            return Err("output fault must use '-' for the pin".to_string());
        }
        0
    } else {
        let pin: u64 = tokens[3]
            .parse()
            .map_err(|_| format!("bad pin index {:?}", tokens[3]))?;
        if u64::from(PinIndex::MAX) < pin {
            return Err(format!("pin index {pin} out of range"));
        }
        pin
    };
    let value = match tokens[4] {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad stuck value {other:?}")),
    };
    let engine = match tokens[5] {
        "podem" => ProofEngine::Podem,
        "sat" => ProofEngine::Sat,
        other => return Err(format!("unknown engine {other:?}")),
    };
    let result = match (tokens.get(6).copied(), tokens.get(7).copied()) {
        (Some("test-exists"), None) => EngineOutcome::concluded(ProofOutcome::TestExists, engine),
        (Some("proven"), None) => EngineOutcome::concluded(ProofOutcome::ProvenUntestable, engine),
        (Some("aborted"), Some(reason)) => {
            let reason = AbortReason::from_name(reason)
                .ok_or_else(|| format!("unknown abort reason {reason:?}"))?;
            if !reason.is_deterministic() {
                return Err(format!(
                    "non-deterministic abort reason {reason} must not be persisted"
                ));
            }
            EngineOutcome::aborted(engine, reason)
        }
        _ => return Err("malformed verdict".to_string()),
    };
    Ok(((kind, cell, pin, value), result))
}

/// The outcome of loading a checkpoint file: the recorded verdicts plus, when
/// the interrupted run tore its final append, the dropped trailing record
/// (1-based line number, byte offset of the line start, raw line text).
struct ParsedCheckpoint {
    entries: HashMap<FaultKey, EngineOutcome>,
    torn_tail: Option<(usize, usize, String)>,
}

fn parse_checkpoint(text: &str, expected: u64) -> Result<ParsedCheckpoint, CheckpointError> {
    // Keep each line's byte offset: a torn trailing record must be truncated
    // off the file before appending resumes, or the next append would
    // concatenate onto it and turn the crash artefact into interior
    // corruption for every later resume.
    let mut offset = 0usize;
    let mut lines: Vec<(usize, usize, &str)> = Vec::new();
    for (i, raw) in text.split_inclusive('\n').enumerate() {
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            lines.push((i + 1, offset, trimmed));
        }
        offset += raw.len();
    }
    let format = |line: usize, message: String| CheckpointError::Format { line, message };
    let empty = ParsedCheckpoint {
        entries: HashMap::new(),
        torn_tail: None,
    };
    let Some(&(line, _, header)) = lines.first() else {
        return Ok(empty);
    };
    if header != HEADER {
        return Err(format(line, format!("expected header {HEADER:?}")));
    }
    let Some(&(line, _, fp_line)) = lines.get(1) else {
        return Err(format(2, "missing fingerprint line".to_string()));
    };
    let found = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok())
        .ok_or_else(|| format(line, format!("bad fingerprint line {fp_line:?}")))?;
    if found != expected {
        return Err(CheckpointError::FingerprintMismatch { expected, found });
    }
    let mut entries = HashMap::new();
    let mut torn_tail = None;
    let last = lines.len() - 1;
    for (position, &(line, start, text)) in lines.iter().enumerate().skip(2) {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let parsed = if tokens.first() != Some(&"fault") {
            Err(format!("expected a fault record, found {text:?}"))
        } else {
            parse_record(&tokens)
        };
        match parsed {
            Ok((key, result)) => {
                entries.insert(key, result);
            }
            // Exactly one incomplete *final* line may be the torn write of an
            // interrupted run: drop it (the fault is simply re-proven) and
            // remember where it starts so the caller can truncate it away.
            // Anything earlier is real corruption and refuses the file.
            Err(_) if position == last => torn_tail = Some((line, start, text.to_string())),
            Err(message) => return Err(format(line, message)),
        }
    }
    Ok(ParsedCheckpoint { entries, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::ProofConfig;
    use netlist::{CellId, NetlistBuilder};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "untestable-checkpoint-{}-{tag}.ckpt",
            std::process::id()
        ))
    }

    /// The classic redundant AND-OR design plus the `CellId` of its AND.
    fn small_design() -> (Netlist, CellId) {
        let mut b = NetlistBuilder::new("ckpt");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        (n, and)
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (_n, and) = small_design();
        let stem = StuckAt::output(and, false);
        let branch = StuckAt::input(and, 1, true);
        {
            let cp = Checkpoint::create_or_resume(&path, 0xabcd).unwrap();
            assert_eq!(cp.loaded(), 0);
            cp.record(
                stem,
                EngineOutcome::concluded(ProofOutcome::ProvenUntestable, ProofEngine::Sat),
            );
            cp.record(
                branch,
                EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Backtracks),
            );
            // Non-deterministic outcomes must not be persisted.
            cp.record(
                StuckAt::output(and, true),
                EngineOutcome::aborted(ProofEngine::Podem, AbortReason::Timeout),
            );
            cp.sync().unwrap();
        }
        let resumed = Checkpoint::create_or_resume(&path, 0xabcd).unwrap();
        assert_eq!(resumed.loaded(), 2);
        assert_eq!(
            resumed.concluded(stem),
            Some(EngineOutcome::concluded(
                ProofOutcome::ProvenUntestable,
                ProofEngine::Sat
            ))
        );
        assert_eq!(
            resumed.concluded(branch),
            Some(EngineOutcome::aborted(
                ProofEngine::Podem,
                AbortReason::Backtracks
            ))
        );
        assert_eq!(resumed.concluded(StuckAt::output(and, true)), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            Checkpoint::create_or_resume(&path, 1).unwrap();
        }
        let err = Checkpoint::create_or_resume(&path, 2).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::FingerprintMismatch {
                expected: 2,
                found: 1
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_tolerated_but_interior_corruption_is_not() {
        let path = temp_path("torn");
        let (_n, and) = small_design();
        {
            let _ = std::fs::remove_file(&path);
            let cp = Checkpoint::create_or_resume(&path, 7).unwrap();
            cp.record(
                StuckAt::output(and, false),
                EngineOutcome::concluded(ProofOutcome::TestExists, ProofEngine::Podem),
            );
            cp.sync().unwrap();
        }
        // Simulate a torn write: append half a record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("fault o 3");
        std::fs::write(&path, &text).unwrap();
        let resumed = Checkpoint::create_or_resume(&path, 7).unwrap();
        assert_eq!(resumed.loaded(), 1);
        drop(resumed);
        // The same garbage in the middle of the file is corruption.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("fault o 3\nfault o 4 - 1 podem proven\n");
        std::fs::write(&path, &text).unwrap();
        let err = Checkpoint::create_or_resume(&path, 7).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Format { .. }),
            "unexpected error: {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_at_every_byte_of_the_last_record_is_tolerated() {
        let path = temp_path("every-byte");
        let (_n, and) = small_design();
        let faults = [
            StuckAt::output(and, false),
            StuckAt::input(and, 0, true),
            StuckAt::input(and, 1, false),
        ];
        {
            let _ = std::fs::remove_file(&path);
            let cp = Checkpoint::create_or_resume(&path, 0x5eed).unwrap();
            for &fault in &faults {
                cp.record(
                    fault,
                    EngineOutcome::concluded(ProofOutcome::ProvenUntestable, ProofEngine::Sat),
                );
            }
            cp.sync().unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        // Byte offset where the last record starts (the file ends with a
        // newline, so the offset is just past the second-to-last newline).
        let body = full.trim_end_matches('\n');
        let last_start = body.rfind('\n').unwrap() + 1;
        let complete_from = full.len() - 1; // record complete once only '\n' is missing
        for cut in last_start..=full.len() {
            std::fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            let resumed = Checkpoint::create_or_resume(&path, 0x5eed)
                .unwrap_or_else(|e| panic!("cut at byte {cut} refused: {e}"));
            let expect = if cut >= complete_from { 3 } else { 2 };
            assert_eq!(resumed.loaded(), expect, "cut at byte {cut}");
            let torn = cut > last_start && cut < complete_from;
            assert_eq!(resumed.torn_tail().is_some(), torn, "cut at byte {cut}");
            // The resumed file must stay appendable: a new verdict lands on
            // its own line and the *next* resume sees everything.
            resumed.record(
                StuckAt::output(and, true),
                EngineOutcome::concluded(ProofOutcome::TestExists, ProofEngine::Podem),
            );
            resumed.sync().unwrap();
            drop(resumed);
            let again = Checkpoint::create_or_resume(&path, 0x5eed)
                .unwrap_or_else(|e| panic!("post-append resume at byte {cut} refused: {e}"));
            assert_eq!(again.loaded(), expect + 1, "cut at byte {cut}");
            assert_eq!(again.torn_tail(), None, "cut at byte {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fresh_header_leaves_no_temp_file_behind() {
        let path = temp_path("atomic-header");
        let _ = std::fs::remove_file(&path);
        drop(Checkpoint::create_or_resume(&path, 0xfeed).unwrap());
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|f| f.starts_with(&name) && f != &name)
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        // And the published header resumes cleanly.
        assert_eq!(
            Checkpoint::create_or_resume(&path, 0xfeed)
                .unwrap()
                .loaded(),
            0
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_tracks_the_proof_problem_but_not_the_schedule() {
        let (n, _and) = small_design();
        let constraints = ConstraintSet::full_scan();
        let config = ProofConfig::default();
        let base = campaign_fingerprint(&n, &constraints, &config);
        assert_eq!(base, campaign_fingerprint(&n, &constraints, &config));
        // Thread count is scheduling, not semantics.
        let threaded = ProofConfig {
            threads: 7,
            ..config
        };
        assert_eq!(base, campaign_fingerprint(&n, &constraints, &threaded));
        // A different budget can change verdicts.
        let tighter = ProofConfig {
            backtrack_limit: 1,
            ..config
        };
        assert_ne!(base, campaign_fingerprint(&n, &constraints, &tighter));
        // A different environment changes the problem.
        let mut tied = constraints.clone();
        tied.tie_net(n.cells()[0].output().unwrap(), false);
        assert_ne!(base, campaign_fingerprint(&n, &tied, &config));
        // A different design changes the problem.
        let mut b = NetlistBuilder::new("other");
        let a = b.input("a");
        b.output("y", a);
        let other = b.finish();
        assert_ne!(base, campaign_fingerprint(&other, &constraints, &config));
    }
}
