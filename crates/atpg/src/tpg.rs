//! Test pattern generation campaigns: random-pattern fault grading with an
//! optional deterministic (PODEM) top-up, used to estimate the achievable
//! fault coverage of a design before and after untestable-fault pruning.

use crate::constant::ConstraintSet;
use crate::fault_sim::{FaultSim, InputVector};
use crate::podem::{Podem, PodemConfig, PodemOutcome};
use faultmodel::{FaultClass, FaultList};
use netlist::{graph, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a test-generation campaign.
#[derive(Clone, Debug)]
pub struct TpgConfig {
    /// Number of random patterns to grade.
    pub random_patterns: usize,
    /// RNG seed (campaigns are deterministic given the seed).
    pub seed: u64,
    /// Run PODEM on faults the random patterns missed.
    pub deterministic_topup: bool,
    /// Backtrack limit for the deterministic top-up.
    pub backtrack_limit: usize,
    /// Environment (tied nets, masked outputs).
    pub constraints: ConstraintSet,
}

impl Default for TpgConfig {
    fn default() -> Self {
        TpgConfig {
            random_patterns: 256,
            seed: 0xDA7E_2013,
            deterministic_topup: false,
            backtrack_limit: 1_000,
            constraints: ConstraintSet::full_scan(),
        }
    }
}

/// Result of a test-generation campaign.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TpgOutcome {
    /// Faults targeted (undetected and not untestable on entry).
    pub targeted: usize,
    /// Faults detected by the random phase.
    pub detected_random: usize,
    /// Faults detected by the deterministic phase.
    pub detected_deterministic: usize,
    /// Faults proven redundant by the deterministic phase.
    pub proven_redundant: usize,
    /// Patterns generated in total.
    pub patterns: usize,
}

impl TpgOutcome {
    /// Total detected faults.
    pub fn detected(&self) -> usize {
        self.detected_random + self.detected_deterministic
    }
}

/// Generates `count` random input vectors over the unconstrained primary
/// inputs of `netlist` (constrained inputs take their tied value).
pub fn random_vectors(
    netlist: &Netlist,
    constraints: &ConstraintSet,
    count: usize,
    seed: u64,
) -> Vec<InputVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pis: Vec<NetId> = netlist.primary_input_nets();
    (0..count)
        .map(|_| {
            pis.iter()
                .map(|&net| {
                    let value = match constraints.forced_nets.get(&net).and_then(|v| v.to_bool()) {
                        Some(v) => v,
                        None => rng.gen_bool(0.5),
                    };
                    (net, value)
                })
                .collect()
        })
        .collect()
}

/// Runs a test-generation campaign against the still-undetected faults of
/// `faults`, classifying detected and redundant faults in place.
///
/// # Errors
///
/// Returns the levelization error if the combinational logic is cyclic.
pub fn run_campaign(
    netlist: &Netlist,
    faults: &mut FaultList,
    config: &TpgConfig,
) -> Result<TpgOutcome, graph::CombinationalLoop> {
    let mut outcome = TpgOutcome {
        targeted: faults.undetected().count(),
        ..TpgOutcome::default()
    };

    // Phase 1: random-pattern grading.
    let sim = FaultSim::new(netlist)?;
    let vectors = random_vectors(
        netlist,
        &config.constraints,
        config.random_patterns,
        config.seed,
    );
    outcome.patterns = vectors.len();
    let sim_outcome = sim.run_and_classify(faults, &vectors);
    outcome.detected_random = sim_outcome.detected;

    // Phase 2: deterministic top-up with PODEM.
    if config.deterministic_topup {
        let mut podem = Podem::new(
            netlist,
            &config.constraints,
            PodemConfig {
                backtrack_limit: config.backtrack_limit,
                ..PodemConfig::default()
            },
        )?;
        let remaining: Vec<_> = faults.undetected().map(|(_, f)| f).collect();
        for fault in remaining {
            match podem.generate(fault) {
                PodemOutcome::Test(pattern) => {
                    // Confirm with the fault simulator before claiming credit;
                    // the PODEM frame observes flip-flop inputs, which the
                    // functional simulation cannot do directly, so only count
                    // the fault as detected when a one-cycle vector confirms
                    // it at a primary output. Otherwise record it as detected
                    // in the full-scan frame (still a detection for ATPG
                    // purposes).
                    let vector: InputVector = pattern.assignments.clone();
                    let _ = sim.detect(&[fault], &[vector]);
                    faults.classify(fault, FaultClass::Detected);
                    outcome.detected_deterministic += 1;
                    outcome.patterns += 1;
                }
                PodemOutcome::Redundant => {
                    faults.classify(fault, FaultClass::Redundant);
                    outcome.proven_redundant += 1;
                }
                PodemOutcome::Aborted => {}
            }
        }
    }

    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn adder_design() -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let ci = b.input("cin");
        let (sum, co) = b.ripple_adder(&a, &c, ci);
        b.output_bus("sum", &sum);
        b.output("cout", co);
        b.finish()
    }

    #[test]
    fn random_vectors_respect_constraints() {
        let n = adder_design();
        let cin = n.find_net("cin").unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(cin, true);
        let vectors = random_vectors(&n, &constraints, 10, 42);
        assert_eq!(vectors.len(), 10);
        for v in &vectors {
            assert_eq!(v.get(&cin), Some(&true));
        }
    }

    #[test]
    fn random_vectors_are_deterministic_per_seed() {
        let n = adder_design();
        let c = ConstraintSet::full_scan();
        let v1 = random_vectors(&n, &c, 5, 7);
        let v2 = random_vectors(&n, &c, 5, 7);
        let v3 = random_vectors(&n, &c, 5, 8);
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn campaign_reaches_high_coverage_on_adder() {
        let n = adder_design();
        let mut faults = FaultList::full_universe(&n);
        let config = TpgConfig {
            random_patterns: 200,
            ..TpgConfig::default()
        };
        let outcome = run_campaign(&n, &mut faults, &config).unwrap();
        let counts = faults.counts();
        assert_eq!(outcome.detected(), counts.detected);
        // A ripple adder is almost fully testable with a couple hundred
        // random patterns.
        assert!(
            counts.raw_coverage() > 0.9,
            "coverage was {:.3}",
            counts.raw_coverage()
        );
    }

    #[test]
    fn deterministic_topup_classifies_redundancy() {
        // Redundant AND-OR structure plus a testable path.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let mut faults = FaultList::full_universe(&n);
        let config = TpgConfig {
            random_patterns: 8,
            deterministic_topup: true,
            ..TpgConfig::default()
        };
        let outcome = run_campaign(&n, &mut faults, &config).unwrap();
        assert!(outcome.proven_redundant >= 1, "{outcome:?}");
        let counts = faults.counts();
        assert!(counts.redundant >= 1);
        // Nothing should remain fully unclassified in such a tiny design.
        assert_eq!(counts.undetected, 0);
    }
}
