//! Constant-value analysis: propagation of tied values through the
//! combinational logic (and optionally through the sequential behaviour).
//!
//! This is the engine behind the paper's central trick: after the circuit
//! manipulation ties mission-constant signals to fixed values, faults that
//! can no longer be excited or propagated show up as *structurally*
//! untestable. The analysis computes, for every net, whether it holds a
//! constant value under the given constraints.

use crate::logic::Logic;
use crate::sim::{CombSim, NetValues};
use faultmodel::StuckAt;
use netlist::{graph, CellId, CellKind, NetId, Netlist, Reset};
use std::collections::{HashMap, HashSet};

/// The environment under which the structural analysis runs: which signals
/// are tied, which outputs are observable, and how sequential elements are
/// treated.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    /// Nets forced to a constant value (primary inputs tied to ground/Vdd,
    /// flip-flop outputs tied by the memory-map manipulation, …).
    pub forced_nets: HashMap<NetId, Logic>,
    /// Primary-output pseudo-cells that must *not* be used as observation
    /// points (debug observation buses disconnected in mission mode).
    pub masked_outputs: HashSet<CellId>,
    /// Treat flip-flop input pins as observation points (full-scan
    /// assumption, the default — this is how TetraMAX is used in the paper).
    pub observe_ff_inputs: bool,
    /// Treat flip-flop outputs as freely controllable pseudo-inputs (full-scan
    /// assumption, the default).
    pub control_ff_outputs: bool,
    /// Iterate the sequential state update to find flip-flops that settle to
    /// a constant value on their own (an extension over the paper's purely
    /// combinational tool flow; off by default).
    pub sequential_fixpoint: bool,
    /// Iteration cap for the sequential fixpoint.
    pub max_fixpoint_iterations: usize,
}

impl ConstraintSet {
    /// A constraint set with full-scan defaults and no tied signals.
    pub fn full_scan() -> Self {
        ConstraintSet {
            forced_nets: HashMap::new(),
            masked_outputs: HashSet::new(),
            observe_ff_inputs: true,
            control_ff_outputs: true,
            sequential_fixpoint: false,
            max_fixpoint_iterations: 32,
        }
    }

    /// Ties a net to a constant.
    pub fn tie_net(&mut self, net: NetId, value: bool) -> &mut Self {
        self.forced_nets.insert(net, Logic::from_bool(value));
        self
    }

    /// Masks a primary output (it stops being an observation point).
    pub fn mask_output(&mut self, output: CellId) -> &mut Self {
        self.masked_outputs.insert(output);
        self
    }
}

/// The result of constant propagation: a value per net, where a definite
/// value means "this net holds this constant under the constraints".
#[derive(Clone, Debug)]
pub struct ConstantValues {
    values: NetValues,
}

impl ConstantValues {
    /// The propagated value of `net`.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// True if `net` is constant (0 or 1).
    pub fn is_constant(&self, net: NetId) -> bool {
        self.values[net.index()].is_definite()
    }

    /// All nets that are constant, with their values.
    pub fn constant_nets(&self) -> Vec<(NetId, bool)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (NetId::from_index(i), b)))
            .collect()
    }

    /// Raw access to the full value array.
    pub fn raw(&self) -> &NetValues {
        &self.values
    }

    /// Whether a stuck-at fault is unexcitable under these constants (the
    /// signal at the site is constant and equal to the stuck value).
    pub fn is_unexcitable(&self, netlist: &Netlist, fault: StuckAt) -> bool {
        let net = match fault.site {
            faultmodel::FaultSite::CellOutput { cell } => netlist.output_net(cell),
            faultmodel::FaultSite::CellInput { cell, pin } => Some(netlist.input_net(cell, pin)),
        };
        match net {
            Some(net) => self.value(net) == Logic::from_bool(fault.value),
            // A detached output pin has no net: it cannot be excited in any
            // observable way, but we report it as not-unexcitable here and
            // let the observability analysis classify it as unused.
            None => false,
        }
    }
}

/// Runs constant propagation under `constraints`.
///
/// # Errors
///
/// Returns the levelization error if the combinational logic is cyclic.
pub fn propagate_constants(
    netlist: &Netlist,
    constraints: &ConstraintSet,
) -> Result<ConstantValues, graph::CombinationalLoop> {
    let sim = CombSim::new(netlist)?;
    let mut values = sim.blank_values();
    let mut scratch = sim.scratch();
    let forced: HashMap<NetId, Logic> = constraints.forced_nets.clone();

    // Primary inputs without constraints stay X; flip-flop outputs start X
    // (combinational mode) and are refined by the fixpoint when requested.
    sim.propagate_with(&mut values, &forced, None, &mut scratch);

    if constraints.sequential_fixpoint {
        let flops = netlist.sequential_cells();
        for _ in 0..constraints.max_fixpoint_iterations.max(1) {
            // Compute next-state values from the current propagation.
            let mut changed = false;
            let mut next_states: Vec<(NetId, Logic)> = Vec::new();
            for &ff in &flops {
                let cell = netlist.cell(ff);
                let kind = cell.kind();
                let pin_value = |pin: usize| values[cell.inputs()[pin].index()];
                let data = match kind {
                    CellKind::Sdff { .. } => Logic::mux(pin_value(0), pin_value(1), pin_value(2)),
                    _ => pin_value(0),
                };
                let mut new_value = data;
                if let (Some(reset), Some(rst_pin)) = (kind.reset(), kind.reset_pin()) {
                    let rst = pin_value(rst_pin as usize);
                    let active = match reset {
                        Reset::ActiveLow => rst.not(),
                        Reset::ActiveHigh => rst,
                    };
                    new_value = match active {
                        Logic::One => Logic::Zero,
                        Logic::X => Logic::Zero.meet(data),
                        Logic::Zero => data,
                    };
                }
                if let Some(q) = cell.output() {
                    if forced.contains_key(&q) {
                        continue;
                    }
                    // Merge with the previous estimate: a flip-flop is only
                    // constant if every iteration agrees.
                    let old = values[q.index()];
                    let merged = if old == Logic::X && new_value.is_definite() {
                        new_value
                    } else {
                        old.meet(new_value)
                    };
                    if merged != old {
                        changed = true;
                    }
                    next_states.push((q, merged));
                }
            }
            for (q, v) in &next_states {
                values[q.index()] = *v;
            }
            // Re-propagate with the refined state estimates kept fixed.
            let mut forced_with_state = forced.clone();
            for (q, v) in &next_states {
                forced_with_state.insert(*q, *v);
            }
            sim.propagate_with(&mut values, &forced_with_state, None, &mut scratch);
            if !changed {
                break;
            }
        }
    }

    Ok(ConstantValues { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn tied_input_propagates_through_gates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let z = b.or2(y, c);
        b.output("z", z);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let consts = propagate_constants(&n, &constraints).unwrap();
        assert_eq!(consts.value(y), Logic::Zero, "AND with tied-0 input");
        assert_eq!(consts.value(z), Logic::X, "OR still depends on b");
        assert!(consts.is_constant(y));
        assert!(!consts.is_constant(z));
        assert!(consts
            .constant_nets()
            .iter()
            .any(|&(net, v)| net == y && !v));
    }

    #[test]
    fn tie_cells_are_constants_without_constraints() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let one = b.tie1();
        let y = b.and2(a, one);
        let z = b.or2(a, one);
        b.output("y", y);
        b.output("z", z);
        let n = b.finish();
        let consts = propagate_constants(&n, &ConstraintSet::full_scan()).unwrap();
        assert_eq!(consts.value(z), Logic::One);
        assert_eq!(consts.value(y), Logic::X);
    }

    #[test]
    fn ff_outputs_are_unknown_in_combinational_mode() {
        let mut b = NetlistBuilder::new("t");
        let ck = b.input("ck");
        let zero = b.tie0();
        let q = b.dff(zero, ck);
        let y = b.not(q);
        b.output("y", y);
        let n = b.finish();
        let consts = propagate_constants(&n, &ConstraintSet::full_scan()).unwrap();
        // The combinational-only analysis stops at the flip-flop (exactly the
        // behaviour the paper works around by tying FF outputs).
        assert_eq!(consts.value(q), Logic::X);
        assert_eq!(consts.value(y), Logic::X);
    }

    #[test]
    fn sequential_fixpoint_finds_constant_ff() {
        let mut b = NetlistBuilder::new("t");
        let ck = b.input("ck");
        let zero = b.tie0();
        let q = b.dff(zero, ck);
        let y = b.not(q);
        b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.sequential_fixpoint = true;
        let consts = propagate_constants(&n, &constraints).unwrap();
        assert_eq!(consts.value(q), Logic::Zero);
        assert_eq!(consts.value(y), Logic::One);
    }

    #[test]
    fn sequential_fixpoint_keeps_toggling_ff_unknown() {
        // q' = NOT q toggles forever: must not be reported constant.
        let mut b = NetlistBuilder::new("t");
        let ck = b.input("ck");
        let d = b.netlist_mut().add_net("d");
        let q = b.dff(d, ck);
        let nq = b.not(q);
        b.netlist_mut()
            .add_cell(CellKind::Buf, "fb", &[nq], Some(d));
        b.output("q", q);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.sequential_fixpoint = true;
        let consts = propagate_constants(&n, &constraints).unwrap();
        assert_eq!(consts.value(q), Logic::X);
    }

    #[test]
    fn forced_ff_output_propagates() {
        let mut b = NetlistBuilder::new("t");
        let ck = b.input("ck");
        let din = b.input("d");
        let q = b.dff(din, ck);
        let y = b.and2(q, din);
        b.output("y", y);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(q, false);
        let consts = propagate_constants(&n, &constraints).unwrap();
        assert_eq!(consts.value(y), Logic::Zero);
    }

    #[test]
    fn unexcitable_detection() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let consts = propagate_constants(&n, &constraints).unwrap();
        // Input pin A0 of the AND reads constant 0: stuck-at-0 there is
        // unexcitable, stuck-at-1 is excitable.
        assert!(consts.is_unexcitable(&n, StuckAt::input(and, 0, false)));
        assert!(!consts.is_unexcitable(&n, StuckAt::input(and, 0, true)));
        // The AND output is constant 0 as well.
        assert!(consts.is_unexcitable(&n, StuckAt::output(and, false)));
    }
}
