//! PODEM combinational test generation with redundancy identification.
//!
//! The engine works on the full-scan combinational frame: primary inputs and
//! flip-flop outputs are controllable (unless constrained), primary outputs
//! and flip-flop inputs are observation points (unless masked). A fault for
//! which the decision space is exhausted without finding a test is *redundant*
//! (structurally untestable); a fault for which the backtrack limit is hit is
//! *aborted* and stays potentially testable.

use crate::compiled::SimScratch;
use crate::constant::ConstraintSet;
use crate::logic::Logic;
use crate::sim::{CombSim, NetValues};
use faultmodel::{FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// Configuration of the PODEM engine.
#[derive(Clone, Copy, Debug)]
pub struct PodemConfig {
    /// Maximum number of backtracks before giving up on a fault.
    pub backtrack_limit: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 10_000,
        }
    }
}

/// A test pattern found by PODEM: values for the controllable inputs
/// (unassigned inputs are don't-care).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPattern {
    /// Assignments to controllable input nets.
    pub assignments: HashMap<NetId, bool>,
}

/// Result of test generation for one fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found.
    Test(TestPattern),
    /// The fault is proven untestable in the combinational frame.
    Redundant,
    /// The backtrack limit was exceeded; the fault stays unclassified.
    Aborted,
}

/// Result of an untestability *proof* attempt for one fault — the pattern-free
/// view of [`PodemOutcome`] used by the proof stage of the identification
/// flow (see [`crate::proof`]).
///
/// The three-way split is load-bearing: only a fault whose decision space was
/// *exhausted* is [`ProvenUntestable`](Self::ProvenUntestable); a fault whose
/// search ran out of backtrack budget is [`Aborted`](Self::Aborted) and must
/// never be classified untestable, or real test escapes would be silently
/// screened out of the coverage denominator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProofOutcome {
    /// A test exists under the constraints: the fault is testable.
    TestExists,
    /// The decision space was exhausted without finding a test: the fault is
    /// proven untestable under the constraints.
    ProvenUntestable,
    /// The backtrack budget ran out before the search completed; the fault
    /// stays potentially testable.
    Aborted,
}

/// The PODEM test generator.
///
/// The engine owns reusable good/faulty value buffers and a propagation
/// scratch, so repeated [`generate`](Self::generate) calls allocate nothing
/// on the simulation path (which is why `generate` takes `&mut self`).
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    sim: CombSim<'a>,
    config: PodemConfig,
    forced: HashMap<NetId, Logic>,
    controllable: HashSet<NetId>,
    observation_nets: Vec<NetId>,
    observation_pins: HashSet<(CellId, netlist::PinIndex)>,
    scratch: SimScratch,
    good_buf: NetValues,
    faulty_buf: NetValues,
    last_backtracks: usize,
}

impl<'a> Podem<'a> {
    /// Builds a PODEM engine for the given design and environment.
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the combinational logic is cyclic.
    pub fn new(
        netlist: &'a Netlist,
        constraints: &ConstraintSet,
        config: PodemConfig,
    ) -> Result<Self, graph::CombinationalLoop> {
        let sim = CombSim::new(netlist)?;
        let forced = constraints.forced_nets.clone();
        let mut controllable = HashSet::new();
        for net in netlist.primary_input_nets() {
            if !forced.contains_key(&net) {
                controllable.insert(net);
            }
        }
        if constraints.control_ff_outputs {
            for ff in netlist.sequential_cells() {
                if let Some(q) = netlist.output_net(ff) {
                    if !forced.contains_key(&q) {
                        controllable.insert(q);
                    }
                }
            }
        }
        let mut observation_nets = Vec::new();
        let mut observation_pins = HashSet::new();
        for po in netlist.primary_outputs() {
            if constraints.masked_outputs.contains(&po) {
                continue;
            }
            observation_nets.push(netlist.cell(po).inputs()[0]);
            observation_pins.insert((po, 0));
        }
        if constraints.observe_ff_inputs {
            for ff in netlist.sequential_cells() {
                for (pin, &net) in netlist.cell(ff).inputs().iter().enumerate() {
                    observation_nets.push(net);
                    observation_pins.insert((ff, pin as netlist::PinIndex));
                }
            }
        }
        observation_nets.sort_unstable();
        observation_nets.dedup();
        let scratch = sim.scratch();
        let good_buf = sim.blank_values();
        let faulty_buf = sim.blank_values();
        Ok(Podem {
            netlist,
            sim,
            config,
            forced,
            controllable,
            observation_nets,
            observation_pins,
            scratch,
            good_buf,
            faulty_buf,
            last_backtracks: 0,
        })
    }

    /// Backtracks spent by the most recent [`generate`](Self::generate) /
    /// [`prove`](Self::prove) call — the consumed part of the per-fault
    /// backtrack budget.
    pub fn last_backtracks(&self) -> usize {
        self.last_backtracks
    }

    /// The net carrying the fault-free value of the fault site.
    fn site_net(&self, fault: StuckAt) -> Option<NetId> {
        match fault.site {
            FaultSite::CellOutput { cell } => self.netlist.output_net(cell),
            FaultSite::CellInput { cell, pin } => Some(self.netlist.input_net(cell, pin)),
        }
    }

    fn simulate_into(
        &self,
        assignments: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
        values: &mut NetValues,
        scratch: &mut SimScratch,
    ) {
        values.fill(Logic::X);
        for (&net, &v) in assignments {
            values[net.index()] = v;
        }
        self.sim
            .propagate_with(values, &self.forced, fault, scratch);
    }

    fn is_detected(&self, fault: StuckAt, good: &NetValues, faulty: &NetValues) -> bool {
        // A difference at any observation net.
        for &net in &self.observation_nets {
            let g = good[net.index()];
            let f = faulty[net.index()];
            if g.is_definite() && f.is_definite() && g != f {
                return true;
            }
        }
        // Branch fault directly on an observation pin: detected as soon as the
        // fault-free value at that pin differs from the stuck value.
        if let FaultSite::CellInput { cell, pin } = fault.site {
            if self.observation_pins.contains(&(cell, pin)) {
                let net = self.netlist.input_net(cell, pin);
                let g = good[net.index()];
                if g.is_definite() && g != Logic::from_bool(fault.value) {
                    return true;
                }
            }
        }
        false
    }

    /// Cells on the D-frontier: the fault effect is present on at least one
    /// input (either because the driving net carries a difference, or because
    /// the cell itself hosts an excited branch fault) but the output does not
    /// yet show a definite difference.
    fn d_frontier(&self, fault: StuckAt, good: &NetValues, faulty: &NetValues) -> Vec<CellId> {
        let mut frontier = Vec::new();
        for (id, cell) in self.netlist.live_cells() {
            if !cell.kind().is_combinational() {
                continue;
            }
            let Some(out) = cell.output() else { continue };
            let out_diff = {
                let g = good[out.index()];
                let f = faulty[out.index()];
                g.is_definite() && f.is_definite() && g != f
            };
            if out_diff {
                continue;
            }
            let mut has_input_diff = cell.inputs().iter().any(|&n| {
                let g = good[n.index()];
                let f = faulty[n.index()];
                g.is_definite() && f.is_definite() && g != f
            });
            // An excited branch fault on this very cell is a fault effect at
            // its input even though the driving net value is unchanged.
            if let FaultSite::CellInput { cell: fc, pin } = fault.site {
                if fc == id {
                    let g = good[self.netlist.input_net(fc, pin).index()];
                    if g.is_definite() && g != Logic::from_bool(fault.value) {
                        has_input_diff = true;
                    }
                }
            }
            let out_undecided = good[out.index()] == Logic::X || faulty[out.index()] == Logic::X;
            if has_input_diff && out_undecided {
                frontier.push(id);
            }
        }
        frontier
    }

    /// Backtraces an objective `(net, value)` to an unassigned controllable
    /// input. Returns `None` when no X-path to a free input exists.
    fn backtrace(
        &self,
        mut net: NetId,
        mut value: bool,
        good: &NetValues,
        assignments: &HashMap<NetId, Logic>,
    ) -> Option<(NetId, bool)> {
        for _ in 0..self.netlist.num_cells() + 1 {
            if self.controllable.contains(&net) && !assignments.contains_key(&net) {
                return Some((net, value));
            }
            if self.forced.contains_key(&net) {
                return None;
            }
            let driver = self.netlist.driver_of(net)?;
            let cell = self.netlist.cell(driver);
            let kind = cell.kind();
            if !kind.is_combinational() {
                // Reached a flip-flop or port that is not controllable.
                return None;
            }
            let x_inputs: Vec<usize> = cell
                .inputs()
                .iter()
                .enumerate()
                .filter(|&(_, &n)| good[n.index()] == Logic::X)
                .map(|(i, _)| i)
                .collect();
            if x_inputs.is_empty() {
                return None;
            }
            let (next_pin, next_value) = match kind {
                CellKind::Buf => (x_inputs[0], value),
                CellKind::Not => (x_inputs[0], !value),
                CellKind::And(_) | CellKind::Nand(_) | CellKind::Or(_) | CellKind::Nor(_) => {
                    let inverting = matches!(kind, CellKind::Nand(_) | CellKind::Nor(_));
                    let want = value ^ inverting;
                    let identity = matches!(kind, CellKind::And(_) | CellKind::Nand(_));
                    // AND family: identity value 1; OR family: identity 0.
                    if want == identity {
                        // All inputs must take the identity value: pick any X.
                        (x_inputs[0], identity)
                    } else {
                        // A single controlling input suffices.
                        (x_inputs[0], !identity)
                    }
                }
                CellKind::Xor(_) | CellKind::Xnor(_) => {
                    let inverting = matches!(kind, CellKind::Xnor(_));
                    let parity_known = cell
                        .inputs()
                        .iter()
                        .filter_map(|&n| good[n.index()].to_bool())
                        .fold(false, |acc, b| acc ^ b);
                    // Setting all-but-one X inputs to 0 keeps their parity
                    // neutral; the chosen input provides the remainder.
                    let want = value ^ inverting ^ parity_known;
                    (x_inputs[0], want)
                }
                CellKind::Mux2 => {
                    let s = good[cell.inputs()[2].index()];
                    match s {
                        Logic::Zero => (0, value),
                        Logic::One => (1, value),
                        Logic::X => (2, false),
                    }
                }
                _ => (x_inputs[0], value),
            };
            // Guard: the chosen pin must still be X (for MUX the fixed choice
            // might not be).
            let n = cell.inputs()[next_pin];
            if good[n.index()] != Logic::X {
                // Fall back to any X input with the same desired value.
                net = cell.inputs()[x_inputs[0]];
                value = next_value;
                continue;
            }
            net = n;
            value = next_value;
        }
        None
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: StuckAt) -> PodemOutcome {
        // Temporarily move the reusable buffers out of `self` so the borrow
        // checker lets the read-only engine use them alongside `&self`.
        let mut good = std::mem::take(&mut self.good_buf);
        let mut faulty = std::mem::take(&mut self.faulty_buf);
        let mut scratch = std::mem::take(&mut self.scratch);
        let (outcome, backtracks) =
            self.generate_inner(fault, &mut good, &mut faulty, &mut scratch);
        self.good_buf = good;
        self.faulty_buf = faulty;
        self.scratch = scratch;
        self.last_backtracks = backtracks;
        outcome
    }

    /// Runs an untestability proof attempt for `fault`: like
    /// [`generate`](Self::generate) but discarding the test pattern, so the
    /// result is `Copy` and cheap to collect in bulk (the shape the parallel
    /// proof engine in [`crate::proof`] fans out over worker threads).
    pub fn prove(&mut self, fault: StuckAt) -> ProofOutcome {
        match self.generate(fault) {
            PodemOutcome::Test(_) => ProofOutcome::TestExists,
            PodemOutcome::Redundant => ProofOutcome::ProvenUntestable,
            PodemOutcome::Aborted => ProofOutcome::Aborted,
        }
    }

    fn generate_inner(
        &self,
        fault: StuckAt,
        good: &mut NetValues,
        faulty: &mut NetValues,
        scratch: &mut SimScratch,
    ) -> (PodemOutcome, usize) {
        let Some(site_net) = self.site_net(fault) else {
            // Detached output pin: nothing to excite or observe — redundant in
            // this frame.
            return (PodemOutcome::Redundant, 0);
        };
        if good.len() != self.netlist.num_nets() {
            *good = self.sim.blank_values();
        }
        if faulty.len() != self.netlist.num_nets() {
            *faulty = self.sim.blank_values();
        }
        let stuck = Logic::from_bool(fault.value);
        let mut assignments: HashMap<NetId, Logic> = HashMap::new();
        // Decision stack: (net, current value, tried_both).
        let mut stack: Vec<(NetId, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            self.simulate_into(&assignments, None, good, scratch);
            self.simulate_into(&assignments, Some(fault), faulty, scratch);

            if self.is_detected(fault, good, faulty) {
                let pattern = TestPattern {
                    assignments: assignments
                        .iter()
                        .filter_map(|(&n, &v)| v.to_bool().map(|b| (n, b)))
                        .collect(),
                };
                return (PodemOutcome::Test(pattern), backtracks);
            }

            let site_value = good[site_net.index()];
            let excitation_conflict = site_value.is_definite() && site_value == stuck;
            let frontier = self.d_frontier(fault, good, faulty);
            let excited = site_value.is_definite() && site_value != stuck;
            let dead_end = excitation_conflict || (excited && frontier.is_empty());

            let objective = if dead_end {
                None
            } else if !excited {
                Some((site_net, !fault.value))
            } else {
                // Advance the D-frontier: set an X side input of a frontier
                // gate to its non-controlling value.
                let mut obj = None;
                'outer: for &gate in &frontier {
                    let cell = self.netlist.cell(gate);
                    let noncontrolling = match cell.kind().controlling_value() {
                        Some(cv) => !cv,
                        None => true,
                    };
                    for &n in cell.inputs() {
                        if good[n.index()] == Logic::X {
                            obj = Some((n, noncontrolling));
                            break 'outer;
                        }
                    }
                }
                obj
            };

            let decision =
                objective.and_then(|(net, value)| self.backtrace(net, value, good, &assignments));

            match decision {
                Some((input, value)) => {
                    assignments.insert(input, Logic::from_bool(value));
                    stack.push((input, value, false));
                }
                None => {
                    // Backtrack. Exhausting the decision stack is the
                    // untestability proof; running out of backtrack budget is
                    // a *give-up* and must stay distinguishable (Aborted), or
                    // callers would screen potentially testable faults out of
                    // the coverage denominator.
                    loop {
                        match stack.pop() {
                            None => return (PodemOutcome::Redundant, backtracks),
                            Some((input, value, tried_both)) => {
                                assignments.remove(&input);
                                if !tried_both {
                                    backtracks += 1;
                                    if backtracks > self.config.backtrack_limit {
                                        return (PodemOutcome::Aborted, backtracks);
                                    }
                                    assignments.insert(input, Logic::from_bool(!value));
                                    stack.push((input, !value, true));
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn engine_default(netlist: &Netlist) -> Podem<'_> {
        Podem::new(netlist, &ConstraintSet::full_scan(), PodemConfig::default()).unwrap()
    }

    #[test]
    fn finds_test_for_simple_and() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut podem = engine_default(&n);
        match podem.generate(StuckAt::output(and, false)) {
            PodemOutcome::Test(pattern) => {
                assert_eq!(pattern.assignments.get(&a), Some(&true));
                assert_eq!(pattern.assignments.get(&c), Some(&true));
            }
            other => panic!("expected a test, got {other:?}"),
        }
        assert!(matches!(
            podem.generate(StuckAt::input(and, 0, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn proves_classic_redundancy() {
        // y = a OR (a AND b): the AND-output stuck-at-0 is redundant.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let mut podem = engine_default(&n);
        assert_eq!(
            podem.generate(StuckAt::output(and, false)),
            PodemOutcome::Redundant
        );
        // The same fault stuck-at-1 is testable (a=0, b=1 → y flips).
        assert!(matches!(
            podem.generate(StuckAt::output(and, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn respects_forced_inputs() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let mut podem = Podem::new(&n, &constraints, PodemConfig::default()).unwrap();
        // With a tied to 0 the AND output can never be 1: s-a-0 has no test.
        assert_eq!(
            podem.generate(StuckAt::output(and, false)),
            PodemOutcome::Redundant
        );
        // ... but s-a-1 is testable (set b=1, output should be 0, faulty 1).
        assert!(matches!(
            podem.generate(StuckAt::output(and, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn uses_ff_boundaries_as_pseudo_ports() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ck = b.input("ck");
        let q = b.dff(a, ck);
        let y = b.not(q);
        let d2 = b.and2(y, a);
        let _q2 = b.dff(d2, ck);
        let n = b.finish();
        let inv = n.driver_of(y).unwrap();
        let mut podem = engine_default(&n);
        // The inverter sits between two flip-flops; in the full-scan frame it
        // is both controllable (via q) and observable (via the second FF's D).
        assert!(matches!(
            podem.generate(StuckAt::output(inv, false)),
            PodemOutcome::Test(_)
        ));
        assert!(matches!(
            podem.generate(StuckAt::output(inv, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn detects_observation_pin_branch_faults() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish();
        let po = n.primary_outputs()[0];
        let mut podem = engine_default(&n);
        assert!(matches!(
            podem.generate(StuckAt::input(po, 0, false)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn masked_output_makes_cone_redundant() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let dbg = b.not(a);
        let y = b.buf(a);
        b.output("dbg", dbg);
        b.output("y", y);
        let n = b.finish();
        let inv = n.driver_of(dbg).unwrap();
        let dbg_po = n
            .primary_outputs()
            .into_iter()
            .find(|&po| n.cell(po).name() == "dbg")
            .unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.mask_output(dbg_po);
        let mut podem = Podem::new(&n, &constraints, PodemConfig::default()).unwrap();
        assert_eq!(
            podem.generate(StuckAt::output(inv, false)),
            PodemOutcome::Redundant
        );
    }

    #[test]
    fn xor_tree_tests_found() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 4);
        let p = b.reduce_xor(&a);
        b.output("p", p);
        let n = b.finish();
        let mut podem = engine_default(&n);
        let mut faults = faultmodel::FaultList::full_universe(&n);
        let mut tests = 0;
        let mut redundant = 0;
        let all: Vec<StuckAt> = faults.faults().to_vec();
        for fault in all {
            match podem.generate(fault) {
                PodemOutcome::Test(_) => tests += 1,
                PodemOutcome::Redundant => redundant += 1,
                PodemOutcome::Aborted => {}
            }
        }
        // An XOR tree has no redundant faults.
        assert_eq!(redundant, 0);
        assert_eq!(tests, faults.len());
        let _ = &mut faults;
    }

    #[test]
    fn exhausted_backtrack_budget_reports_aborted_not_redundant() {
        // Regression for the Aborted/ProvenUntestable distinction: the same
        // redundant fault must be *proven* under a generous budget and
        // *aborted* — never misreported as redundant — when the budget
        // truncates the search. y = a OR (a AND b): AND-output s-a-0 needs at
        // least one backtrack before the decision space is exhausted.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let fault = StuckAt::output(and, false);

        let mut generous = engine_default(&n);
        assert_eq!(generous.generate(fault), PodemOutcome::Redundant);
        assert!(
            generous.last_backtracks() > 0,
            "proof must spend backtracks"
        );
        assert_eq!(generous.prove(fault), ProofOutcome::ProvenUntestable);

        let mut truncated = Podem::new(
            &n,
            &ConstraintSet::full_scan(),
            PodemConfig { backtrack_limit: 0 },
        )
        .unwrap();
        assert_eq!(truncated.generate(fault), PodemOutcome::Aborted);
        assert_eq!(truncated.prove(fault), ProofOutcome::Aborted);
        // A testable fault is still found even with a zero budget (no
        // backtracking needed on this path).
        assert_eq!(
            truncated.prove(StuckAt::output(and, true)),
            ProofOutcome::TestExists
        );
    }

    #[test]
    fn prove_matches_generate_on_every_outcome_kind() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let mut podem = engine_default(&n);
        for fault in faultmodel::FaultList::full_universe(&n).faults().to_vec() {
            let expected = match podem.generate(fault) {
                PodemOutcome::Test(_) => ProofOutcome::TestExists,
                PodemOutcome::Redundant => ProofOutcome::ProvenUntestable,
                PodemOutcome::Aborted => ProofOutcome::Aborted,
            };
            assert_eq!(podem.prove(fault), expected, "{fault:?}");
        }
    }

    #[test]
    fn generated_test_actually_detects_the_fault() {
        use crate::fault_sim::FaultSim;
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 3);
        let c = b.input("c");
        let t1 = b.and2(a[0], a[1]);
        let t2 = b.or2(t1, a[2]);
        let y = b.xor2(t2, c);
        b.output("y", y);
        let n = b.finish();
        let mut podem = engine_default(&n);
        let or = n.driver_of(t2).unwrap();
        let fault = StuckAt::output(or, false);
        let PodemOutcome::Test(pattern) = podem.generate(fault) else {
            panic!("expected test");
        };
        let sim = FaultSim::new(&n).unwrap();
        let vector: crate::fault_sim::InputVector = pattern.assignments.clone();
        assert_eq!(sim.detect(&[fault], &[vector]), vec![true]);
    }
}
