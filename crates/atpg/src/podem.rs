//! PODEM combinational test generation with redundancy identification.
//!
//! The engine works on the full-scan combinational frame: primary inputs and
//! flip-flop outputs are controllable (unless constrained), primary outputs
//! and flip-flop inputs are observation points (unless masked). A fault for
//! which the decision space is exhausted without finding a test is *redundant*
//! (structurally untestable); a fault for which the backtrack limit is hit is
//! *aborted* and stays potentially testable.
//!
//! Three classical accelerations are built in:
//!
//! * **Cone clipping** ([`PodemConfig::cone_clip`]): per fault the engine
//!   extracts the site's fanout cone ([`netlist::graph::ConeExtractor`]) —
//!   the only region where the faulty machine can differ from the good one —
//!   and runs faulty simulation, D-frontier scanning and detection over that
//!   usually tiny set, while the good machine is maintained *incrementally*:
//!   each decision re-evaluates only the gates its assignment actually
//!   reaches (event-driven, in topological order), and retraction restores
//!   the baseline for the next fault. Clipping changes no decision: the
//!   clipped engine's outcomes and backtrack counts are bit-identical to the
//!   full engine's.
//! * **SCOAP guidance** ([`PodemConfig::scoap_guidance`]): constraint-aware
//!   CC0/CC1/CO measures ([`crate::scoap`]) steer objective selection toward
//!   the most observable D-frontier gate and steer backtrace toward cheap
//!   controlling assignments (easiest-first for "any input suffices",
//!   hardest-first for "all inputs required"), pruning backtracks. Guidance
//!   reorders the search, so concluded verdicts are unchanged but a
//!   budget-truncated search may abort on different faults.
//! * **The X-path check** ([`PodemConfig::x_path_check`]): when no frontier
//!   gate can still reach
//!   an observation point through undecided nets, the search backtracks
//!   immediately — three-valued simulation is monotone, so such a branch can
//!   never produce a test. Under mission constraints (masked observation
//!   points, forced side inputs) this turns a large share of slow
//!   backtrack-budget aborts into fast untestability proofs.

use crate::compiled::{CompiledProgram, SimScratch, NO_INDEX};
use crate::constant::ConstraintSet;
use crate::logic::Logic;
use crate::scoap::{compute_scoap, Scoap};
use crate::sim::{CombSim, NetValues};
use faultmodel::{FaultSite, StuckAt};
use netlist::{graph, CellId, CellKind, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// Configuration of the PODEM engine.
#[derive(Clone, Copy, Debug)]
pub struct PodemConfig {
    /// Maximum number of backtracks before giving up on a fault.
    pub backtrack_limit: usize,
    /// Clip each fault's search to its cones: faulty simulation, D-frontier
    /// scanning and detection run over the site's fanout cone only, and the
    /// good machine is maintained incrementally instead of re-simulated.
    /// Identical decisions, far less work per decision.
    pub cone_clip: bool,
    /// Steer objective selection and backtrace with constraint-aware SCOAP
    /// testability measures. Same concluded verdicts, fewer backtracks.
    pub scoap_guidance: bool,
    /// Backtrack as soon as no D-frontier gate can reach an observation
    /// point through undecided nets (the classical X-path check). Sound:
    /// concluded verdicts are unchanged, hopeless branches just die earlier.
    pub x_path_check: bool,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 10_000,
            cone_clip: true,
            scoap_guidance: true,
            x_path_check: true,
        }
    }
}

/// A test pattern found by PODEM: values for the controllable inputs
/// (unassigned inputs are don't-care).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPattern {
    /// Assignments to controllable input nets.
    pub assignments: HashMap<NetId, bool>,
}

/// Result of test generation for one fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found.
    Test(TestPattern),
    /// The fault is proven untestable in the combinational frame.
    Redundant,
    /// The backtrack limit was exceeded; the fault stays unclassified.
    Aborted,
}

/// Result of an untestability *proof* attempt for one fault — the pattern-free
/// view of [`PodemOutcome`] used by the proof stage of the identification
/// flow (see [`crate::proof`]).
///
/// The three-way split is load-bearing: only a fault whose decision space was
/// *exhausted* is [`ProvenUntestable`](Self::ProvenUntestable); a fault whose
/// search ran out of backtrack budget is [`Aborted`](Self::Aborted) and must
/// never be classified untestable, or real test escapes would be silently
/// screened out of the coverage denominator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProofOutcome {
    /// A test exists under the constraints: the fault is testable.
    TestExists,
    /// The decision space was exhausted without finding a test: the fault is
    /// proven untestable under the constraints.
    ProvenUntestable,
    /// The backtrack budget ran out before the search completed; the fault
    /// stays potentially testable.
    Aborted,
}

/// Per-engine cone-clipping machinery: the reusable netlist cone extractor,
/// the dense cell→gate map of the compiled program, and the per-fault clipped
/// views. Rebuilt by [`prepare`](Self::prepare) for every fault;
/// allocation-free once the buffers have grown to the largest cone.
///
/// The clipped engine splits the work along the two cones of a fault site:
///
/// * the **good machine** is global and *incremental*: initialised once per
///   engine (ties and forced nets applied, everything else X) and updated by
///   an event queue — each new assignment re-evaluates only the gates its
///   change actually reaches, and retracting the assignments at the end of a
///   fault restores the baseline, so no per-fault or per-decision whole-design
///   walk exists at all;
/// * the **fanout cone** of the site (stopping at the sequential / output
///   boundary) is the only region where the faulty machine can differ from
///   the good one, so faulty simulation, D-frontier scanning and detection
///   checks all run over this usually tiny set.
#[derive(Debug)]
struct ClipEngine {
    extractor: graph::ConeExtractor,
    /// Cell arena index → compiled gate-program index (`NO_INDEX` if none).
    gate_of_cell: Vec<u32>,
    /// Dense never-overwrite bitmap of the constraint-forced nets.
    forced_mask: Vec<bool>,
    /// Fanout-cone cells that compiled to gates, in arena order — the
    /// D-frontier scan set (identical iteration order to the full engine's
    /// live-cell walk, restricted to the cells that can carry an effect).
    fanout_cells: Vec<CellId>,
    /// Gate-program indices of `fanout_cells`, ascending — the faulty
    /// machine's evaluation program.
    fanout_gates: Vec<u32>,
    /// The fanout neighbourhood: the site net plus every net a fanout-cone
    /// cell reads or writes — the nets whose faulty value can differ from
    /// the good value, synced into the faulty buffer each iteration.
    neighborhood: Vec<u32>,
    /// Dense membership bitmap over `neighborhood` (cleared incrementally).
    net_in_neighborhood: Vec<bool>,
    /// Observation nets inside the neighbourhood — the only observation
    /// points a fault effect can ever reach.
    obs_nets: Vec<NetId>,
}

impl ClipEngine {
    fn new(netlist: &Netlist, program: &CompiledProgram, forced: &HashMap<NetId, Logic>) -> Self {
        let mut forced_mask = vec![false; netlist.num_nets()];
        for &net in forced.keys() {
            forced_mask[net.index()] = true;
        }
        ClipEngine {
            extractor: graph::ConeExtractor::new(netlist),
            gate_of_cell: program.gate_index_by_cell(),
            forced_mask,
            fanout_cells: Vec::new(),
            fanout_gates: Vec::new(),
            neighborhood: Vec::new(),
            net_in_neighborhood: vec![false; netlist.num_nets()],
            obs_nets: Vec::new(),
        }
    }

    /// Extracts the fanout cone of `site_net` and lowers it into the clipped
    /// faulty-machine views.
    fn prepare(&mut self, netlist: &Netlist, observation_nets: &[NetId], site_net: NetId) {
        for &n in &self.neighborhood {
            self.net_in_neighborhood[n as usize] = false;
        }
        self.fanout_cells.clear();
        self.fanout_gates.clear();
        self.neighborhood.clear();
        self.obs_nets.clear();

        let ClipEngine {
            extractor,
            gate_of_cell,
            fanout_cells,
            fanout_gates,
            neighborhood,
            net_in_neighborhood,
            ..
        } = self;
        let mut reach = |net: NetId| {
            let i = net.index();
            if !net_in_neighborhood[i] {
                net_in_neighborhood[i] = true;
                neighborhood.push(i as u32);
            }
        };
        reach(site_net);
        for &cell_id in extractor.fanout_cone_with(netlist, &[site_net]) {
            let cell = netlist.cell(cell_id);
            let g = gate_of_cell[cell_id.index()];
            if g != NO_INDEX {
                // Arena order: the extractor returns cells sorted by index.
                fanout_cells.push(cell_id);
                fanout_gates.push(g);
            }
            for &n in cell.inputs() {
                reach(n);
            }
            if let Some(out) = cell.output() {
                reach(out);
            }
        }
        // Gate indices are topological; the sorted subset is a valid
        // evaluation order.
        self.fanout_gates.sort_unstable();
        for &net in observation_nets {
            if self.net_in_neighborhood[net.index()] {
                self.obs_nets.push(net);
            }
        }
    }
}

/// Reusable per-engine search scratch: the event queue of the incremental
/// good-machine updates — a min-heap of dirty gate-program indices
/// (topological, so each gate settles in a single visit per wave) plus the
/// dirty bitmap that dedupes insertions — and the visited set of the X-path
/// reachability check.
#[derive(Debug, Default)]
struct SearchScratch {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
    dirty: Vec<bool>,
    visited: Vec<bool>,
    touched: Vec<u32>,
    stack: Vec<u32>,
}

/// The PODEM test generator.
///
/// The engine owns reusable good/faulty value buffers and a propagation
/// scratch, so repeated [`generate`](Self::generate) calls allocate nothing
/// on the simulation path (which is why `generate` takes `&mut self`).
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    sim: CombSim<'a>,
    config: PodemConfig,
    forced: HashMap<NetId, Logic>,
    controllable: HashSet<NetId>,
    observation_nets: Vec<NetId>,
    observation_pins: HashSet<(CellId, netlist::PinIndex)>,
    scratch: SimScratch,
    good_buf: NetValues,
    faulty_buf: NetValues,
    last_backtracks: usize,
    /// Cooperative interrupt flag polled once per search step; `true` aborts
    /// the current search.
    interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Wall-clock deadline polled alongside the interrupt flag.
    deadline: Option<std::time::Instant>,
    /// Whether the most recent search aborted because of the interrupt flag
    /// or the deadline rather than the backtrack budget.
    last_interrupted: bool,
    scoap: Option<Scoap>,
    clip: Option<ClipEngine>,
    search: SearchScratch,
    /// Dense membership bitmap of `observation_nets` — the target set of the
    /// X-path reachability check.
    is_obs_net: Vec<bool>,
}

impl<'a> Podem<'a> {
    /// Builds a PODEM engine for the given design and environment.
    ///
    /// # Errors
    ///
    /// Returns the levelization error if the combinational logic is cyclic.
    pub fn new(
        netlist: &'a Netlist,
        constraints: &ConstraintSet,
        config: PodemConfig,
    ) -> Result<Self, graph::CombinationalLoop> {
        let sim = CombSim::new(netlist)?;
        let forced = constraints.forced_nets.clone();
        let mut controllable = HashSet::new();
        for net in netlist.primary_input_nets() {
            if !forced.contains_key(&net) {
                controllable.insert(net);
            }
        }
        if constraints.control_ff_outputs {
            for ff in netlist.sequential_cells() {
                if let Some(q) = netlist.output_net(ff) {
                    if !forced.contains_key(&q) {
                        controllable.insert(q);
                    }
                }
            }
        }
        let mut observation_nets = Vec::new();
        let mut observation_pins = HashSet::new();
        for po in netlist.primary_outputs() {
            if constraints.masked_outputs.contains(&po) {
                continue;
            }
            observation_nets.push(netlist.cell(po).inputs()[0]);
            observation_pins.insert((po, 0));
        }
        if constraints.observe_ff_inputs {
            for ff in netlist.sequential_cells() {
                for (pin, &net) in netlist.cell(ff).inputs().iter().enumerate() {
                    observation_nets.push(net);
                    observation_pins.insert((ff, pin as netlist::PinIndex));
                }
            }
        }
        observation_nets.sort_unstable();
        observation_nets.dedup();
        let mut scratch = sim.scratch();
        let mut good_buf = sim.blank_values();
        let faulty_buf = sim.blank_values();
        let scoap = if config.scoap_guidance {
            Some(compute_scoap(netlist, constraints)?)
        } else {
            None
        };
        let clip = config
            .cone_clip
            .then(|| ClipEngine::new(netlist, sim.program(), &forced));
        if clip.is_some() {
            // Baseline of the incremental good machine: ties and forced nets
            // applied, every free net X. The search applies and retracts its
            // assignments through the event queue, always returning here.
            sim.propagate_with(&mut good_buf, &forced, None, &mut scratch);
        }
        let search = SearchScratch {
            heap: std::collections::BinaryHeap::new(),
            dirty: vec![
                false;
                if clip.is_some() {
                    sim.program().num_gates()
                } else {
                    0
                }
            ],
            visited: vec![false; netlist.num_nets()],
            touched: Vec::new(),
            stack: Vec::new(),
        };
        let mut is_obs_net = vec![false; netlist.num_nets()];
        for &net in &observation_nets {
            is_obs_net[net.index()] = true;
        }
        Ok(Podem {
            netlist,
            sim,
            config,
            forced,
            controllable,
            observation_nets,
            observation_pins,
            scratch,
            good_buf,
            faulty_buf,
            last_backtracks: 0,
            interrupt: None,
            deadline: None,
            last_interrupted: false,
            scoap,
            clip,
            search,
            is_obs_net,
        })
    }

    /// Backtracks spent by the most recent [`generate`](Self::generate) /
    /// [`prove`](Self::prove) call — the consumed part of the per-fault
    /// backtrack budget.
    pub fn last_backtracks(&self) -> usize {
        self.last_backtracks
    }

    /// Installs (or clears) the cooperative search limits: an interrupt flag
    /// and a wall-clock deadline, both polled once per search step. When
    /// either trips, the search gives up with
    /// [`PodemOutcome::Aborted`] and
    /// [`last_search_interrupted`](Self::last_search_interrupted) reads
    /// `true` — distinguishing a wall-clock give-up from a deterministic
    /// backtrack-budget one.
    pub fn set_search_limits(
        &mut self,
        interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
        deadline: Option<std::time::Instant>,
    ) {
        self.interrupt = interrupt;
        self.deadline = deadline;
    }

    /// Whether the most recent [`generate`](Self::generate) /
    /// [`prove`](Self::prove) aborted because the interrupt flag or the
    /// deadline tripped (as opposed to exhausting the backtrack budget).
    pub fn last_search_interrupted(&self) -> bool {
        self.last_interrupted
    }

    /// The interrupt flag reads `true` or the deadline has passed.
    fn stop_requested(&self) -> bool {
        if self
            .interrupt
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed))
        {
            return true;
        }
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The net carrying the fault-free value of the fault site.
    fn site_net(&self, fault: StuckAt) -> Option<NetId> {
        match fault.site {
            FaultSite::CellOutput { cell } => self.netlist.output_net(cell),
            FaultSite::CellInput { cell, pin } => Some(self.netlist.input_net(cell, pin)),
        }
    }

    fn simulate_into(
        &self,
        assignments: &HashMap<NetId, Logic>,
        fault: Option<StuckAt>,
        values: &mut NetValues,
        scratch: &mut SimScratch,
    ) {
        values.fill(Logic::X);
        for (&net, &v) in assignments {
            values[net.index()] = v;
        }
        self.sim
            .propagate_with(values, &self.forced, fault, scratch);
    }

    /// Sets a controllable net of the good machine and queues its load gates
    /// for re-evaluation. Call [`good_flush`](Self::good_flush) before the
    /// next read.
    fn good_set(
        &self,
        clip: &ClipEngine,
        search: &mut SearchScratch,
        values: &mut NetValues,
        net: NetId,
        value: Logic,
    ) {
        if values[net.index()] == value {
            return;
        }
        values[net.index()] = value;
        self.enqueue_loads(clip, search, net);
    }

    fn enqueue_loads(&self, clip: &ClipEngine, search: &mut SearchScratch, net: NetId) {
        for load in self.netlist.loads_of(net) {
            let g = clip.gate_of_cell[load.cell.index()];
            if g != NO_INDEX && !search.dirty[g as usize] {
                search.dirty[g as usize] = true;
                search.heap.push(std::cmp::Reverse(g));
            }
        }
    }

    /// Propagates queued good-machine events to quiescence. Gates settle in
    /// ascending (topological) program order, so each is visited at most once
    /// per wave and the result equals a from-scratch propagation — the
    /// incremental update changes values, never decisions.
    fn good_flush(&self, clip: &ClipEngine, search: &mut SearchScratch, values: &mut NetValues) {
        let program = self.sim.program();
        while let Some(std::cmp::Reverse(g)) = search.heap.pop() {
            let gi = g as usize;
            search.dirty[gi] = false;
            let new = program.eval_gate_scalar(gi, values);
            let out = program.gate_output(gi) as usize;
            if clip.forced_mask[out] || values[out] == new {
                continue;
            }
            values[out] = new;
            self.enqueue_loads(clip, search, NetId::from_index(out));
        }
    }

    /// One faulty-machine evaluation: syncs the fanout neighbourhood from the
    /// good machine, injects the fault at the site, and re-evaluates only the
    /// fanout cone's gates — outside the fanout cone the faulty machine
    /// equals the good machine by construction, exactly as in a full
    /// propagation.
    fn simulate_faulty_clipped(
        &self,
        clip: &ClipEngine,
        fault: StuckAt,
        site_net: NetId,
        good: &NetValues,
        faulty: &mut NetValues,
    ) {
        for &n in &clip.neighborhood {
            faulty[n as usize] = good[n as usize];
        }
        // An output-pin fault forces the site net directly (its driver is
        // upstream of the fanout cone and never re-evaluated). Combinational
        // drivers respect forced nets, matching the full engine's gate loop;
        // source drivers are overridden unconditionally inside
        // `propagate_scalar_clipped`, also matching the full engine.
        if let FaultSite::CellOutput { cell } = fault.site {
            if self.netlist.cell(cell).kind().is_combinational()
                && !clip.forced_mask[site_net.index()]
            {
                faulty[site_net.index()] = Logic::from_bool(fault.value);
            }
        }
        self.sim.program().propagate_scalar_clipped(
            self.netlist,
            faulty,
            &clip.forced_mask,
            Some(fault),
            &clip.fanout_gates,
        );
    }

    fn is_detected(
        &self,
        fault: StuckAt,
        good: &NetValues,
        faulty: &NetValues,
        obs_nets: &[NetId],
    ) -> bool {
        // A difference at any observation net.
        for &net in obs_nets {
            let g = good[net.index()];
            let f = faulty[net.index()];
            if g.is_definite() && f.is_definite() && g != f {
                return true;
            }
        }
        // Branch fault directly on an observation pin: detected as soon as the
        // fault-free value at that pin differs from the stuck value.
        if let FaultSite::CellInput { cell, pin } = fault.site {
            if self.observation_pins.contains(&(cell, pin)) {
                let net = self.netlist.input_net(cell, pin);
                let g = good[net.index()];
                if g.is_definite() && g != Logic::from_bool(fault.value) {
                    return true;
                }
            }
        }
        false
    }

    /// Cells on the D-frontier: the fault effect is present on at least one
    /// input (either because the driving net carries a difference, or because
    /// the cell itself hosts an excited branch fault) but the output does not
    /// yet show a definite difference.
    ///
    /// With cone clipping the scan covers only the fanout cone's gates — the
    /// only cells that can carry a fault effect — kept in arena order, so the
    /// frontier is identical to the full engine's.
    fn d_frontier(
        &self,
        fault: StuckAt,
        good: &NetValues,
        faulty: &NetValues,
        clip: Option<&ClipEngine>,
    ) -> Vec<CellId> {
        let mut frontier = Vec::new();
        match clip {
            Some(c) => {
                for &id in &c.fanout_cells {
                    self.d_frontier_check(id, fault, good, faulty, &mut frontier);
                }
            }
            None => {
                for (id, cell) in self.netlist.live_cells() {
                    if !cell.kind().is_combinational() {
                        continue;
                    }
                    self.d_frontier_check(id, fault, good, faulty, &mut frontier);
                }
            }
        }
        frontier
    }

    fn d_frontier_check(
        &self,
        id: CellId,
        fault: StuckAt,
        good: &NetValues,
        faulty: &NetValues,
        frontier: &mut Vec<CellId>,
    ) {
        let cell = self.netlist.cell(id);
        let Some(out) = cell.output() else { return };
        let out_diff = {
            let g = good[out.index()];
            let f = faulty[out.index()];
            g.is_definite() && f.is_definite() && g != f
        };
        if out_diff {
            return;
        }
        let mut has_input_diff = cell.inputs().iter().any(|&n| {
            let g = good[n.index()];
            let f = faulty[n.index()];
            g.is_definite() && f.is_definite() && g != f
        });
        // An excited branch fault on this very cell is a fault effect at
        // its input even though the driving net value is unchanged.
        if let FaultSite::CellInput { cell: fc, pin } = fault.site {
            if fc == id {
                let g = good[self.netlist.input_net(fc, pin).index()];
                if g.is_definite() && g != Logic::from_bool(fault.value) {
                    has_input_diff = true;
                }
            }
        }
        let out_undecided = good[out.index()] == Logic::X || faulty[out.index()] == Logic::X;
        if has_input_diff && out_undecided {
            frontier.push(id);
        }
    }

    /// Picks one of `x_inputs` (pin indices of `cell`) to pursue for
    /// `value`: without SCOAP the first (the classical fixed order), with
    /// SCOAP the cheapest (`hardest == false`, for "any input suffices"
    /// objectives) or the costliest (`hardest == true`, for "all inputs
    /// required" objectives — failing fast on the bottleneck input prunes
    /// whole subtrees). Ties keep the first candidate, so the choice is
    /// deterministic.
    fn choose_input(
        &self,
        cell: &netlist::Cell,
        x_inputs: &[usize],
        value: bool,
        hardest: bool,
    ) -> usize {
        let Some(scoap) = &self.scoap else {
            return x_inputs[0];
        };
        let cost = |pin: usize| {
            let net = cell.inputs()[pin];
            if value {
                scoap.cc1(net)
            } else {
                scoap.cc0(net)
            }
        };
        let mut best = x_inputs[0];
        let mut best_cost = cost(best);
        for &pin in &x_inputs[1..] {
            let c = cost(pin);
            if (hardest && c > best_cost) || (!hardest && c < best_cost) {
                best = pin;
                best_cost = c;
            }
        }
        best
    }

    /// Backtraces an objective `(net, value)` to an unassigned controllable
    /// input. Returns `None` when no X-path to a free input exists.
    fn backtrace(
        &self,
        mut net: NetId,
        mut value: bool,
        good: &NetValues,
        assignments: &HashMap<NetId, Logic>,
    ) -> Option<(NetId, bool)> {
        for _ in 0..self.netlist.num_cells() + 1 {
            if self.controllable.contains(&net) && !assignments.contains_key(&net) {
                return Some((net, value));
            }
            if self.forced.contains_key(&net) {
                return None;
            }
            let driver = self.netlist.driver_of(net)?;
            let cell = self.netlist.cell(driver);
            let kind = cell.kind();
            if !kind.is_combinational() {
                // Reached a flip-flop or port that is not controllable.
                return None;
            }
            let x_inputs: Vec<usize> = cell
                .inputs()
                .iter()
                .enumerate()
                .filter(|&(_, &n)| good[n.index()] == Logic::X)
                .map(|(i, _)| i)
                .collect();
            if x_inputs.is_empty() {
                return None;
            }
            let (next_pin, next_value) = match kind {
                CellKind::Buf => (x_inputs[0], value),
                CellKind::Not => (x_inputs[0], !value),
                CellKind::And(_) | CellKind::Nand(_) | CellKind::Or(_) | CellKind::Nor(_) => {
                    let inverting = matches!(kind, CellKind::Nand(_) | CellKind::Nor(_));
                    let want = value ^ inverting;
                    let identity = matches!(kind, CellKind::And(_) | CellKind::Nand(_));
                    // AND family: identity value 1; OR family: identity 0.
                    if want == identity {
                        // All inputs must take the identity value: pick the
                        // hardest-to-control X (fail fast under SCOAP).
                        (self.choose_input(cell, &x_inputs, identity, true), identity)
                    } else {
                        // A single controlling input suffices: the cheapest.
                        (
                            self.choose_input(cell, &x_inputs, !identity, false),
                            !identity,
                        )
                    }
                }
                CellKind::Xor(_) | CellKind::Xnor(_) => {
                    let inverting = matches!(kind, CellKind::Xnor(_));
                    let parity_known = cell
                        .inputs()
                        .iter()
                        .filter_map(|&n| good[n.index()].to_bool())
                        .fold(false, |acc, b| acc ^ b);
                    // Setting all-but-one X inputs to 0 keeps their parity
                    // neutral; the chosen input provides the remainder — any
                    // X works, so take the cheapest for the remainder value.
                    let want = value ^ inverting ^ parity_known;
                    (self.choose_input(cell, &x_inputs, want, false), want)
                }
                CellKind::Mux2 => {
                    let s = good[cell.inputs()[2].index()];
                    match s {
                        Logic::Zero => (0, value),
                        Logic::One => (1, value),
                        Logic::X => (2, false),
                    }
                }
                _ => (x_inputs[0], value),
            };
            // Guard: the chosen pin must still be X (for MUX the fixed choice
            // might not be).
            let n = cell.inputs()[next_pin];
            if good[n.index()] != Logic::X {
                // Fall back to any X input with the same desired value.
                net = cell.inputs()[x_inputs[0]];
                value = next_value;
                continue;
            }
            net = n;
            value = next_value;
        }
        None
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: StuckAt) -> PodemOutcome {
        // Temporarily move the reusable buffers out of `self` so the borrow
        // checker lets the read-only engine use them alongside `&self`.
        let mut good = std::mem::take(&mut self.good_buf);
        let mut faulty = std::mem::take(&mut self.faulty_buf);
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut clip = self.clip.take();
        let mut search = std::mem::take(&mut self.search);
        let (outcome, backtracks, interrupted) = self.generate_inner(
            fault,
            &mut good,
            &mut faulty,
            &mut scratch,
            clip.as_mut(),
            &mut search,
        );
        self.good_buf = good;
        self.faulty_buf = faulty;
        self.scratch = scratch;
        self.clip = clip;
        self.search = search;
        self.last_backtracks = backtracks;
        self.last_interrupted = interrupted;
        outcome
    }

    /// Runs an untestability proof attempt for `fault`: like
    /// [`generate`](Self::generate) but discarding the test pattern, so the
    /// result is `Copy` and cheap to collect in bulk (the shape the parallel
    /// proof engine in [`crate::proof`] fans out over worker threads).
    pub fn prove(&mut self, fault: StuckAt) -> ProofOutcome {
        match self.generate(fault) {
            PodemOutcome::Test(_) => ProofOutcome::TestExists,
            PodemOutcome::Redundant => ProofOutcome::ProvenUntestable,
            PodemOutcome::Aborted => ProofOutcome::Aborted,
        }
    }

    /// The classical X-path check: can any frontier gate still drive its
    /// fault effect to an observation point through nets whose value is not
    /// yet decided?
    ///
    /// Three-valued simulation is monotone — a definite net value can never
    /// change under further assignments — so when every forward path from
    /// every frontier gate is cut by a net that is definite and equal in both
    /// machines, no extension of the current assignments can ever detect the
    /// fault and the search can backtrack immediately. This prunes exactly
    /// the searches the mission constraints make hopeless (masked observation
    /// points, forced side inputs), turning slow backtrack-budget aborts into
    /// fast proofs.
    fn frontier_has_x_path(
        &self,
        frontier: &[CellId],
        good: &NetValues,
        faulty: &NetValues,
        search: &mut SearchScratch,
    ) -> bool {
        let viable = |n: usize| {
            let g = good[n];
            let f = faulty[n];
            !(g.is_definite() && f.is_definite() && g == f)
        };
        search.stack.clear();
        for &gate in frontier {
            let Some(out) = self.netlist.cell(gate).output() else {
                continue;
            };
            let n = out.index();
            if viable(n) && !search.visited[n] {
                search.visited[n] = true;
                search.touched.push(n as u32);
                search.stack.push(n as u32);
            }
        }
        let mut found = false;
        'walk: while let Some(n) = search.stack.pop() {
            let n = n as usize;
            if self.is_obs_net[n] {
                found = true;
                break 'walk;
            }
            for load in self.netlist.loads_of(NetId::from_index(n)) {
                let cell = self.netlist.cell(load.cell);
                if cell.is_dead() || !cell.kind().is_combinational() {
                    continue;
                }
                let Some(out) = cell.output() else { continue };
                let o = out.index();
                if !search.visited[o] && viable(o) {
                    search.visited[o] = true;
                    search.touched.push(o as u32);
                    search.stack.push(o as u32);
                }
            }
        }
        for &n in &search.touched {
            search.visited[n as usize] = false;
        }
        search.touched.clear();
        found
    }

    /// The next objective for advancing the D-frontier: an X side input of a
    /// frontier gate, to be driven to the gate's non-controlling value.
    ///
    /// Without SCOAP: the first frontier gate's first X input (the classical
    /// fixed order). With SCOAP: the gate whose output is cheapest to observe
    /// (least CO — the most promising propagation path), and among its X side
    /// inputs the one hardest to drive non-controlling — every side input
    /// must get there eventually, so attacking the bottleneck first fails
    /// fast and prunes backtracks.
    fn frontier_objective(&self, frontier: &[CellId], good: &NetValues) -> Option<(NetId, bool)> {
        let gate = match &self.scoap {
            None => *frontier.first()?,
            Some(scoap) => {
                let mut best: Option<(u32, CellId)> = None;
                for &gate in frontier {
                    let out = self
                        .netlist
                        .cell(gate)
                        .output()
                        .expect("frontier gates drive a net");
                    let co = scoap.co(out);
                    if best.is_none_or(|(b, _)| co < b) {
                        best = Some((co, gate));
                    }
                }
                best?.1
            }
        };
        let cell = self.netlist.cell(gate);
        let noncontrolling = match cell.kind().controlling_value() {
            Some(cv) => !cv,
            None => true,
        };
        let x_inputs: Vec<usize> = cell
            .inputs()
            .iter()
            .enumerate()
            .filter(|&(_, &n)| good[n.index()] == Logic::X)
            .map(|(i, _)| i)
            .collect();
        // Frontier gates always carry an X side input (their output is still
        // undecided), but the chosen gate's Xs may sit on other frontier
        // gates when SCOAP re-ordered the scan; fall back to scan order then.
        let pin = if x_inputs.is_empty() {
            return frontier.iter().find_map(|&g| {
                let c = self.netlist.cell(g);
                c.inputs()
                    .iter()
                    .find(|&&n| good[n.index()] == Logic::X)
                    .map(|&n| {
                        let nc = match c.kind().controlling_value() {
                            Some(cv) => !cv,
                            None => true,
                        };
                        (n, nc)
                    })
            });
        } else {
            self.choose_input(cell, &x_inputs, noncontrolling, true)
        };
        Some((cell.inputs()[pin], noncontrolling))
    }

    fn generate_inner(
        &self,
        fault: StuckAt,
        good: &mut NetValues,
        faulty: &mut NetValues,
        scratch: &mut SimScratch,
        clip: Option<&mut ClipEngine>,
        search: &mut SearchScratch,
    ) -> (PodemOutcome, usize, bool) {
        let Some(site_net) = self.site_net(fault) else {
            // Detached output pin: nothing to excite or observe — redundant in
            // this frame.
            return (PodemOutcome::Redundant, 0, false);
        };
        if good.len() != self.netlist.num_nets() {
            *good = self.sim.blank_values();
        }
        if faulty.len() != self.netlist.num_nets() {
            *faulty = self.sim.blank_values();
        }
        // Clip the search to the fault's fanout cone: one cheap extraction
        // per fault buys faulty simulation, D-frontier scanning and detection
        // over the usually tiny cone, while the good machine is maintained
        // incrementally — each decision re-evaluates only the gates its
        // change actually reaches.
        let clip: Option<&ClipEngine> = match clip {
            Some(c) => {
                c.prepare(self.netlist, &self.observation_nets, site_net);
                Some(c)
            }
            None => None,
        };
        let obs_nets: &[NetId] = clip.map_or(&self.observation_nets, |c| &c.obs_nets);
        let stuck = Logic::from_bool(fault.value);
        let mut assignments: HashMap<NetId, Logic> = HashMap::new();
        // Decision stack: (net, current value, tried_both).
        let mut stack: Vec<(NetId, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;
        let mut interrupted = false;

        let outcome = 'search: loop {
            // Cooperative stop: one poll per decision step bounds the
            // cancellation latency by a single simulation pass.
            if self.stop_requested() {
                interrupted = true;
                break 'search PodemOutcome::Aborted;
            }
            match clip {
                Some(c) => {
                    // The good machine is already current (incrementally
                    // maintained); only the faulty view needs refreshing.
                    self.simulate_faulty_clipped(c, fault, site_net, good, faulty);
                }
                None => {
                    self.simulate_into(&assignments, None, good, scratch);
                    self.simulate_into(&assignments, Some(fault), faulty, scratch);
                }
            }

            if self.is_detected(fault, good, faulty, obs_nets) {
                let pattern = TestPattern {
                    assignments: assignments
                        .iter()
                        .filter_map(|(&n, &v)| v.to_bool().map(|b| (n, b)))
                        .collect(),
                };
                break 'search PodemOutcome::Test(pattern);
            }

            let site_value = good[site_net.index()];
            let excitation_conflict = site_value.is_definite() && site_value == stuck;
            let frontier = self.d_frontier(fault, good, faulty, clip);
            let excited = site_value.is_definite() && site_value != stuck;
            let dead_end = excitation_conflict
                || (excited
                    && (frontier.is_empty()
                        || (self.config.x_path_check
                            && !self.frontier_has_x_path(&frontier, good, faulty, search))));

            let objective = if dead_end {
                None
            } else if !excited {
                Some((site_net, !fault.value))
            } else {
                self.frontier_objective(&frontier, good)
            };

            let decision =
                objective.and_then(|(net, value)| self.backtrace(net, value, good, &assignments));

            match decision {
                Some((input, value)) => {
                    assignments.insert(input, Logic::from_bool(value));
                    stack.push((input, value, false));
                    if let Some(c) = clip {
                        self.good_set(c, search, good, input, Logic::from_bool(value));
                        self.good_flush(c, search, good);
                    }
                }
                None => {
                    // Backtrack. Exhausting the decision stack is the
                    // untestability proof; running out of backtrack budget is
                    // a *give-up* and must stay distinguishable (Aborted), or
                    // callers would screen potentially testable faults out of
                    // the coverage denominator.
                    loop {
                        match stack.pop() {
                            None => break 'search PodemOutcome::Redundant,
                            Some((input, value, tried_both)) => {
                                assignments.remove(&input);
                                if let Some(c) = clip {
                                    self.good_set(c, search, good, input, Logic::X);
                                }
                                if !tried_both {
                                    backtracks += 1;
                                    if backtracks > self.config.backtrack_limit {
                                        break 'search PodemOutcome::Aborted;
                                    }
                                    assignments.insert(input, Logic::from_bool(!value));
                                    stack.push((input, !value, true));
                                    if let Some(c) = clip {
                                        self.good_set(
                                            c,
                                            search,
                                            good,
                                            input,
                                            Logic::from_bool(!value),
                                        );
                                    }
                                    break;
                                }
                            }
                        }
                    }
                    if let Some(c) = clip {
                        self.good_flush(c, search, good);
                    }
                }
            }
        };

        // Retract this fault's surviving assignments so the incremental good
        // machine returns to its baseline for the next fault.
        if let Some(c) = clip {
            for &net in assignments.keys() {
                self.good_set(c, search, good, net, Logic::X);
            }
            self.good_flush(c, search, good);
        }
        (outcome, backtracks, interrupted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn engine_default(netlist: &Netlist) -> Podem<'_> {
        Podem::new(netlist, &ConstraintSet::full_scan(), PodemConfig::default()).unwrap()
    }

    #[test]
    fn finds_test_for_simple_and() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut podem = engine_default(&n);
        match podem.generate(StuckAt::output(and, false)) {
            PodemOutcome::Test(pattern) => {
                assert_eq!(pattern.assignments.get(&a), Some(&true));
                assert_eq!(pattern.assignments.get(&c), Some(&true));
            }
            other => panic!("expected a test, got {other:?}"),
        }
        assert!(matches!(
            podem.generate(StuckAt::input(and, 0, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn proves_classic_redundancy() {
        // y = a OR (a AND b): the AND-output stuck-at-0 is redundant.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let mut podem = engine_default(&n);
        assert_eq!(
            podem.generate(StuckAt::output(and, false)),
            PodemOutcome::Redundant
        );
        // The same fault stuck-at-1 is testable (a=0, b=1 → y flips).
        assert!(matches!(
            podem.generate(StuckAt::output(and, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn respects_forced_inputs() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a, false);
        let mut podem = Podem::new(&n, &constraints, PodemConfig::default()).unwrap();
        // With a tied to 0 the AND output can never be 1: s-a-0 has no test.
        assert_eq!(
            podem.generate(StuckAt::output(and, false)),
            PodemOutcome::Redundant
        );
        // ... but s-a-1 is testable (set b=1, output should be 0, faulty 1).
        assert!(matches!(
            podem.generate(StuckAt::output(and, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn uses_ff_boundaries_as_pseudo_ports() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ck = b.input("ck");
        let q = b.dff(a, ck);
        let y = b.not(q);
        let d2 = b.and2(y, a);
        let _q2 = b.dff(d2, ck);
        let n = b.finish();
        let inv = n.driver_of(y).unwrap();
        let mut podem = engine_default(&n);
        // The inverter sits between two flip-flops; in the full-scan frame it
        // is both controllable (via q) and observable (via the second FF's D).
        assert!(matches!(
            podem.generate(StuckAt::output(inv, false)),
            PodemOutcome::Test(_)
        ));
        assert!(matches!(
            podem.generate(StuckAt::output(inv, true)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn detects_observation_pin_branch_faults() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output("y", a);
        let n = b.finish();
        let po = n.primary_outputs()[0];
        let mut podem = engine_default(&n);
        assert!(matches!(
            podem.generate(StuckAt::input(po, 0, false)),
            PodemOutcome::Test(_)
        ));
    }

    #[test]
    fn masked_output_makes_cone_redundant() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let dbg = b.not(a);
        let y = b.buf(a);
        b.output("dbg", dbg);
        b.output("y", y);
        let n = b.finish();
        let inv = n.driver_of(dbg).unwrap();
        let dbg_po = n
            .primary_outputs()
            .into_iter()
            .find(|&po| n.cell(po).name() == "dbg")
            .unwrap();
        let mut constraints = ConstraintSet::full_scan();
        constraints.mask_output(dbg_po);
        let mut podem = Podem::new(&n, &constraints, PodemConfig::default()).unwrap();
        assert_eq!(
            podem.generate(StuckAt::output(inv, false)),
            PodemOutcome::Redundant
        );
    }

    #[test]
    fn xor_tree_tests_found() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 4);
        let p = b.reduce_xor(&a);
        b.output("p", p);
        let n = b.finish();
        let mut podem = engine_default(&n);
        let mut faults = faultmodel::FaultList::full_universe(&n);
        let mut tests = 0;
        let mut redundant = 0;
        let all: Vec<StuckAt> = faults.faults().to_vec();
        for fault in all {
            match podem.generate(fault) {
                PodemOutcome::Test(_) => tests += 1,
                PodemOutcome::Redundant => redundant += 1,
                PodemOutcome::Aborted => {}
            }
        }
        // An XOR tree has no redundant faults.
        assert_eq!(redundant, 0);
        assert_eq!(tests, faults.len());
        let _ = &mut faults;
    }

    #[test]
    fn exhausted_backtrack_budget_reports_aborted_not_redundant() {
        // Regression for the Aborted/ProvenUntestable distinction: the same
        // redundant fault must be *proven* under a generous budget and
        // *aborted* — never misreported as redundant — when the budget
        // truncates the search. y = a OR (a AND b): AND-output s-a-0 needs at
        // least one backtrack before the decision space is exhausted.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(t).unwrap();
        let fault = StuckAt::output(and, false);

        let mut generous = engine_default(&n);
        assert_eq!(generous.generate(fault), PodemOutcome::Redundant);
        assert!(
            generous.last_backtracks() > 0,
            "proof must spend backtracks"
        );
        assert_eq!(generous.prove(fault), ProofOutcome::ProvenUntestable);

        let mut truncated = Podem::new(
            &n,
            &ConstraintSet::full_scan(),
            PodemConfig {
                backtrack_limit: 0,
                ..PodemConfig::default()
            },
        )
        .unwrap();
        assert_eq!(truncated.generate(fault), PodemOutcome::Aborted);
        assert_eq!(truncated.prove(fault), ProofOutcome::Aborted);
        // A testable fault is still found even with a zero budget (no
        // backtracking needed on this path).
        assert_eq!(
            truncated.prove(StuckAt::output(and, true)),
            ProofOutcome::TestExists
        );
    }

    #[test]
    fn prove_matches_generate_on_every_outcome_kind() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let t = b.and2(a, c);
        let y = b.or2(a, t);
        b.output("y", y);
        let n = b.finish();
        let mut podem = engine_default(&n);
        for fault in faultmodel::FaultList::full_universe(&n).faults().to_vec() {
            let expected = match podem.generate(fault) {
                PodemOutcome::Test(_) => ProofOutcome::TestExists,
                PodemOutcome::Redundant => ProofOutcome::ProvenUntestable,
                PodemOutcome::Aborted => ProofOutcome::Aborted,
            };
            assert_eq!(podem.prove(fault), expected, "{fault:?}");
        }
    }

    #[test]
    fn cone_clipping_is_bit_identical_to_the_full_engine() {
        // Clipping must change no decision: outcomes AND backtrack counts
        // agree fault-by-fault with the unclipped engine (SCOAP off on both
        // sides so the search order is the classical fixed one).
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 4);
        let c = b.input("c");
        let t1 = b.and2(a[0], a[1]);
        let t2 = b.or2(a[0], t1); // redundant AND s-a-0 inside
        let t3 = b.xor2(t2, a[2]);
        let t4 = b.mux2(t3, a[3], c);
        b.output("y", t4);
        b.output("z", t1);
        let n = b.finish();
        let mut constraints = ConstraintSet::full_scan();
        constraints.tie_net(a[3], false);
        let base = PodemConfig {
            backtrack_limit: 4,
            scoap_guidance: false,
            cone_clip: false,
            ..PodemConfig::default()
        };
        let mut full = Podem::new(&n, &constraints, base).unwrap();
        let mut clipped = Podem::new(
            &n,
            &constraints,
            PodemConfig {
                cone_clip: true,
                ..base
            },
        )
        .unwrap();
        for fault in faultmodel::FaultList::full_universe(&n).faults().to_vec() {
            let expected = full.generate(fault);
            let expected_backtracks = full.last_backtracks();
            assert_eq!(clipped.generate(fault), expected, "{fault:?}");
            assert_eq!(
                clipped.last_backtracks(),
                expected_backtracks,
                "{fault:?} took a different search path under clipping"
            );
        }
    }

    #[test]
    fn scoap_guidance_reaches_the_same_concluded_verdicts() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 5);
        let t1 = b.and2(a[0], a[1]);
        let t2 = b.or2(a[0], t1);
        let t3 = b.reduce_and(&[t2, a[2], a[3], a[4]].map(|n| n));
        b.output("y", t3);
        let n = b.finish();
        let constraints = ConstraintSet::full_scan();
        let mut plain = Podem::new(
            &n,
            &constraints,
            PodemConfig {
                scoap_guidance: false,
                cone_clip: false,
                ..PodemConfig::default()
            },
        )
        .unwrap();
        let mut guided = Podem::new(&n, &constraints, PodemConfig::default()).unwrap();
        for fault in faultmodel::FaultList::full_universe(&n).faults().to_vec() {
            // Generous budget: both searches conclude, and concluded verdicts
            // are search-order independent.
            assert_eq!(guided.prove(fault), plain.prove(fault), "{fault:?}");
        }
    }

    #[test]
    fn generated_test_actually_detects_the_fault() {
        use crate::fault_sim::FaultSim;
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 3);
        let c = b.input("c");
        let t1 = b.and2(a[0], a[1]);
        let t2 = b.or2(t1, a[2]);
        let y = b.xor2(t2, c);
        b.output("y", y);
        let n = b.finish();
        let mut podem = engine_default(&n);
        let or = n.driver_of(t2).unwrap();
        let fault = StuckAt::output(or, false);
        let PodemOutcome::Test(pattern) = podem.generate(fault) else {
            panic!("expected test");
        };
        let sim = FaultSim::new(&n).unwrap();
        let vector: crate::fault_sim::InputVector = pattern.assignments.clone();
        assert_eq!(sim.detect(&[fault], &[vector]), vec![true]);
    }
}
