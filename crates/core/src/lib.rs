//! On-line functionally untestable fault identification in embedded
//! processor cores — a full reproduction of Bernardi et al., DATE 2013.
//!
//! When an embedded processor is tested *on-line* with a purely functional
//! (software-based) self-test, part of its stuck-at fault universe can never
//! be detected: the scan chains are idle, the debug interfaces are tied off,
//! and the restricted memory map freezes many address bits. This crate
//! identifies those **on-line functionally untestable** faults so they can be
//! pruned from the fault list, raising the meaningful coverage figure
//! (by 13.8 % on the paper's industrial case study).
//!
//! The crate implements the paper's methodology:
//!
//! 1. **search for sources of untestability** — [`toggle`] activity analysis
//!    over the SBST suite, or the SoC integration specification;
//! 2. **circuit manipulation** — [`manipulate`] ties mission-constant signals
//!    and disconnects mission-unobserved outputs;
//! 3. **screening** — the [`rules`] either prune faults directly (scan chain
//!    tracing, §3.1) or run the structural untestability analysis of the
//!    [`atpg`] crate on the manipulated circuit (§3.2, §3.3);
//! 4. **simulation and proof** — the staged [`flow`] pipeline optionally
//!    grades the SBST suite on the compiled fault simulator (dropping every
//!    detected fault) and hands the survivors to the constraint-aware PODEM
//!    proof engine, which *proves* on-line untestability that the structural
//!    screen alone cannot, fanned out across worker threads. Everything is
//!    composed into a Table-I-style [`report::IdentificationReport`] with
//!    per-stage fault-count deltas and wall-clock.
//!
//! # Examples
//!
//! ```
//! use cpu::soc::SocBuilder;
//! use online_untestable::flow::{FlowConfig, IdentificationFlow};
//!
//! let soc = SocBuilder::small().build();
//! let report = IdentificationFlow::new(FlowConfig::default())
//!     .run(&soc)
//!     .expect("identification flow");
//! println!("{report}");
//! assert!(report.total_untestable() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod design;
pub mod flow;
pub mod json;
pub mod manipulate;
pub mod report;
pub mod rules;
pub mod toggle;

pub use design::{ConstraintSpec, Design, NetlistDesign, SpecError};
pub use flow::{DiscoveryMode, FlowConfig, FlowError, IdentificationFlow, ProofStageConfig};
pub use json::{JsonError, JsonValue};
pub use manipulate::{Manipulation, ManipulationStep};
pub use report::{IdentificationReport, PhaseResult, ProofEngineBreakdown};
pub use toggle::{analyze_toggles, ToggleReport};
