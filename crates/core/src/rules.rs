//! The four identification rules of §3: scan circuitry, debug control logic,
//! debug observation logic and memory-map address logic.
//!
//! Each rule produces either a direct list of faults to prune (scan) or a
//! circuit [`Manipulation`] whose structural
//! analysis reveals the on-line functionally untestable faults of that
//! source. The [`flow`](crate::flow) module composes them and re-labels the
//! findings into the master fault list.

use crate::manipulate::Manipulation;
use atpg::analysis::{AnalysisConfig, StructuralAnalysis};
use faultmodel::{FaultList, StuckAt};
use netlist::{CellId, NetId, Netlist};

use cpu::mem::MemoryMap;
use dft::trace::{ScanElement, ScanTrace};

/// Faults identified by the scan rule (§3.1), grouped for reporting.
#[derive(Clone, Debug, Default)]
pub struct ScanRuleResult {
    /// The on-line functionally untestable faults: SI pins, mission-value SE
    /// pins, scan-path buffers, scan-in nets and scan-out pins.
    pub untestable: Vec<StuckAt>,
}

/// Applies the scan rule: walks the traced chains and enumerates the faults
/// that only matter when the scan infrastructure is exercised.
///
/// `mission_scan_enable` is the value the scan-enable signal holds in the
/// field (usually 0); the stuck-at fault of that polarity on every SE pin is
/// untestable while the opposite polarity (which would corrupt mission
/// behaviour, Fig. 2) is kept in the fault list.
pub fn scan_rule(
    netlist: &Netlist,
    trace: &ScanTrace,
    mission_scan_enable: bool,
) -> ScanRuleResult {
    let mut untestable = Vec::new();

    for chain in &trace.chains {
        // The scan-in port drives a net used only for shifting.
        untestable.push(StuckAt::output(chain.scan_in_port, false));
        untestable.push(StuckAt::output(chain.scan_in_port, true));

        for element in &chain.elements {
            match *element {
                ScanElement::Flop(ff) => {
                    let kind = netlist.cell(ff).kind();
                    if let Some(si) = kind.scan_in_pin() {
                        untestable.push(StuckAt::input(ff, si, false));
                        untestable.push(StuckAt::input(ff, si, true));
                    }
                    if let Some(se) = kind.scan_enable_pin() {
                        untestable.push(StuckAt::input(ff, se, mission_scan_enable));
                    }
                }
                ScanElement::Buffer(buf) => {
                    let cell = netlist.cell(buf);
                    for pin in 0..cell.inputs().len() {
                        untestable.push(StuckAt::input(buf, pin as netlist::PinIndex, false));
                        untestable.push(StuckAt::input(buf, pin as netlist::PinIndex, true));
                    }
                    if cell.output().is_some() {
                        untestable.push(StuckAt::output(buf, false));
                        untestable.push(StuckAt::output(buf, true));
                    }
                }
            }
        }

        if let Some(po) = chain.scan_out_port {
            untestable.push(StuckAt::input(po, 0, false));
            untestable.push(StuckAt::input(po, 0, true));
        }
    }

    // The scan-enable source itself: its stuck-at-mission-value fault can
    // never be observed (the signal is never driven to the scan value in the
    // field).
    for &se_net in &trace.scan_enable_nets {
        if let Some(driver) = netlist.driver_of(se_net) {
            untestable.push(StuckAt::output(driver, mission_scan_enable));
        }
    }

    untestable.sort_unstable();
    untestable.dedup();
    ScanRuleResult { untestable }
}

/// Builds the §3.2.1 manipulation: tie every debug/test control input to the
/// constant it holds in mission mode.
pub fn debug_control_manipulation(tied_inputs: &[(NetId, bool)]) -> Manipulation {
    let mut m = Manipulation::new();
    for &(net, value) in tied_inputs {
        m.tie_net(net, value);
    }
    m
}

/// Builds the §3.2.2 manipulation: disconnect every debug observation output.
pub fn debug_observation_manipulation(outputs: &[CellId]) -> Manipulation {
    let mut m = Manipulation::new();
    for &po in outputs {
        m.float_output(po);
    }
    m
}

/// Builds the §3.3 manipulation: tie the input and output nets of every
/// address-holding flip-flop whose address bit is frozen by the memory map.
pub fn memory_map_manipulation(
    netlist: &Netlist,
    address_registers: &[(CellId, u32)],
    memory_map: &MemoryMap,
) -> Manipulation {
    let constant_bits = memory_map.constant_address_bits();
    let mut m = Manipulation::new();
    for &(ff, bit) in address_registers {
        let Some(&(_, value)) = constant_bits.iter().find(|&&(b, _)| b == bit) else {
            continue;
        };
        // Output (Q) of the flip-flop…
        if let Some(q) = netlist.output_net(ff) {
            m.tie_net(q, value);
        }
        // …and its data input, exactly as §3.3 case 1.a prescribes (the tool
        // "stops the untestable identification process at flip flops").
        if let Some(d_pin) = netlist.cell(ff).kind().data_pin() {
            let d_net = netlist.input_net(ff, d_pin);
            m.tie_net(d_net, value);
        }
    }
    m
}

/// Runs the structural analysis of a manipulation over a fresh copy of the
/// fault universe and returns the classified copy together with the number of
/// untestable faults found.
///
/// # Errors
///
/// Returns an error string if the design cannot be levelized.
pub fn analyse_manipulation(
    netlist: &Netlist,
    manipulation: &Manipulation,
    prove_redundancy: bool,
) -> Result<(FaultList, usize), String> {
    let mut faults = FaultList::full_universe(netlist);
    let config = AnalysisConfig {
        constraints: manipulation.to_constraints(),
        prove_redundancy,
        ..AnalysisConfig::default()
    };
    let outcome = StructuralAnalysis::new(config)
        .run(netlist, &mut faults)
        .map_err(|e| e.to_string())?;
    Ok((faults, outcome.total_untestable()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::soc::SocBuilder;
    use dft::trace::{find_scan_in_ports, trace_scan_chains};
    use faultmodel::FaultClass;

    fn small_soc() -> cpu::soc::Soc {
        SocBuilder::small().build()
    }

    #[test]
    fn scan_rule_counts_match_structure() {
        let soc = small_soc();
        let ports = find_scan_in_ports(&soc.netlist, "scan_in");
        let trace = trace_scan_chains(&soc.netlist, &ports, "scan_out").unwrap();
        let result = scan_rule(&soc.netlist, &trace, false);
        let n_flops = trace.num_flops();
        let n_buffers: usize = trace.chains.iter().map(|c| c.buffers().len()).sum();
        // Per flop: SI sa0 + SI sa1 + SE sa0 = 3 faults. Per buffer: 4 faults.
        // Per chain: 2 scan-in + 2 scan-out faults. Plus 1 scan-enable stem.
        let expected =
            3 * n_flops + 4 * n_buffers + 4 * trace.chains.len() + trace.scan_enable_nets.len();
        assert_eq!(result.untestable.len(), expected);
        assert!(n_flops > 100);
        assert!(n_buffers > 50);
    }

    #[test]
    fn scan_rule_keeps_the_dangerous_se_fault() {
        let soc = small_soc();
        let ports = find_scan_in_ports(&soc.netlist, "scan_in");
        let trace = trace_scan_chains(&soc.netlist, &ports, "scan_out").unwrap();
        let result = scan_rule(&soc.netlist, &trace, false);
        // No SE stuck-at-1 fault may appear in the pruned set (Fig. 2: that is
        // the one fault that still matters in mission mode).
        for chain in &trace.chains {
            for ff in chain.flops() {
                let se = soc.netlist.cell(ff).kind().scan_enable_pin().unwrap();
                let dangerous = StuckAt::input(ff, se, true);
                assert!(!result.untestable.contains(&dangerous));
            }
        }
    }

    #[test]
    fn debug_control_analysis_finds_untestable_cone() {
        let soc = small_soc();
        let tied: Vec<(NetId, bool)> = soc
            .debug
            .control_input_nets()
            .into_iter()
            .map(|n| (n, false))
            .collect();
        let manipulation = debug_control_manipulation(&tied);
        let (faults, untestable) =
            analyse_manipulation(&soc.netlist, &manipulation, false).unwrap();
        assert!(
            untestable > 0,
            "tying the debug inputs must kill some faults"
        );
        // The debug enable stuck-at-0 is among them.
        let enable_driver = soc.netlist.driver_of(soc.debug.enable_net).unwrap();
        assert!(faults
            .class_of(StuckAt::output(enable_driver, false))
            .unwrap()
            .is_structurally_untestable());
    }

    #[test]
    fn observation_analysis_kills_observation_buffers() {
        let soc = small_soc();
        let manipulation = debug_observation_manipulation(&soc.debug.observation_ports);
        let (faults, untestable) =
            analyse_manipulation(&soc.netlist, &manipulation, false).unwrap();
        assert!(untestable > 0);
        for &buf in &soc.debug.observation_buffers {
            for fault in faults.faults_of_cell(buf) {
                assert!(
                    faults.class_of(fault).unwrap().is_structurally_untestable(),
                    "{fault:?}"
                );
            }
        }
    }

    #[test]
    fn memory_map_manipulation_ties_frozen_bits_only() {
        let soc = small_soc();
        let regs = soc.address_registers();
        let manipulation = memory_map_manipulation(&soc.netlist, &regs, &soc.memory_map);
        let constant_bits: Vec<u32> = soc
            .memory_map
            .constant_address_bits()
            .iter()
            .map(|&(b, _)| b)
            .collect();
        let frozen_regs = regs
            .iter()
            .filter(|&&(_, bit)| constant_bits.contains(&bit))
            .count();
        // Two tie steps (D and Q) per frozen register bit.
        assert_eq!(manipulation.len(), 2 * frozen_regs);
        assert!(frozen_regs > 0);
        let (_, untestable) = analyse_manipulation(&soc.netlist, &manipulation, false).unwrap();
        assert!(untestable > 0);
    }

    #[test]
    fn baseline_analysis_is_mostly_testable() {
        let soc = small_soc();
        let (faults, untestable) =
            analyse_manipulation(&soc.netlist, &Manipulation::new(), false).unwrap();
        // Without any mission constraint only a small residue (tie cells,
        // padding in the reduced register file) is structurally untestable.
        let fraction = untestable as f64 / faults.len() as f64;
        assert!(
            fraction < 0.08,
            "baseline untestable fraction too high: {fraction:.3}"
        );
        assert!(faults.iter().any(|(_, c)| c == FaultClass::Undetected));
    }
}
