//! Circuit manipulation — the paper's central mechanism (§3): connect
//! mission-constant signals to fixed values and disconnect mission-unobserved
//! outputs, so that on-line functional untestability becomes *structural*
//! untestability that a conventional tool can identify.
//!
//! Two equivalent application styles are provided:
//!
//! * [`Manipulation::to_constraints`] expresses the manipulation as an
//!   [`atpg::ConstraintSet`] without touching the netlist (the style the
//!   identification flow uses internally), and
//! * [`Manipulation::apply`] physically edits a copy of the netlist — tie
//!   cells are inserted and debug outputs are removed — which mirrors what
//!   the paper feeds to TetraMAX and is useful for exporting the manipulated
//!   design.

use atpg::ConstraintSet;
use netlist::{CellId, CellKind, NetId, Netlist};
use serde::{Deserialize, Serialize};

/// One elementary manipulation step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ManipulationStep {
    /// Force a net to a constant logic value (tie to ground / Vdd).
    TieNet {
        /// The net to tie.
        net: NetId,
        /// The constant value.
        value: bool,
    },
    /// Stop observing a primary output (leave it floating / unconnected).
    FloatOutput {
        /// The `Output` pseudo-cell to disconnect.
        output: CellId,
    },
}

/// An ordered collection of manipulation steps.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manipulation {
    steps: Vec<ManipulationStep>,
}

impl Manipulation {
    /// An empty manipulation.
    pub fn new() -> Self {
        Manipulation::default()
    }

    /// Adds a tie step.
    pub fn tie_net(&mut self, net: NetId, value: bool) -> &mut Self {
        self.steps.push(ManipulationStep::TieNet { net, value });
        self
    }

    /// Adds a float-output step.
    pub fn float_output(&mut self, output: CellId) -> &mut Self {
        self.steps.push(ManipulationStep::FloatOutput { output });
        self
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[ManipulationStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no step was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Merges another manipulation after this one.
    pub fn extend(&mut self, other: &Manipulation) {
        self.steps.extend(other.steps.iter().cloned());
    }

    /// Expresses the manipulation as analysis constraints over the
    /// *unmodified* netlist (full-scan defaults).
    pub fn to_constraints(&self) -> ConstraintSet {
        let mut constraints = ConstraintSet::full_scan();
        for step in &self.steps {
            match *step {
                ManipulationStep::TieNet { net, value } => {
                    constraints.tie_net(net, value);
                }
                ManipulationStep::FloatOutput { output } => {
                    constraints.mask_output(output);
                }
            }
        }
        constraints
    }

    /// Physically applies the manipulation to a copy of `netlist` and returns
    /// the modified design: tied nets get their original driver detached and
    /// a tie cell connected instead; floated outputs are removed.
    pub fn apply(&self, netlist: &Netlist) -> Netlist {
        let mut modified = netlist.clone();
        modified.set_name(format!("{}_manipulated", netlist.name()));
        for step in &self.steps {
            match *step {
                ManipulationStep::TieNet { net, value } => {
                    // Disconnect whatever drove the net and re-drive it from a
                    // dedicated tie cell through a buffer (so the tied net
                    // keeps its identity and loads).
                    modified.detach_driver(net);
                    let tie = modified.tie_net(value);
                    let name = format!("u_manip_tie_{}", net.index());
                    modified.add_cell(CellKind::Buf, name, &[tie], Some(net));
                }
                ManipulationStep::FloatOutput { output } => {
                    modified.remove_cell(output);
                }
            }
        }
        modified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{propagate_constants, Logic};
    use netlist::NetlistBuilder;

    fn design() -> (Netlist, NetId, NetId, CellId) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        let dbg = b.not(y);
        b.output("y", y);
        let dbg_po = b.output("dbg", dbg);
        (b.finish(), a, y, dbg_po)
    }

    #[test]
    fn constraints_reflect_steps() {
        let (_, a, _, dbg_po) = design();
        let mut m = Manipulation::new();
        m.tie_net(a, true).float_output(dbg_po);
        assert_eq!(m.len(), 2);
        let constraints = m.to_constraints();
        assert_eq!(constraints.forced_nets.get(&a), Some(&Logic::One));
        assert!(constraints.masked_outputs.contains(&dbg_po));
    }

    #[test]
    fn physical_apply_ties_and_floats() {
        let (n, a, y, dbg_po) = design();
        let mut m = Manipulation::new();
        m.tie_net(a, false).float_output(dbg_po);
        let modified = m.apply(&n);
        // The original netlist is untouched.
        assert!(n.driver_of(a).is_some());
        assert!(!n.cell(dbg_po).is_dead());
        // In the modified copy `a` is driven by a tie-buffer and the debug
        // output is gone.
        let driver = modified.driver_of(a).unwrap();
        assert_eq!(modified.cell(driver).kind(), CellKind::Buf);
        assert!(modified.cell(dbg_po).is_dead());
        // And constant propagation (without extra constraints) now sees the
        // AND output as constant 0.
        let consts = propagate_constants(&modified, &ConstraintSet::full_scan()).unwrap();
        assert_eq!(consts.value(y), Logic::Zero);
    }

    #[test]
    fn constraint_and_physical_styles_agree() {
        let (n, a, y, _) = design();
        let mut m = Manipulation::new();
        m.tie_net(a, false);
        // Style 1: constraints over the original design.
        let consts1 = propagate_constants(&n, &m.to_constraints()).unwrap();
        // Style 2: physical edit, default constraints.
        let modified = m.apply(&n);
        let consts2 = propagate_constants(&modified, &ConstraintSet::full_scan()).unwrap();
        assert_eq!(consts1.value(y), consts2.value(y));
        assert_eq!(consts1.value(a), consts2.value(a));
    }

    #[test]
    fn extend_concatenates() {
        let (_, a, y, dbg_po) = design();
        let mut m1 = Manipulation::new();
        m1.tie_net(a, true);
        let mut m2 = Manipulation::new();
        m2.tie_net(y, false).float_output(dbg_po);
        m1.extend(&m2);
        assert_eq!(m1.len(), 3);
        assert!(!m1.is_empty());
        assert!(Manipulation::new().is_empty());
    }
}
