//! The identification report: the Table-I-style summary plus per-phase
//! details and timings.

use crate::json::JsonValue;
use faultmodel::{ClassCounts, UntestableSource, UntestableSummary};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Result of one stage of the identification pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseResult {
    /// Stage name ("baseline", "scan", …, "sbst-sim", "atpg-proof").
    pub name: String,
    /// Faults newly classified by the stage (its fault-count delta).
    pub newly_classified: usize,
    /// Faults still unclassified when the stage finished — the population the
    /// next stage starts from.
    pub undetected_after: usize,
    /// Wall-clock time spent in the stage.
    pub duration: Duration,
}

/// Per-engine outcome counts of the PODEM/SAT proof portfolio: how many of
/// the attempted faults each engine concluded (or gave up on). A fault is
/// attributed to the engine that produced its final verdict — PODEM when it
/// concluded within its backtrack budget, SAT when PODEM aborted and the SAT
/// escalation concluded (or itself ran out of conflicts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofEngineBreakdown {
    /// Faults PODEM found a mission-mode test for.
    pub podem_test_exists: usize,
    /// Faults PODEM proved untestable.
    pub podem_proven: usize,
    /// Faults left unresolved by both engines, attributed to PODEM (the SAT
    /// stage was off or declined the fault).
    pub podem_aborted: usize,
    /// Faults the SAT escalation found a test for (replayed through the
    /// simulator before being trusted).
    pub sat_test_exists: usize,
    /// Faults the SAT escalation proved untestable.
    pub sat_proven: usize,
    /// Faults the SAT escalation itself gave up on (conflict limit).
    pub sat_aborted: usize,
    /// Aborts caused by the PODEM backtrack limit.
    #[serde(default)]
    pub aborted_backtracks: usize,
    /// Aborts caused by the SAT conflict limit.
    #[serde(default)]
    pub aborted_conflicts: usize,
    /// Aborts caused by a wall-clock deadline or cancellation.
    #[serde(default)]
    pub aborted_timeout: usize,
    /// Faults whose proof attempt panicked (isolated, campaign survived).
    #[serde(default)]
    pub aborted_panicked: usize,
    /// Faults an engine declined (encoding limits, failed model replay).
    #[serde(default)]
    pub aborted_unsupported: usize,
}

impl ProofEngineBreakdown {
    /// Faults proven untestable by either engine.
    pub fn proven_total(&self) -> usize {
        self.podem_proven + self.sat_proven
    }

    /// Faults neither engine could conclude.
    pub fn aborted_total(&self) -> usize {
        self.podem_aborted + self.sat_aborted
    }

    /// Faults shown testable in mission mode by either engine.
    pub fn test_exists_total(&self) -> usize {
        self.podem_test_exists + self.sat_test_exists
    }

    /// Aborts attributed to a wall-clock deadline or cancellation — the
    /// "stage deadline hit" signal callers use to pick an exit status.
    pub fn deadline_hit(&self) -> bool {
        self.aborted_timeout > 0
    }

    /// The per-engine breakdown as a JSON object — one key per counter,
    /// the shared schema of `untestable --json` and the identification
    /// service.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "podem_test_exists".to_string(),
                self.podem_test_exists.into(),
            ),
            ("podem_proven".to_string(), self.podem_proven.into()),
            ("podem_aborted".to_string(), self.podem_aborted.into()),
            ("sat_test_exists".to_string(), self.sat_test_exists.into()),
            ("sat_proven".to_string(), self.sat_proven.into()),
            ("sat_aborted".to_string(), self.sat_aborted.into()),
            (
                "aborts".to_string(),
                JsonValue::Object(vec![
                    ("backtracks".to_string(), self.aborted_backtracks.into()),
                    ("conflicts".to_string(), self.aborted_conflicts.into()),
                    ("timeout".to_string(), self.aborted_timeout.into()),
                    ("panicked".to_string(), self.aborted_panicked.into()),
                    ("unsupported".to_string(), self.aborted_unsupported.into()),
                ]),
            ),
            ("deadline_hit".to_string(), self.deadline_hit().into()),
        ])
    }

    fn has_abort_reasons(&self) -> bool {
        self.aborted_backtracks
            + self.aborted_conflicts
            + self.aborted_timeout
            + self.aborted_panicked
            + self.aborted_unsupported
            > 0
    }
}

impl fmt::Display for ProofEngineBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PODEM {} proven / {} testable / {} aborted; SAT {} proven / {} testable / {} aborted",
            self.podem_proven,
            self.podem_test_exists,
            self.podem_aborted,
            self.sat_proven,
            self.sat_test_exists,
            self.sat_aborted
        )?;
        if self.has_abort_reasons() {
            write!(
                f,
                "; aborts: {} backtracks / {} conflicts / {} timeout / {} panicked / {} unsupported",
                self.aborted_backtracks,
                self.aborted_conflicts,
                self.aborted_timeout,
                self.aborted_panicked,
                self.aborted_unsupported
            )?;
        }
        Ok(())
    }
}

/// The complete result of the on-line untestable fault identification flow.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IdentificationReport {
    /// Name of the analysed design.
    pub design: String,
    /// Total number of stuck-at faults in the universe.
    pub total_faults: usize,
    /// Faults that are structurally untestable even before considering the
    /// mission environment (not counted as on-line untestable).
    pub baseline_structural: usize,
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseResult>,
    /// Final per-class fault counts.
    pub counts: ClassCounts,
    /// Per-engine outcome counts of the proof stage, when it ran.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub engine_breakdown: Option<ProofEngineBreakdown>,
}

impl IdentificationReport {
    /// Number of faults attributed to one on-line untestability source.
    pub fn count_for(&self, source: UntestableSource) -> usize {
        self.counts.online(source)
    }

    /// Total on-line functionally untestable faults.
    pub fn total_untestable(&self) -> usize {
        self.counts.online_untestable_total()
    }

    /// The on-line untestable fraction of the fault universe (the paper's
    /// "coverage loss", 13.8 % in Table I).
    pub fn untestable_fraction(&self) -> f64 {
        if self.total_faults == 0 {
            0.0
        } else {
            self.total_untestable() as f64 / self.total_faults as f64
        }
    }

    /// The Table-I style summary (Scan / Debug / Memory / TOTAL rows).
    pub fn summary(&self) -> UntestableSummary {
        UntestableSummary::from_counts(&self.counts)
    }

    /// Total wall-clock time of the flow.
    pub fn total_duration(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// The result of the stage with the given name, if it ran.
    pub fn phase(&self, name: &str) -> Option<&PhaseResult> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The whole report as a JSON object: classification counts, per-phase
    /// deltas and timings, and (when the proof stage ran) the engine
    /// breakdown. This is the one response schema shared by
    /// `untestable --json` and the identification service; phase durations
    /// are the only run-dependent fields, so verdict comparisons drop the
    /// `phases` array.
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::string(&phase.name)),
                    (
                        "newly_classified".to_string(),
                        phase.newly_classified.into(),
                    ),
                    (
                        "undetected_after".to_string(),
                        phase.undetected_after.into(),
                    ),
                    (
                        "duration_ms".to_string(),
                        (phase.duration.as_secs_f64() * 1e3).into(),
                    ),
                ])
            })
            .collect();
        let online = UntestableSource::ALL
            .iter()
            .map(|&source| (source.name().to_string(), self.counts.online(source).into()))
            .collect();
        let counts = JsonValue::Object(vec![
            ("undetected".to_string(), self.counts.undetected.into()),
            ("detected".to_string(), self.counts.detected.into()),
            (
                "possibly_detected".to_string(),
                self.counts.possibly_detected.into(),
            ),
            ("redundant".to_string(), self.counts.redundant.into()),
            ("tied".to_string(), self.counts.tied.into()),
            ("blocked".to_string(), self.counts.blocked.into()),
            ("unused".to_string(), self.counts.unused.into()),
            ("online_untestable".to_string(), JsonValue::Object(online)),
        ]);
        let mut fields = vec![
            ("design".to_string(), JsonValue::string(&self.design)),
            ("total_faults".to_string(), self.total_faults.into()),
            (
                "baseline_structural".to_string(),
                self.baseline_structural.into(),
            ),
            ("counts".to_string(), counts),
            (
                "online_untestable_total".to_string(),
                self.total_untestable().into(),
            ),
            (
                "untestable_fraction".to_string(),
                self.untestable_fraction().into(),
            ),
            ("phases".to_string(), JsonValue::Array(phases)),
        ];
        if let Some(breakdown) = &self.engine_breakdown {
            fields.push(("engine_breakdown".to_string(), breakdown.to_json()));
        }
        JsonValue::Object(fields)
    }

    /// The coverage figure a test achieving `detected` detections would
    /// report before pruning (detected / total).
    pub fn coverage_before_pruning(&self, detected: usize) -> f64 {
        if self.total_faults == 0 {
            0.0
        } else {
            detected as f64 / self.total_faults as f64
        }
    }

    /// The coverage figure after removing every untestable fault (structural
    /// and on-line) from the denominator — the "raised by about 13 %" effect
    /// reported in §4.
    pub fn coverage_after_pruning(&self, detected: usize) -> f64 {
        let denominator = self
            .total_faults
            .saturating_sub(self.baseline_structural)
            .saturating_sub(self.total_untestable());
        if denominator == 0 {
            0.0
        } else {
            detected as f64 / denominator as f64
        }
    }
}

impl fmt::Display for IdentificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design: {}", self.design)?;
        writeln!(f, "fault universe: {} stuck-at faults", self.total_faults)?;
        writeln!(
            f,
            "baseline structurally untestable: {}",
            self.baseline_structural
        )?;
        writeln!(f, "{}", self.summary())?;
        writeln!(f, "phases:")?;
        for phase in &self.phases {
            writeln!(
                f,
                "  {:<18} {:>8} faults  {:>8} left  {:>10.3} ms",
                phase.name,
                phase.newly_classified,
                phase.undetected_after,
                phase.duration.as_secs_f64() * 1e3
            )?;
        }
        if let Some(breakdown) = &self.engine_breakdown {
            writeln!(f, "proof engines: {breakdown}")?;
        }
        write!(
            f,
            "total analysis time: {:.3} ms",
            self.total_duration().as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmodel::FaultClass;

    fn sample_report() -> IdentificationReport {
        let mut counts = ClassCounts::default();
        counts.add(FaultClass::Undetected, 800);
        counts.add(FaultClass::Tied, 50);
        counts.add(FaultClass::OnlineUntestable(UntestableSource::Scan), 90);
        counts.add(
            FaultClass::OnlineUntestable(UntestableSource::DebugControl),
            30,
        );
        counts.add(
            FaultClass::OnlineUntestable(UntestableSource::DebugObservation),
            10,
        );
        counts.add(
            FaultClass::OnlineUntestable(UntestableSource::MemoryMap),
            20,
        );
        IdentificationReport {
            design: "demo".to_string(),
            total_faults: 1000,
            baseline_structural: 50,
            phases: vec![
                PhaseResult {
                    name: "baseline".to_string(),
                    newly_classified: 50,
                    undetected_after: 950,
                    duration: Duration::from_millis(2),
                },
                PhaseResult {
                    name: "scan".to_string(),
                    newly_classified: 90,
                    undetected_after: 860,
                    duration: Duration::from_millis(1),
                },
            ],
            counts,
            engine_breakdown: None,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let r = sample_report();
        assert_eq!(r.total_untestable(), 150);
        assert_eq!(r.count_for(UntestableSource::Scan), 90);
        assert!((r.untestable_fraction() - 0.15).abs() < 1e-12);
        assert_eq!(r.summary().total_row().count, 150);
        assert_eq!(r.total_duration(), Duration::from_millis(3));
    }

    #[test]
    fn phase_lookup_and_per_stage_deltas() {
        let r = sample_report();
        let scan = r.phase("scan").unwrap();
        assert_eq!(scan.newly_classified, 90);
        assert_eq!(scan.undetected_after, 860);
        assert!(r.phase("atpg-proof").is_none());
        let text = r.to_string();
        assert!(
            text.contains("left"),
            "per-stage remainder missing:\n{text}"
        );
    }

    #[test]
    fn pruning_raises_coverage() {
        let r = sample_report();
        let detected = 700;
        let before = r.coverage_before_pruning(detected);
        let after = r.coverage_after_pruning(detected);
        assert!(after > before);
        assert!((before - 0.7).abs() < 1e-12);
        assert!((after - 700.0 / 800.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_table_rows() {
        let text = sample_report().to_string();
        for needle in [
            "Scan",
            "Debug",
            "Memory",
            "TOTAL",
            "baseline",
            "fault universe",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn empty_report_has_zero_fraction() {
        let r = IdentificationReport {
            design: "x".to_string(),
            total_faults: 0,
            baseline_structural: 0,
            phases: Vec::new(),
            counts: ClassCounts::default(),
            engine_breakdown: None,
        };
        assert_eq!(r.untestable_fraction(), 0.0);
        assert_eq!(r.coverage_after_pruning(0), 0.0);
    }

    #[test]
    fn engine_breakdown_row_formats_both_engines() {
        let breakdown = ProofEngineBreakdown {
            podem_test_exists: 850,
            podem_proven: 120,
            podem_aborted: 3,
            sat_test_exists: 7,
            sat_proven: 44,
            sat_aborted: 1,
            ..ProofEngineBreakdown::default()
        };
        assert_eq!(breakdown.proven_total(), 164);
        assert_eq!(breakdown.aborted_total(), 4);
        assert_eq!(breakdown.test_exists_total(), 857);
        assert!(!breakdown.deadline_hit());
        // Without abort attribution the row keeps its historical shape.
        assert_eq!(
            breakdown.to_string(),
            "PODEM 120 proven / 850 testable / 3 aborted; \
             SAT 44 proven / 7 testable / 1 aborted"
        );
        // The report surfaces the row only when the proof stage ran.
        let without = sample_report();
        assert!(!without.to_string().contains("proof engines"));
        let mut with = sample_report();
        with.engine_breakdown = Some(breakdown);
        let text = with.to_string();
        assert!(
            text.contains("proof engines: PODEM 120 proven"),
            "breakdown row missing:\n{text}"
        );
    }

    #[test]
    fn report_json_schema_round_trips() {
        let mut report = sample_report();
        report.engine_breakdown = Some(ProofEngineBreakdown {
            podem_proven: 3,
            sat_proven: 2,
            aborted_timeout: 1,
            ..ProofEngineBreakdown::default()
        });
        let text = report.to_json().to_string();
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(doc.get("design").and_then(JsonValue::as_str), Some("demo"));
        assert_eq!(
            doc.get("total_faults").and_then(JsonValue::as_u64),
            Some(1000)
        );
        assert_eq!(
            doc.get("online_untestable_total")
                .and_then(JsonValue::as_u64),
            Some(150)
        );
        let counts = doc.get("counts").unwrap();
        assert_eq!(
            counts
                .get("online_untestable")
                .and_then(|o| o.get("scan"))
                .and_then(JsonValue::as_u64),
            Some(90)
        );
        let breakdown = doc.get("engine_breakdown").unwrap();
        assert_eq!(
            breakdown.get("podem_proven").and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            breakdown
                .get("aborts")
                .and_then(|a| a.get("timeout"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            breakdown.get("deadline_hit").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.get("phases")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn engine_breakdown_row_attributes_abort_reasons() {
        let breakdown = ProofEngineBreakdown {
            podem_aborted: 3,
            sat_aborted: 1,
            aborted_backtracks: 1,
            aborted_conflicts: 1,
            aborted_timeout: 1,
            aborted_panicked: 1,
            ..ProofEngineBreakdown::default()
        };
        assert!(breakdown.deadline_hit());
        assert_eq!(
            breakdown.to_string(),
            "PODEM 0 proven / 0 testable / 3 aborted; \
             SAT 0 proven / 0 testable / 1 aborted; \
             aborts: 1 backtracks / 1 conflicts / 1 timeout / 1 panicked / 0 unsupported"
        );
    }
}
