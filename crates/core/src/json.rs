//! A tiny dependency-free JSON value: a compact writer and a hardened,
//! bounded parser.
//!
//! The identification service and the `untestable --json` report share one
//! response schema; this module is the only JSON machinery behind both. The
//! parser is written for hostile input — it is fed raw HTTP bodies — so it
//! never recurses past [`MAX_DEPTH`], never panics, reports every rejection
//! with a byte offset, and refuses trailing garbage.

use std::fmt;

/// Maximum nesting depth the parser accepts before rejecting the document.
/// Deeply nested arrays/objects are the classic stack-overflow vector for
/// recursive-descent parsers; no legitimate request comes close.
pub const MAX_DEPTH: usize = 64;

/// A parsed or constructed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string (already unescaped).
    String(String),
    /// `[ ... ]`
    Array(Vec<JsonValue>),
    /// `{ ... }` — insertion-ordered; [`get`](JsonValue::get) returns the
    /// first binding of a key.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a string value.
    pub fn string(text: impl Into<String>) -> JsonValue {
        JsonValue::String(text.into())
    }

    /// The first value bound to `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: the number must be
    /// finite, integral, and fit `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n)
                if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error, as is nesting beyond [`MAX_DEPTH`].
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first rejected character.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            position: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> JsonValue {
        JsonValue::Number(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::Number(n as f64)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::Number(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::String(s)
    }
}

impl fmt::Display for JsonValue {
    /// Compact serialization: no insignificant whitespace, strings escaped
    /// per RFC 8259, integral numbers written without a fractional part,
    /// non-finite numbers written as `null` (JSON has no spelling for them).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, text: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in text.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse rejection: what was wrong and where (byte offset into the input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the first rejected character.
    pub offset: usize,
    /// Human-readable description of the rejection.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.position,
            message: message.to_string(),
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.position) {
            self.position += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.position += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.position..].starts_with(word.as_bytes()) {
            self.position += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b']') => {
                    self.position += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            pairs.push((key, self.value(depth + 1)?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b'}') => {
                    self.position += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')
            .map_err(|_| self.error("expected a string"))?;
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.position += 1;
                    return Ok(text);
                }
                Some(b'\\') => {
                    self.position += 1;
                    match self.peek() {
                        Some(b'"') => text.push('"'),
                        Some(b'\\') => text.push('\\'),
                        Some(b'/') => text.push('/'),
                        Some(b'b') => text.push('\u{08}'),
                        Some(b'f') => text.push('\u{0C}'),
                        Some(b'n') => text.push('\n'),
                        Some(b'r') => text.push('\r'),
                        Some(b't') => text.push('\t'),
                        Some(b'u') => {
                            self.position += 1;
                            let c = self.unicode_escape()?;
                            text.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.position += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar; the input is `&str`, so
                    // boundaries are always valid.
                    let rest = std::str::from_utf8(&self.bytes[self.position..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    text.push(c);
                    self.position += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.position..self.position + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.position += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require the paired low surrogate.
            if self.bytes[self.position..].starts_with(b"\\u") {
                self.position += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.position;
        if self.peek() == Some(b'-') {
            self.position += 1;
        }
        let digits_from = self.position;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.position += 1;
        }
        if self.position == digits_from {
            return Err(self.error("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.position += 1;
            let fraction_from = self.position;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
            if self.position == fraction_from {
                return Err(self.error("expected a digit after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.position += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.position += 1;
            }
            let exponent_from = self.position;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
            if self.position == exponent_from {
                return Err(self.error("expected a digit in the exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.position]).expect("number bytes are ASCII");
        let value: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: "number out of range".to_string(),
        })?;
        if !value.is_finite() {
            return Err(JsonError {
                offset: start,
                message: "number out of range".to_string(),
            });
        }
        Ok(JsonValue::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        JsonValue::parse(text).unwrap().to_string()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("2.5"), "2.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(
            roundtrip("{ \"a\" : [1, 2, {\"b\": null}] , \"c\": true }"),
            "{\"a\":[1,2,{\"b\":null}],\"c\":true}"
        );
    }

    #[test]
    fn escapes_round_trip() {
        let parsed = JsonValue::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\ndAé😀"));
        let written = parsed.to_string();
        assert_eq!(
            JsonValue::parse(&written).unwrap().as_str(),
            parsed.as_str()
        );
    }

    #[test]
    fn accessors() {
        let doc = JsonValue::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn rejections_carry_an_offset() {
        for (text, offset_at_least) in [
            ("", 0),
            ("tru", 0),
            ("[1,", 3),
            ("{\"a\"}", 4),
            ("\"abc", 4),
            ("1 2", 2),
            ("{\"a\":1,}", 7),
            ("01x", 1),
            ("\"\\q\"", 2),
            ("\"\\ud800\"", 2),
            ("1e999", 0),
        ] {
            let err = JsonValue::parse(text).unwrap_err();
            assert!(
                err.offset >= offset_at_least,
                "{text:?}: offset {} < {offset_at_least}",
                err.offset
            );
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        JsonValue::parse(&ok).unwrap();
    }

    #[test]
    fn control_characters_must_be_escaped() {
        assert!(JsonValue::parse("\"a\nb\"").is_err());
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap().as_str(),
            Some("a\nb")
        );
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }
}
