//! Toggle / activity analysis over a functional simulation.
//!
//! The paper locates candidate mission-constant signals by looking at
//! "high-level code coverage metrics, such as toggle, switching and condition
//! coverage" collected while running the mature SBST suite: any signal that
//! never shows activity is a suspect (§4). This module reproduces that step
//! at gate level: it simulates the design over a set of input-vector
//! sequences and records, per net, which logic values were ever observed.

use atpg::{InputVector, Logic, SeqSim};
use netlist::{NetId, Netlist};
use std::collections::HashMap;

/// Per-net activity observed during the functional simulation.
#[derive(Clone, Debug)]
pub struct ToggleReport {
    saw_zero: Vec<bool>,
    saw_one: Vec<bool>,
    cycles: usize,
}

impl ToggleReport {
    /// Whether the net took both values at least once.
    pub fn toggled(&self, net: NetId) -> bool {
        self.saw_zero[net.index()] && self.saw_one[net.index()]
    }

    /// The constant value the net held throughout the simulation, if any
    /// (`None` if it toggled or was never definite).
    pub fn constant_value(&self, net: NetId) -> Option<bool> {
        match (self.saw_zero[net.index()], self.saw_one[net.index()]) {
            (true, false) => Some(false),
            (false, true) => Some(true),
            _ => None,
        }
    }

    /// Number of simulated cycles the report is based on.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Fraction of nets that toggled.
    pub fn toggle_coverage(&self) -> f64 {
        if self.saw_zero.is_empty() {
            return 0.0;
        }
        let toggled = (0..self.saw_zero.len())
            .filter(|&i| self.saw_zero[i] && self.saw_one[i])
            .count();
        toggled as f64 / self.saw_zero.len() as f64
    }

    /// Primary-input nets of `netlist` that never showed any activity, with
    /// the constant value they held — the "suspect" signals of §4 that the
    /// debug-control rule then ties off.
    pub fn suspect_inputs(&self, netlist: &Netlist) -> Vec<(NetId, bool)> {
        netlist
            .primary_input_nets()
            .into_iter()
            .filter_map(|net| self.constant_value(net).map(|v| (net, v)))
            .collect()
    }
}

/// Simulates every vector sequence (each starting from the all-zero reset
/// state) and accumulates per-net activity.
///
/// Input nets not mentioned by a vector default to logic 0 — their mission
/// (inactive) value — so unconnected test interfaces naturally show no
/// activity.
///
/// # Errors
///
/// Returns the levelization error message if the design is cyclic.
pub fn analyze_toggles(
    netlist: &Netlist,
    sequences: &[Vec<InputVector>],
) -> Result<ToggleReport, String> {
    let sim = SeqSim::new(netlist).map_err(|e| e.to_string())?;
    let mut saw_zero = vec![false; netlist.num_nets()];
    let mut saw_one = vec![false; netlist.num_nets()];
    let mut cycles = 0usize;
    let pi_nets = netlist.primary_input_nets();
    let forced = HashMap::new();
    let mut scratch = sim.comb().scratch();

    for sequence in sequences {
        let mut state = sim.uniform_state(Logic::Zero);
        for vector in sequence {
            let mut assignment: HashMap<NetId, Logic> = HashMap::with_capacity(pi_nets.len());
            for &pi in &pi_nets {
                let value = vector.get(&pi).copied().unwrap_or(false);
                assignment.insert(pi, Logic::from_bool(value));
            }
            let values = sim.step_with(&mut state, &assignment, &forced, None, &mut scratch);
            for net in netlist.net_ids() {
                match values[net.index()] {
                    Logic::Zero => saw_zero[net.index()] = true,
                    Logic::One => saw_one[net.index()] = true,
                    Logic::X => {}
                }
            }
            cycles += 1;
        }
    }

    Ok(ToggleReport {
        saw_zero,
        saw_one,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn constant_inputs_are_suspect() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let dbg_en = b.input("dbg_enable");
        let ck = b.input("ck");
        let x = b.xor2(a, dbg_en);
        let q = b.dff(x, ck);
        b.output("q", q);
        let n = b.finish();
        // Drive `a` with alternating values; never mention dbg_enable.
        let sequence: Vec<InputVector> = (0..8)
            .map(|i| {
                let mut v = InputVector::new();
                v.insert(a, i % 2 == 0);
                v.insert(ck, true);
                v
            })
            .collect();
        let report = analyze_toggles(&n, &[sequence]).unwrap();
        assert!(report.toggled(a));
        assert!(!report.toggled(dbg_en));
        assert_eq!(report.constant_value(dbg_en), Some(false));
        assert_eq!(report.constant_value(a), None);
        let suspects = report.suspect_inputs(&n);
        assert!(suspects.contains(&(dbg_en, false)));
        assert!(!suspects.iter().any(|&(net, _)| net == a));
        assert_eq!(report.cycles(), 8);
        assert!(report.toggle_coverage() > 0.0);
    }

    #[test]
    fn multiple_sequences_accumulate() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let n = b.finish();
        let seq_zero: Vec<InputVector> = vec![[(a, false)].into_iter().collect()];
        let seq_one: Vec<InputVector> = vec![[(a, true)].into_iter().collect()];
        // Each sequence alone leaves `a` constant…
        let r = analyze_toggles(&n, std::slice::from_ref(&seq_zero)).unwrap();
        assert!(!r.toggled(a));
        // …but together they toggle it.
        let r = analyze_toggles(&n, &[seq_zero, seq_one]).unwrap();
        assert!(r.toggled(a));
        assert!(r.toggled(y));
    }

    #[test]
    fn sbst_suite_leaves_test_interfaces_silent_on_the_soc() {
        use cpu::sbst::{program_stimuli, standard_suite};
        use cpu::soc::SocBuilder;
        let soc = SocBuilder::small().build();
        // One short program is enough for the activity argument.
        let program = &standard_suite()[0];
        let stim = program_stimuli(program, &soc.interface, 400);
        let report = analyze_toggles(&soc.netlist, &[stim.vectors]).unwrap();
        // Functional inputs toggled…
        assert!(report.toggled(soc.interface.imem_rdata[0]));
        // …while every mission-tied test/debug input stayed at its constant.
        for (net, value) in soc.mission_tied_inputs() {
            assert_eq!(
                report.constant_value(net),
                Some(value),
                "net {} should be constant",
                soc.netlist.net(net).name()
            );
        }
        // The suspect list therefore includes the debug enable.
        let suspects = report.suspect_inputs(&soc.netlist);
        assert!(suspects.iter().any(|&(net, _)| net == soc.debug.enable_net));
    }
}
