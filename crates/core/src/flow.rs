//! The end-to-end identification pipeline: baseline structural analysis, the
//! four on-line untestability rules, compiled-engine fault simulation of the
//! functional stimuli, and the constraint-aware PODEM proof stage — the
//! automated counterpart of the full procedure summarised in §4 (search for
//! sources, manipulate the circuit, screen out the untestable faults, and
//! *prove* what the structural screen alone cannot).
//!
//! The pipeline runs against any [`Design`] — the full SoC case study or a
//! bare circuit loaded through [`netlist::frontend`]. Every stage consumes
//! the faults the previous stages left unclassified and records its
//! fault-count delta and wall-clock in the [`IdentificationReport`]. Stages
//! whose prerequisite the design cannot provide (no scan structure, no
//! memory map, no stimuli, …) are skipped, so a pure netlist degrades to the
//! *screen + proof* pipeline while the SoC runs all seven stages. The
//! expensive final stage (PODEM proofs over the surviving undetected faults)
//! fans out across scoped worker threads via [`atpg::proof`]; its
//! classifications are identical for any thread count.

use crate::design::Design;
use crate::report::{IdentificationReport, PhaseResult};
use crate::rules::{
    analyse_manipulation, debug_control_manipulation, debug_observation_manipulation,
    memory_map_manipulation, scan_rule,
};
use crate::toggle::analyze_toggles;
use atpg::analysis::{AnalysisConfig, StructuralAnalysis};
use atpg::checkpoint::{campaign_fingerprint, Checkpoint};
use atpg::proof::{prove_faults_campaign, CampaignError, EngineBreakdown, ProofConfig};
use atpg::{Budget, CancelToken, ConstraintSet, FailurePlan, FaultSim, InputVector, ProofOutcome};
use dft::trace::{find_scan_in_ports, trace_scan_chains};
use faultmodel::{FaultClass, FaultList, StuckAt, UntestableSource};
use netlist::NetId;
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How the flow discovers the mission-constant debug/test control inputs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// Use the SoC's own description of its tied-off test interfaces (fast;
    /// equivalent to reading the integration specification).
    Specification,
    /// Re-derive the list by running the SBST suite and flagging inputs with
    /// no activity, as the paper's engineers did with toggle-coverage metrics
    /// (§4). Slower, but needs no prior knowledge.
    ToggleAnalysis,
}

/// Configuration of the PODEM proof stage.
///
/// The default proves the **entire** surviving undetected population — the
/// three per-fault reductions (cone clipping, SCOAP guidance and
/// collapse-scheduling, all on by default) make the full survivor set
/// affordable, so `max_faults` is a debugging aid rather than a necessity.
#[derive(Clone, Debug)]
pub struct ProofStageConfig {
    /// Backtrack budget per fault; exhausted searches stay unclassified.
    pub backtrack_limit: usize,
    /// Worker threads for the fan-out (`0` = available parallelism). Any
    /// value produces identical classifications.
    pub threads: usize,
    /// Upper bound on the number of surviving undetected faults handed to
    /// PODEM; `None` (the default) proves the whole population. Survivors
    /// are taken in fault-universe order unless `sample_seed` is set.
    pub max_faults: Option<usize>,
    /// When `max_faults` truncates the population, shuffle the survivors
    /// first with this deterministic seed so the slice is a representative
    /// sample instead of a universe-order prefix. `None` keeps the prefix.
    pub sample_seed: Option<u64>,
    /// Prove one representative per structural equivalence class and expand
    /// concluded verdicts across the class (aborts never expand).
    pub use_collapse: bool,
    /// Clip every PODEM search to the fault's cones (faulty simulation over
    /// the fanout cone, incremental good machine).
    pub cone_clip: bool,
    /// Steer the PODEM searches with SCOAP testability measures.
    pub use_scoap: bool,
    /// Prune hopeless branches with the X-path check. Turning all four
    /// toggles off reproduces the pre-acceleration proof stage exactly.
    pub use_x_path: bool,
    /// Escalate PODEM aborts to the SAT proof backend (the PODEM/SAT
    /// portfolio). On by default at the flow level: the portfolio converts
    /// most of the abort column into proofs for the cost of re-attempting
    /// only the faults PODEM already gave up on.
    pub use_sat: bool,
    /// Conflict budget per SAT escalation; exhausted solves stay aborted.
    pub sat_conflict_limit: u64,
    /// Wall-clock budget for the whole proof stage; faults not concluded by
    /// then come back as timeout aborts (the campaign survives, the report
    /// records the deadline hits). `None` — the default — is unbounded.
    pub stage_timeout: Option<Duration>,
    /// Per-fault wall-clock limit, additionally capped by the stage
    /// deadline.
    pub fault_timeout: Option<Duration>,
    /// Checkpoint file for the proof stage: concluded verdicts are appended
    /// incrementally and a later run resumes by re-proving only the faults
    /// the interrupted run never concluded. The file is keyed by a
    /// netlist+constraints+config fingerprint and refused on mismatch.
    pub checkpoint: Option<PathBuf>,
    /// Cooperative cancel token shared with the caller: cancelling it stops
    /// the proof stage at the next engine poll point (the in-flight faults
    /// come back as timeout aborts).
    pub cancel: Option<CancelToken>,
    /// Test-only failure injection threaded through to the proof engines
    /// (worker panics, stalls, bogus SAT models). `None` — the default and
    /// the only production value — injects nothing; chaos suites use it to
    /// prove the supervision layers recover.
    pub failure_plan: Option<FailurePlan>,
}

impl Default for ProofStageConfig {
    fn default() -> Self {
        ProofStageConfig {
            backtrack_limit: 32,
            threads: 0,
            max_faults: None,
            sample_seed: None,
            use_collapse: true,
            cone_clip: true,
            use_scoap: true,
            use_x_path: true,
            use_sat: true,
            sat_conflict_limit: 20_000,
            stage_timeout: None,
            fault_timeout: None,
            checkpoint: None,
            cancel: None,
            failure_plan: None,
        }
    }
}

impl ProofStageConfig {
    fn engine_config(&self) -> ProofConfig {
        ProofConfig {
            backtrack_limit: self.backtrack_limit,
            threads: self.threads,
            use_collapse: self.use_collapse,
            cone_clip: self.cone_clip,
            use_scoap: self.use_scoap,
            use_x_path: self.use_x_path,
            use_sat: self.use_sat,
            sat_conflict_limit: self.sat_conflict_limit,
            failure_plan: self.failure_plan,
        }
    }

    fn budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(token) = &self.cancel {
            budget = budget.with_cancel(token.clone());
        }
        if let Some(timeout) = self.stage_timeout {
            budget = budget.with_stage_timeout(timeout);
        }
        if let Some(timeout) = self.fault_timeout {
            budget = budget.with_fault_timeout(timeout);
        }
        budget
    }
}

/// Configuration of the identification flow.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Classify baseline structural untestability first so that it is not
    /// attributed to any on-line source.
    pub classify_baseline: bool,
    /// How to find the tied-off control inputs.
    pub discovery: DiscoveryMode,
    /// Cycle budget per SBST program when `discovery` is
    /// [`DiscoveryMode::ToggleAnalysis`].
    pub toggle_max_cycles: usize,
    /// Also run PODEM redundancy proofs inside every structural analysis
    /// (slower, catches a few additional redundant faults).
    pub prove_redundancy: bool,
    /// Run the §3.1 scan rule.
    pub run_scan: bool,
    /// Run the §3.2.1 debug control rule.
    pub run_debug_control: bool,
    /// Run the §3.2.2 debug observation rule.
    pub run_debug_observation: bool,
    /// Run the §3.3 memory-map rule.
    pub run_memory_map: bool,
    /// Grade the SBST suite on the compiled fault simulator and mark detected
    /// faults, so the proof stage only sees genuine survivors. Off by default
    /// (it simulates the whole surviving universe).
    pub run_sbst_simulation: bool,
    /// Cycle budget per SBST program for the simulation stage.
    pub sbst_max_cycles: usize,
    /// Run the constraint-aware PODEM proof stage over the faults that
    /// survive every previous stage. Off by default.
    pub run_atpg_proof: bool,
    /// Tuning of the proof stage.
    pub proof: ProofStageConfig,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            classify_baseline: true,
            discovery: DiscoveryMode::Specification,
            toggle_max_cycles: 600,
            prove_redundancy: false,
            run_scan: true,
            run_debug_control: true,
            run_debug_observation: true,
            run_memory_map: true,
            run_sbst_simulation: false,
            sbst_max_cycles: 2_000,
            run_atpg_proof: false,
            proof: ProofStageConfig::default(),
        }
    }
}

impl FlowConfig {
    /// The full staged pipeline: every structural rule plus the SBST
    /// simulation and PODEM proof stages.
    pub fn full_pipeline() -> Self {
        FlowConfig {
            run_sbst_simulation: true,
            run_atpg_proof: true,
            ..FlowConfig::default()
        }
    }
}

/// Errors produced by the flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// The design could not be levelized (combinational loop).
    Analysis(String),
    /// The scan chains could not be traced.
    ScanTrace(String),
    /// The proof-stage checkpoint could not be opened, parsed, or written
    /// (including a fingerprint mismatch with the current campaign).
    Checkpoint(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Analysis(msg) => write!(f, "structural analysis failed: {msg}"),
            FlowError::ScanTrace(msg) => write!(f, "scan tracing failed: {msg}"),
            FlowError::Checkpoint(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Seeded Fisher–Yates shuffle over a slice, with a splitmix64 generator so
/// the proof-stage sampling needs no RNG dependency and is reproducible
/// across platforms.
fn deterministic_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The on-line functionally untestable fault identification flow.
#[derive(Clone, Debug, Default)]
pub struct IdentificationFlow {
    config: FlowConfig,
}

/// The design's per-run capability snapshot, gathered once — the accessors
/// may walk the whole netlist (e.g. address-register discovery), so the
/// stage gates, the stages themselves and the mission constraints all share
/// one copy.
struct DesignSpecs {
    scan: Option<crate::design::ScanSpec>,
    memory_map: Option<crate::design::MemoryMapSpec>,
    observation: Vec<netlist::CellId>,
    /// The specification-declared control inputs (the discovery machinery
    /// may replace these with toggle-analysis results).
    control: Vec<(NetId, bool)>,
}

impl DesignSpecs {
    fn gather(design: &dyn Design) -> Self {
        DesignSpecs {
            scan: design.scan_spec(),
            memory_map: design.memory_map_spec(),
            observation: design.observation_outputs(),
            control: design.control_inputs(),
        }
    }
}

/// Mutable state threaded through the pipeline stages.
struct StageContext<'a> {
    design: &'a dyn Design,
    specs: DesignSpecs,
    master: FaultList,
    phases: Vec<PhaseResult>,
    baseline_structural: usize,
    /// Discovered tied control inputs, computed at most once per run — under
    /// [`DiscoveryMode::ToggleAnalysis`] discovery means simulating the whole
    /// stimulus suite, which the debug-control stage and the proof stage
    /// would otherwise both pay for.
    tied_inputs: Option<Vec<(NetId, bool)>>,
    /// Per-engine outcome counts of the proof stage, filled in when it runs.
    engine_breakdown: Option<EngineBreakdown>,
}

impl StageContext<'_> {
    /// Times `stage`, which returns the number of newly classified faults,
    /// and records the per-stage delta against the master list.
    fn record(
        &mut self,
        name: &str,
        stage: impl FnOnce(&mut Self) -> Result<usize, FlowError>,
    ) -> Result<(), FlowError> {
        let start = Instant::now();
        let newly_classified = stage(self)?;
        self.phases.push(PhaseResult {
            name: name.to_string(),
            newly_classified,
            undetected_after: self.master.counts().undetected,
            duration: start.elapsed(),
        });
        Ok(())
    }
}

impl IdentificationFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        IdentificationFlow { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the flow and returns the report only.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn run<D: Design>(&self, design: &D) -> Result<IdentificationReport, FlowError> {
        self.run_with_faults(design).map(|(report, _)| report)
    }

    /// Runs the staged pipeline and returns both the report and the fully
    /// classified master fault list (useful for subsequent coverage grading).
    ///
    /// Stages whose prerequisite `design` does not provide — scan structure,
    /// control inputs, observation outputs, memory map, stimuli — are
    /// skipped and leave no phase entry.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn run_with_faults<D: Design>(
        &self,
        design: &D,
    ) -> Result<(IdentificationReport, FaultList), FlowError> {
        self.run_design(design)
    }

    fn run_design(
        &self,
        design: &dyn Design,
    ) -> Result<(IdentificationReport, FaultList), FlowError> {
        let mut ctx = StageContext {
            design,
            specs: DesignSpecs::gather(design),
            master: FaultList::full_universe(design.netlist()),
            phases: Vec::new(),
            baseline_structural: 0,
            tied_inputs: None,
            engine_breakdown: None,
        };

        // Stage 0: baseline structural untestability.
        if self.config.classify_baseline {
            ctx.record("baseline", |ctx| self.stage_baseline(ctx))?;
        }
        // Stages 1–4: the §3 screening rules on the manipulated circuit,
        // each gated on the design actually having that structure. The
        // debug-control gate passes when the design declares control inputs
        // or when toggle-analysis discovery has stimuli to derive them from;
        // a design with neither skips the stage under every discovery mode.
        if self.config.run_scan && ctx.specs.scan.is_some() {
            ctx.record("scan", |ctx| self.stage_scan(ctx))?;
        }
        if self.config.run_debug_control
            && (!ctx.specs.control.is_empty()
                || (self.config.discovery == DiscoveryMode::ToggleAnalysis
                    && design.provides_stimuli()))
        {
            ctx.record("debug-control", |ctx| self.stage_debug_control(ctx))?;
        }
        if self.config.run_debug_observation && !ctx.specs.observation.is_empty() {
            ctx.record("debug-observe", |ctx| self.stage_debug_observation(ctx))?;
        }
        if self.config.run_memory_map
            && ctx
                .specs
                .memory_map
                .as_ref()
                .is_some_and(|spec| !spec.address_registers.is_empty())
        {
            ctx.record("memory-map", |ctx| self.stage_memory_map(ctx))?;
        }
        // Stage 5: drop everything the functional stimuli actually detect.
        if self.config.run_sbst_simulation && design.provides_stimuli() {
            ctx.record("sbst-sim", |ctx| self.stage_sbst_simulation(ctx))?;
        }
        // Stage 6: prove untestability of the survivors under the mission
        // constraints.
        if self.config.run_atpg_proof {
            ctx.record("atpg-proof", |ctx| self.stage_atpg_proof(ctx))?;
        }

        let report = IdentificationReport {
            design: design.netlist().name().to_string(),
            total_faults: ctx.master.len(),
            baseline_structural: ctx.baseline_structural,
            phases: ctx.phases,
            counts: ctx.master.counts(),
            engine_breakdown: ctx
                .engine_breakdown
                .map(|b| crate::report::ProofEngineBreakdown {
                    podem_test_exists: b.podem_test_exists,
                    podem_proven: b.podem_proven,
                    podem_aborted: b.podem_aborted,
                    sat_test_exists: b.sat_test_exists,
                    sat_proven: b.sat_proven,
                    sat_aborted: b.sat_aborted,
                    aborted_backtracks: b.aborted_backtracks,
                    aborted_conflicts: b.aborted_conflicts,
                    aborted_timeout: b.aborted_timeout,
                    aborted_panicked: b.aborted_panicked,
                    aborted_unsupported: b.aborted_unsupported,
                }),
        };
        Ok((report, ctx.master))
    }

    // ------------------------------------------------------------------
    // Pipeline stages.
    // ------------------------------------------------------------------

    /// Phase 0: baseline structural untestability.
    fn stage_baseline(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        let outcome = StructuralAnalysis::new(AnalysisConfig {
            prove_redundancy: self.config.prove_redundancy,
            ..AnalysisConfig::default()
        })
        .run(ctx.design.netlist(), &mut ctx.master)
        .map_err(|e| FlowError::Analysis(e.to_string()))?;
        ctx.baseline_structural = outcome.total_untestable();
        Ok(ctx.baseline_structural)
    }

    /// Phase 1: scan circuitry (§3.1).
    fn stage_scan(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        let spec = ctx.specs.scan.as_ref().expect("stage gated on the spec");
        let netlist = ctx.design.netlist();
        let ports = find_scan_in_ports(netlist, &spec.scan_in_prefix);
        let trace = trace_scan_chains(netlist, &ports, &spec.scan_out_prefix)
            .map_err(|e| FlowError::ScanTrace(e.to_string()))?;
        let result = scan_rule(netlist, &trace, spec.mission_scan_enable_value);
        let mut newly = 0usize;
        for fault in result.untestable {
            if ctx
                .master
                .classify_if_undetected(fault, FaultClass::OnlineUntestable(UntestableSource::Scan))
            {
                newly += 1;
            }
        }
        Ok(newly)
    }

    /// Phase 2: debug control logic (§3.2.1) — for generic designs, the
    /// spec-forced nets take the role of the tied-off control inputs.
    fn stage_debug_control(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        let tied = self.control_inputs_cached(ctx)?;
        let manipulation = debug_control_manipulation(&tied);
        let (analysed, _) = analyse_manipulation(
            ctx.design.netlist(),
            &manipulation,
            self.config.prove_redundancy,
        )
        .map_err(FlowError::Analysis)?;
        Ok(ctx.master.import_classes(&analysed, |class| {
            class
                .is_structurally_untestable()
                .then_some(FaultClass::OnlineUntestable(UntestableSource::DebugControl))
        }))
    }

    /// Phase 3: debug observation logic (§3.2.2) — for generic designs, the
    /// spec-masked observation points.
    fn stage_debug_observation(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        let manipulation = debug_observation_manipulation(&ctx.specs.observation);
        let (analysed, _) = analyse_manipulation(
            ctx.design.netlist(),
            &manipulation,
            self.config.prove_redundancy,
        )
        .map_err(FlowError::Analysis)?;
        Ok(ctx.master.import_classes(&analysed, |class| {
            class
                .is_structurally_untestable()
                .then_some(FaultClass::OnlineUntestable(
                    UntestableSource::DebugObservation,
                ))
        }))
    }

    /// Phase 4: memory map (§3.3).
    fn stage_memory_map(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        let spec = ctx
            .specs
            .memory_map
            .as_ref()
            .expect("stage gated on the spec");
        let manipulation =
            memory_map_manipulation(ctx.design.netlist(), &spec.address_registers, &spec.map);
        let (analysed, _) = analyse_manipulation(
            ctx.design.netlist(),
            &manipulation,
            self.config.prove_redundancy,
        )
        .map_err(FlowError::Analysis)?;
        Ok(ctx.master.import_classes(&analysed, |class| {
            class
                .is_structurally_untestable()
                .then_some(FaultClass::OnlineUntestable(UntestableSource::MemoryMap))
        }))
    }

    /// Phase 5: compiled-engine fault simulation of the design's functional
    /// stimuli (the SBST suite on the SoC), observing only the
    /// mission-visible outputs — faults the stimuli detect are dropped
    /// before the expensive proof stage.
    fn stage_sbst_simulation(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        // `Design` is a public extension point, so a provides_stimuli /
        // stimuli disagreement is surfaced as an error, not a panic.
        let stimuli = ctx
            .design
            .stimuli(self.config.sbst_max_cycles)
            .ok_or_else(|| {
                FlowError::Analysis(
                    "design advertises stimuli (provides_stimuli) but stimuli() returned none"
                        .to_string(),
                )
            })?;
        let sim =
            FaultSim::new(ctx.design.netlist()).map_err(|e| FlowError::Analysis(e.to_string()))?;
        let batches: Vec<&[InputVector]> = stimuli.batches.iter().map(|b| b.as_slice()).collect();
        let outcome =
            sim.run_batches_and_classify(&mut ctx.master, &batches, &stimuli.observed_outputs);
        Ok(outcome.detected)
    }

    /// Phase 6: constraint-aware PODEM proofs over the surviving undetected
    /// faults, fanned out across worker threads, with aborted searches
    /// escalated to the SAT backend when the portfolio is on. Proven faults
    /// are re-labelled [`UntestableSource::AtpgProof`]; faults neither engine
    /// concludes stay unclassified. The per-engine outcome counts land in the
    /// report's `engine_breakdown`.
    ///
    /// The stage honours the survivability knobs in [`ProofStageConfig`]:
    /// wall-clock deadlines and cancellation turn unconcluded faults into
    /// timeout aborts, and a configured checkpoint file lets an interrupted
    /// campaign resume by re-proving only the faults it never concluded.
    fn stage_atpg_proof(&self, ctx: &mut StageContext<'_>) -> Result<usize, FlowError> {
        let tied = self.control_inputs_cached(ctx)?;
        let constraints = self.mission_constraints_from(ctx.design, &ctx.specs, &tied);
        let mut survivors: Vec<(usize, StuckAt)> = ctx.master.undetected().collect();
        if let Some(cap) = self.config.proof.max_faults {
            if let Some(seed) = self.config.proof.sample_seed {
                deterministic_shuffle(&mut survivors, seed);
            }
            survivors.truncate(cap);
        }
        let faults: Vec<StuckAt> = survivors.iter().map(|&(_, f)| f).collect();
        let engine_config = self.config.proof.engine_config();
        let checkpoint = match &self.config.proof.checkpoint {
            Some(path) => {
                let fingerprint =
                    campaign_fingerprint(ctx.design.netlist(), &constraints, &engine_config);
                Some(
                    Checkpoint::create_or_resume(path, fingerprint)
                        .map_err(|e| FlowError::Checkpoint(e.to_string()))?,
                )
            }
            None => None,
        };
        let campaign = prove_faults_campaign(
            ctx.design.netlist(),
            &constraints,
            &faults,
            &engine_config,
            &self.config.proof.budget(),
            checkpoint.as_ref(),
        )
        .map_err(|e| match e {
            CampaignError::Cyclic(loop_err) => FlowError::Analysis(loop_err.to_string()),
            CampaignError::Checkpoint(ckpt_err) => FlowError::Checkpoint(ckpt_err.to_string()),
        })?;
        ctx.engine_breakdown = Some(EngineBreakdown::from_outcomes(&campaign.outcomes));
        let mut newly = 0usize;
        for (&(index, _), outcome) in survivors.iter().zip(&campaign.outcomes) {
            if outcome.outcome == ProofOutcome::ProvenUntestable {
                ctx.master.classify_at(
                    index,
                    FaultClass::OnlineUntestable(UntestableSource::AtpgProof),
                );
                newly += 1;
            }
        }
        Ok(newly)
    }

    // ------------------------------------------------------------------
    // Environment helpers.
    // ------------------------------------------------------------------

    /// The full mission-mode environment for the proof stage: every tied
    /// debug/test control input (per the configured discovery mode), the scan
    /// interface held at its mission values, the memory-map register ties,
    /// and every mission-unobserved output masked.
    pub fn mission_constraints<D: Design>(&self, design: &D) -> Result<ConstraintSet, FlowError> {
        let specs = DesignSpecs::gather(design);
        let tied = self.control_inputs(design, &specs)?;
        Ok(self.mission_constraints_from(design, &specs, &tied))
    }

    /// [`mission_constraints`](Self::mission_constraints) with the specs
    /// already gathered and the control inputs already discovered (the
    /// pipeline caches both per run).
    fn mission_constraints_from(
        &self,
        design: &dyn Design,
        specs: &DesignSpecs,
        tied_inputs: &[(NetId, bool)],
    ) -> ConstraintSet {
        let mut constraints = ConstraintSet::full_scan();
        // Debug/test control inputs (discovery-mode dependent).
        for &(net, value) in tied_inputs {
            constraints.tie_net(net, value);
        }
        // Scan interface at mission values (§3.1).
        if let Some(scan) = &specs.scan {
            if let Some(se) = scan.scan_enable_net {
                constraints.tie_net(se, scan.mission_scan_enable_value);
            }
            for chain in &scan.chains {
                constraints.tie_net(chain.scan_in_net, false);
            }
        }
        // Memory-map register ties (§3.3).
        if let Some(spec) = &specs.memory_map {
            let manipulation =
                memory_map_manipulation(design.netlist(), &spec.address_registers, &spec.map);
            for (net, value) in manipulation
                .to_constraints()
                .forced_nets
                .iter()
                .map(|(&net, &value)| (net, value == atpg::Logic::One))
            {
                constraints.tie_net(net, value);
            }
        }
        // Mission-unobserved outputs (§3.2.2 plus the scan-outs).
        for &po in &specs.observation {
            constraints.mask_output(po);
        }
        if let Some(scan) = &specs.scan {
            for chain in &scan.chains {
                constraints.mask_output(chain.scan_out_port);
            }
        }
        constraints
    }

    /// The control inputs, discovered at most once per pipeline run.
    fn control_inputs_cached(
        &self,
        ctx: &mut StageContext<'_>,
    ) -> Result<Vec<(NetId, bool)>, FlowError> {
        if ctx.tied_inputs.is_none() {
            ctx.tied_inputs = Some(self.control_inputs(ctx.design, &ctx.specs)?);
        }
        Ok(ctx.tied_inputs.clone().expect("just populated"))
    }

    /// The tied control inputs, according to the configured discovery mode.
    ///
    /// Toggle-analysis discovery falls back to the design's specification
    /// list when the design provides no stimuli to analyse.
    fn control_inputs(
        &self,
        design: &dyn Design,
        specs: &DesignSpecs,
    ) -> Result<Vec<(NetId, bool)>, FlowError> {
        match self.config.discovery {
            DiscoveryMode::Specification => Ok(specs.control.clone()),
            DiscoveryMode::ToggleAnalysis => {
                let Some(stimuli) = design.stimuli(self.config.toggle_max_cycles) else {
                    return Ok(specs.control.clone());
                };
                let report = analyze_toggles(design.netlist(), &stimuli.batches)
                    .map_err(FlowError::Analysis)?;
                // Inputs with no activity are suspects; exclude the functional
                // inputs (clock, reset, memory read buses — constant values on
                // those are an artefact of the stimulus, not of the mission
                // configuration) and the scan interface (attributed to the
                // scan rule).
                let functional = design.functional_inputs();
                let mut scan_nets: Vec<NetId> = Vec::new();
                if let Some(scan) = &specs.scan {
                    scan_nets.extend(scan.chains.iter().map(|c| c.scan_in_net));
                    scan_nets.extend(scan.scan_enable_net);
                }
                Ok(report
                    .suspect_inputs(design.netlist())
                    .into_iter()
                    .filter(|(net, _)| !functional.contains(net) && !scan_nets.contains(net))
                    .collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::core_gen::CoreConfig;
    use cpu::soc::SocBuilder;
    use dft::scan::ScanConfig;

    /// A deliberately tiny SoC so the full pipeline (SBST simulation + PODEM
    /// proofs) stays affordable in debug-mode tests.
    fn micro_soc() -> cpu::soc::Soc {
        SocBuilder::small()
            .core_config(CoreConfig {
                num_regs: 4,
                btb_entries: 2,
                include_cycle_counter: false,
            })
            .scan_config(ScanConfig {
                num_chains: 1,
                ..ScanConfig::default()
            })
            .build()
    }

    fn micro_pipeline_config() -> FlowConfig {
        FlowConfig {
            sbst_max_cycles: 200,
            proof: ProofStageConfig {
                backtrack_limit: 8,
                threads: 1,
                max_faults: Some(1_500),
                ..ProofStageConfig::default()
            },
            ..FlowConfig::full_pipeline()
        }
    }

    #[test]
    fn full_flow_on_small_soc_finds_all_sources() {
        let soc = SocBuilder::small().build();
        let (report, faults) = IdentificationFlow::new(FlowConfig::default())
            .run_with_faults(&soc)
            .unwrap();
        assert_eq!(report.total_faults, faults.len());
        // Every §3 source contributes something (the proof stage is off in
        // the default configuration).
        assert!(report.count_for(UntestableSource::Scan) > 0, "{report}");
        assert!(
            report.count_for(UntestableSource::DebugControl) > 0,
            "{report}"
        );
        assert!(
            report.count_for(UntestableSource::DebugObservation) > 0,
            "{report}"
        );
        assert!(
            report.count_for(UntestableSource::MemoryMap) > 0,
            "{report}"
        );
        assert_eq!(report.count_for(UntestableSource::AtpgProof), 0);
        // Scan dominates, as in Table I.
        assert!(
            report.count_for(UntestableSource::Scan)
                > report.count_for(UntestableSource::MemoryMap)
        );
        // The overall fraction lands in a plausible band (Table I: 13.8 %).
        let fraction = report.untestable_fraction();
        assert!(
            (0.02..0.40).contains(&fraction),
            "untestable fraction {fraction:.3} out of band"
        );
        // Consistency between report and fault list.
        assert_eq!(report.counts, faults.counts());
        assert_eq!(
            report.total_untestable(),
            faults.counts().online_untestable_total()
        );
        // Per-stage deltas are recorded and consistent: the remainder never
        // grows from stage to stage.
        for pair in report.phases.windows(2) {
            assert!(
                pair[1].undetected_after <= pair[0].undetected_after,
                "{report}"
            );
        }
    }

    #[test]
    fn phases_can_be_disabled() {
        let soc = SocBuilder::small().build();
        let config = FlowConfig {
            run_scan: false,
            run_debug_control: false,
            run_debug_observation: false,
            run_memory_map: true,
            ..FlowConfig::default()
        };
        let report = IdentificationFlow::new(config).run(&soc).unwrap();
        assert_eq!(report.count_for(UntestableSource::Scan), 0);
        assert_eq!(report.count_for(UntestableSource::DebugControl), 0);
        assert!(report.count_for(UntestableSource::MemoryMap) > 0);
        // Phase list contains baseline + memory-map only.
        assert_eq!(report.phases.len(), 2);
    }

    #[test]
    fn sources_are_disjoint() {
        let soc = SocBuilder::small().build();
        let (report, faults) = IdentificationFlow::new(FlowConfig::default())
            .run_with_faults(&soc)
            .unwrap();
        // Each fault carries exactly one class, so the per-source counts plus
        // everything else must add up to the universe.
        let counts = faults.counts();
        assert_eq!(counts.total(), report.total_faults);
        let sum: usize = UntestableSource::ALL
            .iter()
            .map(|&s| report.count_for(s))
            .sum();
        assert_eq!(sum, report.total_untestable());
    }

    #[test]
    fn toggle_discovery_matches_specification_on_small_soc() {
        let soc = SocBuilder::small().build();
        let spec_report = IdentificationFlow::new(FlowConfig::default())
            .run(&soc)
            .unwrap();
        let toggle_report = IdentificationFlow::new(FlowConfig {
            discovery: DiscoveryMode::ToggleAnalysis,
            toggle_max_cycles: 300,
            ..FlowConfig::default()
        })
        .run(&soc)
        .unwrap();
        // The toggle-derived debug-control count must be at least the
        // specification-derived one (the SBST suite may leave further inputs
        // untouched, e.g. the reset, which we exclude, so equality is the
        // common case) and never smaller.
        assert!(
            toggle_report.count_for(UntestableSource::DebugControl)
                >= spec_report.count_for(UntestableSource::DebugControl),
            "toggle {} < spec {}",
            toggle_report.count_for(UntestableSource::DebugControl),
            spec_report.count_for(UntestableSource::DebugControl)
        );
        // Scan and memory-map results are identical (they do not depend on
        // the discovery mode).
        assert_eq!(
            toggle_report.count_for(UntestableSource::Scan),
            spec_report.count_for(UntestableSource::Scan)
        );
        assert_eq!(
            toggle_report.count_for(UntestableSource::MemoryMap),
            spec_report.count_for(UntestableSource::MemoryMap)
        );
    }

    #[test]
    fn full_pipeline_runs_all_seven_stages_and_stays_consistent() {
        let soc = micro_soc();
        let (report, faults) = IdentificationFlow::new(micro_pipeline_config())
            .run_with_faults(&soc)
            .unwrap();
        assert_eq!(report.phases.len(), 7, "{report}");
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "baseline",
                "scan",
                "debug-control",
                "debug-observe",
                "memory-map",
                "sbst-sim",
                "atpg-proof"
            ]
        );
        // The simulation stage detects a substantial share of the universe.
        let sbst = report.phase("sbst-sim").unwrap();
        assert!(sbst.newly_classified > 0, "{report}");
        assert_eq!(faults.counts().detected, sbst.newly_classified);
        // The proof stage classifies from the survivors only, and its delta
        // shows up as the AtpgProof bucket. The pipeline is deterministic, so
        // a nonzero bucket is a stable property of this configuration.
        let proof = report.phase("atpg-proof").unwrap();
        assert!(proof.newly_classified > 0, "{report}");
        assert_eq!(
            proof.newly_classified,
            report.count_for(UntestableSource::AtpgProof)
        );
        assert!(proof.undetected_after <= sbst.undetected_after, "{report}");
        // Detected and proven populations are disjoint by construction.
        assert_eq!(report.counts, faults.counts());
        assert_eq!(report.counts.total(), report.total_faults);
    }

    #[test]
    fn sat_escalation_converts_aborts_and_reports_the_breakdown() {
        let soc = micro_soc();
        let portfolio = IdentificationFlow::new(micro_pipeline_config())
            .run(&soc)
            .unwrap();
        let podem_only_config = FlowConfig {
            proof: ProofStageConfig {
                use_sat: false,
                ..micro_pipeline_config().proof
            },
            ..micro_pipeline_config()
        };
        let podem_only = IdentificationFlow::new(podem_only_config)
            .run(&soc)
            .unwrap();
        let with = portfolio.engine_breakdown.expect("proof stage ran");
        let without = podem_only.engine_breakdown.expect("proof stage ran");
        // Same survivors reach the proof stage either way.
        let attempted = |b: &crate::report::ProofEngineBreakdown| {
            b.test_exists_total() + b.proven_total() + b.aborted_total()
        };
        assert_eq!(attempted(&with), attempted(&without));
        // With the portfolio off, no fault is ever attributed to SAT.
        assert_eq!(
            without.sat_test_exists + without.sat_proven + without.sat_aborted,
            0,
            "{podem_only}"
        );
        // The tiny backtrack budget leaves genuine aborts for SAT to work
        // on; the escalation must conclude some of them and can only ever
        // shrink the abort column.
        assert!(without.aborted_total() > 0, "{podem_only}");
        assert!(with.sat_proven + with.sat_test_exists > 0, "{portfolio}");
        assert!(
            with.aborted_total() < without.aborted_total(),
            "{portfolio}"
        );
        // Every proven outcome is one AtpgProof classification, and the
        // breakdown row reaches the rendered report.
        assert_eq!(
            portfolio.count_for(UntestableSource::AtpgProof),
            with.proven_total()
        );
        assert!(
            portfolio.count_for(UntestableSource::AtpgProof)
                >= podem_only.count_for(UntestableSource::AtpgProof)
        );
        assert!(portfolio.to_string().contains("proof engines: PODEM"));
        // Without a proof stage there is no breakdown to report.
        let screened = IdentificationFlow::new(FlowConfig::default())
            .run(&soc)
            .unwrap();
        assert!(screened.engine_breakdown.is_none());
    }

    #[test]
    fn proof_stage_classifications_are_thread_invariant() {
        let soc = micro_soc();
        let single = IdentificationFlow::new(micro_pipeline_config())
            .run_with_faults(&soc)
            .unwrap();
        let multi_config = FlowConfig {
            proof: ProofStageConfig {
                threads: 4,
                ..micro_pipeline_config().proof
            },
            ..micro_pipeline_config()
        };
        let multi = IdentificationFlow::new(multi_config)
            .run_with_faults(&soc)
            .unwrap();
        // Identical classifications fault-by-fault, not just identical counts.
        assert_eq!(single.0.counts, multi.0.counts);
        for ((f1, c1), (f2, c2)) in single.1.iter().zip(multi.1.iter()) {
            assert_eq!(f1, f2);
            assert_eq!(c1, c2, "{f1:?}");
        }
    }

    #[test]
    fn proof_cap_limits_the_attempted_population() {
        let soc = micro_soc();
        let capped = FlowConfig {
            proof: ProofStageConfig {
                max_faults: Some(40),
                ..micro_pipeline_config().proof
            },
            ..micro_pipeline_config()
        };
        let report = IdentificationFlow::new(capped).run(&soc).unwrap();
        // At most 40 faults were attempted, so at most 40 can be proven.
        assert!(
            report.count_for(UntestableSource::AtpgProof) <= 40,
            "{report}"
        );
    }

    #[test]
    fn accelerations_do_not_change_the_proof_bucket() {
        // Cone clipping changes no decision and collapse expansion is sound,
        // so switching both off must classify identically fault-by-fault
        // (SCOAP stays off on both sides: it may legitimately move the abort
        // boundary under a finite backtrack budget).
        let soc = micro_soc();
        let accelerated = FlowConfig {
            proof: ProofStageConfig {
                use_scoap: false,
                ..micro_pipeline_config().proof
            },
            ..micro_pipeline_config()
        };
        let plain = FlowConfig {
            proof: ProofStageConfig {
                use_collapse: false,
                cone_clip: false,
                use_scoap: false,
                ..micro_pipeline_config().proof
            },
            ..micro_pipeline_config()
        };
        let fast = IdentificationFlow::new(accelerated)
            .run_with_faults(&soc)
            .unwrap();
        let slow = IdentificationFlow::new(plain)
            .run_with_faults(&soc)
            .unwrap();
        assert_eq!(fast.0.counts, slow.0.counts);
        for ((f1, c1), (f2, c2)) in fast.1.iter().zip(slow.1.iter()) {
            assert_eq!(f1, f2);
            assert_eq!(c1, c2, "{f1:?}");
        }
    }

    #[test]
    fn seeded_proof_sampling_is_deterministic_and_respects_the_cap() {
        let soc = micro_soc();
        let sampled = |seed: u64| FlowConfig {
            proof: ProofStageConfig {
                max_faults: Some(40),
                sample_seed: Some(seed),
                ..micro_pipeline_config().proof
            },
            ..micro_pipeline_config()
        };
        let a = IdentificationFlow::new(sampled(7)).run(&soc).unwrap();
        let b = IdentificationFlow::new(sampled(7)).run(&soc).unwrap();
        assert_eq!(a.counts, b.counts, "same seed, same sample, same result");
        assert!(a.count_for(UntestableSource::AtpgProof) <= 40, "{a}");
        // A different seed draws a different sample of the same survivors;
        // the stage still runs and the cap still holds.
        let c = IdentificationFlow::new(sampled(8)).run(&soc).unwrap();
        assert!(c.count_for(UntestableSource::AtpgProof) <= 40, "{c}");
    }

    #[test]
    fn deterministic_shuffle_is_a_permutation() {
        let mut items: Vec<usize> = (0..100).collect();
        deterministic_shuffle(&mut items, 42);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, sorted, "a 100-element shuffle should move something");
        let mut again: Vec<usize> = (0..100).collect();
        deterministic_shuffle(&mut again, 42);
        assert_eq!(items, again, "same seed, same permutation");
    }

    /// A small combinational circuit with a mission-constant input and an
    /// observation-only output, as a generic netlist design.
    fn generic_design() -> crate::design::NetlistDesign {
        use netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("generic");
        let a = b.input_bus("a", 4);
        let te = b.input("test_enable");
        let mut stage = Vec::new();
        for i in 0..4 {
            // `test_enable` gates every bit, so forcing it to 0 makes logic
            // untestable; one bit also feeds a debug-only output.
            let gated = b.and2(a[i], te);
            stage.push(b.xor2(gated, a[(i + 1) % 4]));
        }
        let y = b.reduce_or(&stage);
        b.output("y", y);
        b.output("dbg", stage[0]);
        let n = b.finish();
        crate::design::NetlistDesign::with_constraints(
            n,
            &crate::design::ConstraintSpec {
                forced: vec![("test_enable".into(), false)],
                masked: vec!["dbg".into()],
            },
        )
        .unwrap()
    }

    #[test]
    fn generic_design_degrades_to_screen_plus_proof() {
        let design = generic_design();
        let config = FlowConfig {
            proof: ProofStageConfig {
                backtrack_limit: 16,
                threads: 1,
                ..ProofStageConfig::default()
            },
            ..FlowConfig::full_pipeline()
        };
        let (report, faults) = IdentificationFlow::new(config)
            .run_with_faults(&design)
            .unwrap();
        // Scan, memory-map and sbst-sim are skipped: the design has no scan
        // structure, no address registers and no stimuli.
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["baseline", "debug-control", "debug-observe", "atpg-proof"],
            "{report}"
        );
        assert_eq!(report.count_for(UntestableSource::Scan), 0);
        assert_eq!(report.count_for(UntestableSource::MemoryMap), 0);
        // The forced net makes the gating logic untestable on-line.
        assert!(
            report.count_for(UntestableSource::DebugControl) > 0,
            "{report}"
        );
        assert!(
            report.count_for(UntestableSource::DebugObservation) > 0,
            "{report}"
        );
        assert_eq!(report.counts, faults.counts());
        assert_eq!(report.counts.total(), report.total_faults);
    }

    #[test]
    fn unconstrained_netlist_runs_baseline_and_proof_only() {
        use netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("bare");
        let a = b.input_bus("a", 3);
        let x = b.and2(a[0], a[1]);
        let y = b.xor2(x, a[2]);
        b.output("y", y);
        let design = crate::design::NetlistDesign::new(b.finish());
        let report = IdentificationFlow::new(FlowConfig::full_pipeline())
            .run(&design)
            .unwrap();
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["baseline", "atpg-proof"], "{report}");
        // A fully controllable/observable circuit has nothing untestable.
        assert_eq!(report.total_untestable(), 0, "{report}");
    }

    #[test]
    fn phase_list_is_discovery_mode_invariant_for_bare_designs() {
        // The phase list is a capability fingerprint of the design: a bare
        // netlist (no control inputs, no stimuli) must skip debug-control
        // under Specification *and* ToggleAnalysis discovery alike.
        use netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("bare_toggle");
        let a = b.input_bus("a", 3);
        let y = b.and2(a[0], a[1]);
        let z = b.xor2(y, a[2]);
        b.output("z", z);
        let design = crate::design::NetlistDesign::new(b.finish());
        let phases = |discovery| {
            IdentificationFlow::new(FlowConfig {
                discovery,
                ..FlowConfig::full_pipeline()
            })
            .run(&design)
            .unwrap()
            .phases
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>()
        };
        assert_eq!(
            phases(DiscoveryMode::Specification),
            phases(DiscoveryMode::ToggleAnalysis)
        );
        assert_eq!(
            phases(DiscoveryMode::Specification),
            ["baseline", "atpg-proof"]
        );
    }

    #[test]
    fn generic_mission_constraints_cover_the_spec() {
        let design = generic_design();
        let flow = IdentificationFlow::new(FlowConfig::default());
        let constraints = flow.mission_constraints(&design).unwrap();
        assert_eq!(constraints.forced_nets.len(), 1);
        assert_eq!(constraints.masked_outputs.len(), 1);
    }

    #[test]
    fn mission_constraints_cover_every_tied_interface() {
        let soc = SocBuilder::small().build();
        let flow = IdentificationFlow::new(FlowConfig::default());
        let constraints = flow.mission_constraints(&soc).unwrap();
        // Every specification-tied input is forced.
        for (net, value) in soc.mission_tied_inputs() {
            assert_eq!(
                constraints.forced_nets.get(&net).copied(),
                Some(atpg::Logic::from_bool(value)),
                "net {} missing from the mission constraints",
                soc.netlist.net(net).name()
            );
        }
        // Every mission-unobserved output is masked.
        for po in soc.mission_unobserved_outputs() {
            assert!(
                constraints.masked_outputs.contains(&po),
                "output {} not masked",
                soc.netlist.cell(po).name()
            );
        }
        // The memory-map ties go beyond the primary inputs.
        assert!(constraints.forced_nets.len() > soc.mission_tied_inputs().len());
    }
}
