//! The end-to-end identification flow: baseline structural analysis, then the
//! four on-line untestability rules, each re-labelling its findings in the
//! master fault list — the automated counterpart of the three-step procedure
//! summarised in §4 (search for sources, manipulate the circuit, screen out
//! the untestable faults).

use crate::report::{IdentificationReport, PhaseResult};
use crate::rules::{
    analyse_manipulation, debug_control_manipulation, debug_observation_manipulation,
    memory_map_manipulation, scan_rule,
};
use crate::toggle::analyze_toggles;
use atpg::analysis::{AnalysisConfig, StructuralAnalysis};
use cpu::sbst::{program_stimuli, standard_suite};
use cpu::soc::Soc;
use dft::trace::{find_scan_in_ports, trace_scan_chains};
use faultmodel::{FaultClass, FaultList, UntestableSource};
use netlist::{CellId, CellKind, NetId};
use std::fmt;
use std::time::Instant;

/// How the flow discovers the mission-constant debug/test control inputs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// Use the SoC's own description of its tied-off test interfaces (fast;
    /// equivalent to reading the integration specification).
    Specification,
    /// Re-derive the list by running the SBST suite and flagging inputs with
    /// no activity, as the paper's engineers did with toggle-coverage metrics
    /// (§4). Slower, but needs no prior knowledge.
    ToggleAnalysis,
}

/// Configuration of the identification flow.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Classify baseline structural untestability first so that it is not
    /// attributed to any on-line source.
    pub classify_baseline: bool,
    /// How to find the tied-off control inputs.
    pub discovery: DiscoveryMode,
    /// Cycle budget per SBST program when `discovery` is
    /// [`DiscoveryMode::ToggleAnalysis`].
    pub toggle_max_cycles: usize,
    /// Also run PODEM redundancy proofs inside every structural analysis
    /// (slower, catches a few additional redundant faults).
    pub prove_redundancy: bool,
    /// Run the §3.1 scan rule.
    pub run_scan: bool,
    /// Run the §3.2.1 debug control rule.
    pub run_debug_control: bool,
    /// Run the §3.2.2 debug observation rule.
    pub run_debug_observation: bool,
    /// Run the §3.3 memory-map rule.
    pub run_memory_map: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            classify_baseline: true,
            discovery: DiscoveryMode::Specification,
            toggle_max_cycles: 600,
            prove_redundancy: false,
            run_scan: true,
            run_debug_control: true,
            run_debug_observation: true,
            run_memory_map: true,
        }
    }
}

/// Errors produced by the flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// The design could not be levelized (combinational loop).
    Analysis(String),
    /// The scan chains could not be traced.
    ScanTrace(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Analysis(msg) => write!(f, "structural analysis failed: {msg}"),
            FlowError::ScanTrace(msg) => write!(f, "scan tracing failed: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// The on-line functionally untestable fault identification flow.
#[derive(Clone, Debug, Default)]
pub struct IdentificationFlow {
    config: FlowConfig,
}

impl IdentificationFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        IdentificationFlow { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the flow and returns the report only.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn run(&self, soc: &Soc) -> Result<IdentificationReport, FlowError> {
        self.run_with_faults(soc).map(|(report, _)| report)
    }

    /// Runs the flow and returns both the report and the fully classified
    /// master fault list (useful for subsequent coverage grading).
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn run_with_faults(
        &self,
        soc: &Soc,
    ) -> Result<(IdentificationReport, FaultList), FlowError> {
        let netlist = &soc.netlist;
        let mut master = FaultList::full_universe(netlist);
        let mut phases = Vec::new();
        let mut baseline_structural = 0usize;

        // --------------------------------------------------------------
        // Phase 0: baseline structural untestability.
        // --------------------------------------------------------------
        if self.config.classify_baseline {
            let start = Instant::now();
            let outcome = StructuralAnalysis::new(AnalysisConfig {
                prove_redundancy: self.config.prove_redundancy,
                ..AnalysisConfig::default()
            })
            .run(netlist, &mut master)
            .map_err(|e| FlowError::Analysis(e.to_string()))?;
            baseline_structural = outcome.total_untestable();
            phases.push(PhaseResult {
                name: "baseline".to_string(),
                newly_classified: baseline_structural,
                duration: start.elapsed(),
            });
        }

        // --------------------------------------------------------------
        // Phase 1: scan circuitry (§3.1).
        // --------------------------------------------------------------
        if self.config.run_scan {
            let start = Instant::now();
            let ports = find_scan_in_ports(netlist, &soc.config.scan.scan_in_prefix);
            let trace = trace_scan_chains(netlist, &ports, &soc.config.scan.scan_out_prefix)
                .map_err(|e| FlowError::ScanTrace(e.to_string()))?;
            let result = scan_rule(netlist, &trace, soc.config.scan.mission_scan_enable_value);
            let mut newly = 0usize;
            for fault in result.untestable {
                if master.classify_if_undetected(
                    fault,
                    FaultClass::OnlineUntestable(UntestableSource::Scan),
                ) {
                    newly += 1;
                }
            }
            phases.push(PhaseResult {
                name: "scan".to_string(),
                newly_classified: newly,
                duration: start.elapsed(),
            });
        }

        // --------------------------------------------------------------
        // Phase 2: debug control logic (§3.2.1).
        // --------------------------------------------------------------
        if self.config.run_debug_control {
            let start = Instant::now();
            let tied = self.control_inputs(soc)?;
            let manipulation = debug_control_manipulation(&tied);
            let (analysed, _) =
                analyse_manipulation(netlist, &manipulation, self.config.prove_redundancy)
                    .map_err(FlowError::Analysis)?;
            let newly = master.import_classes(&analysed, |class| {
                class
                    .is_structurally_untestable()
                    .then_some(FaultClass::OnlineUntestable(UntestableSource::DebugControl))
            });
            phases.push(PhaseResult {
                name: "debug-control".to_string(),
                newly_classified: newly,
                duration: start.elapsed(),
            });
        }

        // --------------------------------------------------------------
        // Phase 3: debug observation logic (§3.2.2).
        // --------------------------------------------------------------
        if self.config.run_debug_observation {
            let start = Instant::now();
            let outputs = self.observation_outputs(soc);
            let manipulation = debug_observation_manipulation(&outputs);
            let (analysed, _) =
                analyse_manipulation(netlist, &manipulation, self.config.prove_redundancy)
                    .map_err(FlowError::Analysis)?;
            let newly = master.import_classes(&analysed, |class| {
                class
                    .is_structurally_untestable()
                    .then_some(FaultClass::OnlineUntestable(
                        UntestableSource::DebugObservation,
                    ))
            });
            phases.push(PhaseResult {
                name: "debug-observe".to_string(),
                newly_classified: newly,
                duration: start.elapsed(),
            });
        }

        // --------------------------------------------------------------
        // Phase 4: memory map (§3.3).
        // --------------------------------------------------------------
        if self.config.run_memory_map {
            let start = Instant::now();
            let regs = soc.address_registers();
            let manipulation = memory_map_manipulation(netlist, &regs, &soc.memory_map);
            let (analysed, _) =
                analyse_manipulation(netlist, &manipulation, self.config.prove_redundancy)
                    .map_err(FlowError::Analysis)?;
            let newly = master.import_classes(&analysed, |class| {
                class
                    .is_structurally_untestable()
                    .then_some(FaultClass::OnlineUntestable(UntestableSource::MemoryMap))
            });
            phases.push(PhaseResult {
                name: "memory-map".to_string(),
                newly_classified: newly,
                duration: start.elapsed(),
            });
        }

        let report = IdentificationReport {
            design: netlist.name().to_string(),
            total_faults: master.len(),
            baseline_structural,
            phases,
            counts: master.counts(),
        };
        Ok((report, master))
    }

    /// The debug/test control inputs to tie, according to the configured
    /// discovery mode.
    fn control_inputs(&self, soc: &Soc) -> Result<Vec<(NetId, bool)>, FlowError> {
        match self.config.discovery {
            DiscoveryMode::Specification => {
                let mut tied = Vec::new();
                tied.push((soc.debug.enable_net, soc.debug.config.mission_enable_value));
                for &net in &soc.debug.data_nets {
                    tied.push((net, false));
                }
                if let Some(jtag) = &soc.jtag {
                    for &net in &jtag.input_nets {
                        tied.push((net, false));
                    }
                }
                if let Some(bist) = &soc.bist {
                    tied.push((bist.enable, false));
                }
                Ok(tied)
            }
            DiscoveryMode::ToggleAnalysis => {
                let suite = standard_suite();
                let sequences: Vec<Vec<atpg::InputVector>> = suite
                    .iter()
                    .map(|p| {
                        program_stimuli(p, &soc.interface, self.config.toggle_max_cycles).vectors
                    })
                    .collect();
                let report =
                    analyze_toggles(&soc.netlist, &sequences).map_err(FlowError::Analysis)?;
                // Inputs with no activity are suspects; exclude the functional
                // inputs (clock, reset, memory read buses — constant values on
                // those are an artefact of the stimulus, not of the mission
                // configuration) and the scan interface (attributed to the
                // scan rule).
                let functional = soc.functional_inputs();
                let mut scan_nets: Vec<NetId> =
                    soc.scan.chains.iter().map(|c| c.scan_in_net).collect();
                if let Some(se) = soc.scan.scan_enable_net {
                    scan_nets.push(se);
                }
                Ok(report
                    .suspect_inputs(&soc.netlist)
                    .into_iter()
                    .filter(|(net, _)| !functional.contains(net) && !scan_nets.contains(net))
                    .collect())
            }
        }
    }

    /// The observation-only outputs to disconnect for the §3.2.2 rule: the
    /// debug observation buses and the JTAG TDO (scan-outs are handled by the
    /// scan rule).
    fn observation_outputs(&self, soc: &Soc) -> Vec<CellId> {
        let mut outputs = soc.debug.observation_ports.clone();
        if let Some(jtag) = &soc.jtag {
            for load in soc.netlist.loads_of(jtag.tdo) {
                if soc.netlist.cell(load.cell).kind() == CellKind::Output {
                    outputs.push(load.cell);
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::soc::SocBuilder;

    #[test]
    fn full_flow_on_small_soc_finds_all_sources() {
        let soc = SocBuilder::small().build();
        let (report, faults) = IdentificationFlow::new(FlowConfig::default())
            .run_with_faults(&soc)
            .unwrap();
        assert_eq!(report.total_faults, faults.len());
        // Every source contributes something.
        assert!(report.count_for(UntestableSource::Scan) > 0, "{report}");
        assert!(
            report.count_for(UntestableSource::DebugControl) > 0,
            "{report}"
        );
        assert!(
            report.count_for(UntestableSource::DebugObservation) > 0,
            "{report}"
        );
        assert!(
            report.count_for(UntestableSource::MemoryMap) > 0,
            "{report}"
        );
        // Scan dominates, as in Table I.
        assert!(
            report.count_for(UntestableSource::Scan)
                > report.count_for(UntestableSource::MemoryMap)
        );
        // The overall fraction lands in a plausible band (Table I: 13.8 %).
        let fraction = report.untestable_fraction();
        assert!(
            (0.02..0.40).contains(&fraction),
            "untestable fraction {fraction:.3} out of band"
        );
        // Consistency between report and fault list.
        assert_eq!(report.counts, faults.counts());
        assert_eq!(
            report.total_untestable(),
            faults.counts().online_untestable_total()
        );
    }

    #[test]
    fn phases_can_be_disabled() {
        let soc = SocBuilder::small().build();
        let config = FlowConfig {
            run_scan: false,
            run_debug_control: false,
            run_debug_observation: false,
            run_memory_map: true,
            ..FlowConfig::default()
        };
        let report = IdentificationFlow::new(config).run(&soc).unwrap();
        assert_eq!(report.count_for(UntestableSource::Scan), 0);
        assert_eq!(report.count_for(UntestableSource::DebugControl), 0);
        assert!(report.count_for(UntestableSource::MemoryMap) > 0);
        // Phase list contains baseline + memory-map only.
        assert_eq!(report.phases.len(), 2);
    }

    #[test]
    fn sources_are_disjoint() {
        let soc = SocBuilder::small().build();
        let (report, faults) = IdentificationFlow::new(FlowConfig::default())
            .run_with_faults(&soc)
            .unwrap();
        // Each fault carries exactly one class, so the per-source counts plus
        // everything else must add up to the universe.
        let counts = faults.counts();
        assert_eq!(counts.total(), report.total_faults);
        let sum: usize = UntestableSource::ALL
            .iter()
            .map(|&s| report.count_for(s))
            .sum();
        assert_eq!(sum, report.total_untestable());
    }

    #[test]
    fn toggle_discovery_matches_specification_on_small_soc() {
        let soc = SocBuilder::small().build();
        let spec_report = IdentificationFlow::new(FlowConfig::default())
            .run(&soc)
            .unwrap();
        let toggle_report = IdentificationFlow::new(FlowConfig {
            discovery: DiscoveryMode::ToggleAnalysis,
            toggle_max_cycles: 300,
            ..FlowConfig::default()
        })
        .run(&soc)
        .unwrap();
        // The toggle-derived debug-control count must be at least the
        // specification-derived one (the SBST suite may leave further inputs
        // untouched, e.g. the reset, which we exclude, so equality is the
        // common case) and never smaller.
        assert!(
            toggle_report.count_for(UntestableSource::DebugControl)
                >= spec_report.count_for(UntestableSource::DebugControl),
            "toggle {} < spec {}",
            toggle_report.count_for(UntestableSource::DebugControl),
            spec_report.count_for(UntestableSource::DebugControl)
        );
        // Scan and memory-map results are identical (they do not depend on
        // the discovery mode).
        assert_eq!(
            toggle_report.count_for(UntestableSource::Scan),
            spec_report.count_for(UntestableSource::Scan)
        );
        assert_eq!(
            toggle_report.count_for(UntestableSource::MemoryMap),
            spec_report.count_for(UntestableSource::MemoryMap)
        );
    }
}
