//! The [`Design`] abstraction: what the identification pipeline needs to
//! know about a device under analysis.
//!
//! The paper's method is not specific to one microprocessor — it takes a
//! gate-level circuit plus a description of its mission environment (which
//! inputs are tied off in the field, which outputs nothing reads, how the
//! memory map freezes address bits, and optionally functional stimuli). This
//! module captures exactly that contract:
//!
//! * [`Design`] — the trait the [`flow`](crate::flow) pipeline runs against.
//!   Every accessor is optional except the netlist itself; stages whose
//!   prerequisite the design cannot provide are skipped, so a pure netlist
//!   degrades gracefully to the *screen + proof* pipeline while the full SoC
//!   runs all seven stages.
//! * [`cpu::soc::Soc`] implements the trait bit-identically to the
//!   hard-wired pre-refactor pipeline: same reports, same numbers.
//! * [`NetlistDesign`] — the generic implementation: any loaded circuit
//!   (e.g. an ISCAS `.bench` file via [`netlist::frontend`]) plus a
//!   [`ConstraintSpec`] of forced nets and masked observation points.

use atpg::InputVector;
use cpu::mem::MemoryMap;
use cpu::sbst::{standard_suite, suite_stimuli};
use cpu::soc::Soc;
use netlist::frontend::ParseError;
use netlist::{CellId, CellKind, NetId, Netlist};

/// The scan structure of a design, as the §3.1 rule and the mission
/// constraints need it.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// Prefix of the per-chain scan-in primary inputs.
    pub scan_in_prefix: String,
    /// Prefix of the per-chain scan-out primary outputs.
    pub scan_out_prefix: String,
    /// The value the scan-enable signal holds in mission mode.
    pub mission_scan_enable_value: bool,
    /// The scan-enable net, when one exists.
    pub scan_enable_net: Option<NetId>,
    /// Per-chain interface nets/ports.
    pub chains: Vec<ScanChainSpec>,
}

/// One scan chain's mission-relevant interface.
#[derive(Clone, Debug)]
pub struct ScanChainSpec {
    /// The net driven by the scan-in primary input.
    pub scan_in_net: NetId,
    /// The scan-out `Output` pseudo-cell.
    pub scan_out_port: CellId,
}

/// The memory-map information the §3.3 rule needs.
#[derive(Clone, Debug)]
pub struct MemoryMapSpec {
    /// Flip-flops that hold one bit of a memory address, tagged with the bit
    /// index.
    pub address_registers: Vec<(CellId, u32)>,
    /// The mission memory map.
    pub map: MemoryMap,
}

/// Functional stimuli for the simulation-based stages.
#[derive(Clone, Debug)]
pub struct StimulusSet {
    /// One vector sequence per test program (faults detected by any batch
    /// count as detected).
    pub batches: Vec<Vec<InputVector>>,
    /// The `Output` pseudo-cells a functional on-line test can observe.
    pub observed_outputs: Vec<CellId>,
}

/// A device under analysis: a netlist plus its mission environment.
///
/// Only [`netlist`](Design::netlist) is mandatory. The default for every
/// other accessor is "not available", which makes the corresponding pipeline
/// stage skip: a bare netlist runs baseline screening plus the
/// constraint-aware proof stage, while a full SoC provides everything and
/// runs the complete staged pipeline.
pub trait Design {
    /// The gate-level circuit.
    fn netlist(&self) -> &Netlist;

    /// The debug/test control inputs that are tied to constants in mission
    /// mode, per the integration specification (the flow can alternatively
    /// re-derive them from toggle analysis when stimuli are available).
    fn control_inputs(&self) -> Vec<(NetId, bool)> {
        Vec::new()
    }

    /// The observation-only outputs nothing reads in mission mode
    /// (excluding scan-outs, which belong to [`scan_spec`](Design::scan_spec)).
    fn observation_outputs(&self) -> Vec<CellId> {
        Vec::new()
    }

    /// The scan structure, when the design has one.
    fn scan_spec(&self) -> Option<ScanSpec> {
        None
    }

    /// The memory-map constraints, when the design has address registers.
    fn memory_map_spec(&self) -> Option<MemoryMapSpec> {
        None
    }

    /// Whether [`stimuli`](Design::stimuli) returns anything, *without*
    /// paying for stimulus generation (the pipeline gates the simulation
    /// stage on this so generation cost stays attributed to the stage).
    fn provides_stimuli(&self) -> bool {
        false
    }

    /// Functional stimuli (e.g. an SBST suite run through an ISS), capped at
    /// `max_cycles` per batch.
    fn stimuli(&self, max_cycles: usize) -> Option<StimulusSet> {
        let _ = max_cycles;
        None
    }

    /// The primary inputs the mission application actually drives — excluded
    /// from toggle-analysis suspicion.
    fn functional_inputs(&self) -> Vec<NetId> {
        Vec::new()
    }
}

impl Design for Soc {
    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn control_inputs(&self) -> Vec<(NetId, bool)> {
        let mut tied = Vec::new();
        tied.push((
            self.debug.enable_net,
            self.debug.config.mission_enable_value,
        ));
        for &net in &self.debug.data_nets {
            tied.push((net, false));
        }
        if let Some(jtag) = &self.jtag {
            for &net in &jtag.input_nets {
                tied.push((net, false));
            }
        }
        if let Some(bist) = &self.bist {
            tied.push((bist.enable, false));
        }
        tied
    }

    fn observation_outputs(&self) -> Vec<CellId> {
        let mut outputs = self.debug.observation_ports.clone();
        if let Some(jtag) = &self.jtag {
            for load in self.netlist.loads_of(jtag.tdo) {
                if self.netlist.cell(load.cell).kind() == CellKind::Output {
                    outputs.push(load.cell);
                }
            }
        }
        outputs
    }

    fn scan_spec(&self) -> Option<ScanSpec> {
        Some(ScanSpec {
            scan_in_prefix: self.config.scan.scan_in_prefix.clone(),
            scan_out_prefix: self.config.scan.scan_out_prefix.clone(),
            mission_scan_enable_value: self.config.scan.mission_scan_enable_value,
            scan_enable_net: self.scan.scan_enable_net,
            chains: self
                .scan
                .chains
                .iter()
                .map(|chain| ScanChainSpec {
                    scan_in_net: chain.scan_in_net,
                    scan_out_port: chain.scan_out_port,
                })
                .collect(),
        })
    }

    fn memory_map_spec(&self) -> Option<MemoryMapSpec> {
        Some(MemoryMapSpec {
            address_registers: self.address_registers(),
            map: self.memory_map.clone(),
        })
    }

    fn provides_stimuli(&self) -> bool {
        true
    }

    fn stimuli(&self, max_cycles: usize) -> Option<StimulusSet> {
        let suite = standard_suite();
        let stimuli = suite_stimuli(&suite, &self.interface, max_cycles);
        Some(StimulusSet {
            batches: stimuli.into_iter().map(|s| s.vectors).collect(),
            observed_outputs: self.interface.bus_output_ports.clone(),
        })
    }

    fn functional_inputs(&self) -> Vec<NetId> {
        Soc::functional_inputs(self)
    }
}

// ---------------------------------------------------------------------------
// Generic netlist designs
// ---------------------------------------------------------------------------

/// A mission-constraint specification for a generic netlist design, as
/// parsed from a simple line-oriented spec file:
///
/// ```text
/// # mission environment of my_circuit
/// force test_enable 0     # net held constant in the field
/// force burn_in 1
/// mask debug_out          # observation point nothing reads in mission mode
/// ```
///
/// `force <net> <0|1>` declares a net tied to a constant; `mask <name>`
/// declares an output port (by port name or by the name of the net it
/// observes) that is unobservable in mission mode. `#` starts a comment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSpec {
    /// Nets held at a constant value in mission mode, by name.
    pub forced: Vec<(String, bool)>,
    /// Mission-unobserved output ports, by port or net name.
    pub masked: Vec<String>,
}

impl ConstraintSpec {
    /// Parses the spec text. Errors use the shared frontend
    /// [`ParseError`] so drivers report uniform locations.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for unknown directives, malformed values and
    /// missing arguments.
    pub fn parse(text: &str) -> Result<ConstraintSpec, ParseError> {
        let mut spec = ConstraintSpec::default();
        for (index, raw_line) in text.lines().enumerate() {
            let line = index + 1;
            let code = raw_line.split('#').next().unwrap_or("").trim();
            if code.is_empty() {
                continue;
            }
            let mut words = code.split_whitespace();
            let directive = words.next().expect("non-empty line has a first word");
            match directive {
                "force" => {
                    let net = words.next().ok_or_else(|| {
                        ParseError::new(line, 1, "`force` needs a net name and a value")
                    })?;
                    let value = match words.next() {
                        Some("0") => false,
                        Some("1") => true,
                        Some(other) => {
                            return Err(ParseError::new(
                                line,
                                1,
                                format!("`force {net}` value must be 0 or 1"),
                            )
                            .with_token(other))
                        }
                        None => {
                            return Err(ParseError::new(
                                line,
                                1,
                                format!("`force {net}` is missing its value"),
                            ))
                        }
                    };
                    spec.forced.push((net.to_string(), value));
                }
                "mask" => {
                    let name = words
                        .next()
                        .ok_or_else(|| ParseError::new(line, 1, "`mask` needs an output name"))?;
                    spec.masked.push(name.to_string());
                }
                other => {
                    return Err(ParseError::new(
                        line,
                        1,
                        format!("unknown directive `{other}` (expected `force` or `mask`)"),
                    )
                    .with_token(other))
                }
            }
            if let Some(extra) = words.next() {
                return Err(
                    ParseError::new(line, 1, "trailing text after directive").with_token(extra)
                );
            }
        }
        Ok(spec)
    }
}

/// Error produced while binding a [`ConstraintSpec`] to a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A `force` directive names a net the design does not have.
    UnknownNet {
        /// The offending name.
        name: String,
    },
    /// A `mask` directive names neither an output port nor a net with output
    /// loads.
    UnknownOutput {
        /// The offending name.
        name: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownNet { name } => {
                write!(f, "constraint spec forces unknown net `{name}`")
            }
            SpecError::UnknownOutput { name } => write!(
                f,
                "constraint spec masks `{name}`, which is neither an output port \
                 nor a net observed by one"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A generic device under analysis: any loaded netlist plus an optional
/// mission-constraint specification.
///
/// This is what the `untestable` CLI driver builds from a `.bench`, Verilog
/// or EDIF circuit. It provides no scan structure, memory map or stimuli, so
/// the pipeline degrades to *screen + proof*: baseline structural analysis,
/// the forced-net and masked-output screening rules, and the
/// constraint-aware PODEM proof stage.
#[derive(Clone, Debug)]
pub struct NetlistDesign {
    netlist: Netlist,
    forced: Vec<(NetId, bool)>,
    masked: Vec<CellId>,
}

impl NetlistDesign {
    /// A design with no mission constraints beyond the circuit itself.
    pub fn new(netlist: Netlist) -> Self {
        NetlistDesign {
            netlist,
            forced: Vec::new(),
            masked: Vec::new(),
        }
    }

    /// Binds `spec` to the netlist, resolving every name eagerly.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for names the netlist does not have.
    pub fn with_constraints(netlist: Netlist, spec: &ConstraintSpec) -> Result<Self, SpecError> {
        let mut forced = Vec::new();
        for (name, value) in &spec.forced {
            let net = netlist
                .find_net(name)
                .ok_or_else(|| SpecError::UnknownNet { name: name.clone() })?;
            forced.push((net, *value));
        }
        let mut masked = Vec::new();
        for name in &spec.masked {
            let mut ports: Vec<CellId> = Vec::new();
            if let Some(cell) = netlist.find_cell(name) {
                if netlist.cell(cell).kind() == CellKind::Output {
                    ports.push(cell);
                }
            }
            if ports.is_empty() {
                if let Some(net) = netlist.find_net(name) {
                    for load in netlist.loads_of(net) {
                        if netlist.cell(load.cell).kind() == CellKind::Output {
                            ports.push(load.cell);
                        }
                    }
                }
            }
            if ports.is_empty() {
                return Err(SpecError::UnknownOutput { name: name.clone() });
            }
            masked.extend(ports);
        }
        Ok(NetlistDesign {
            netlist,
            forced,
            masked,
        })
    }

    /// The nets the spec forces, resolved.
    pub fn forced_nets(&self) -> &[(NetId, bool)] {
        &self.forced
    }

    /// The output ports the spec masks, resolved.
    pub fn masked_outputs(&self) -> &[CellId] {
        &self.masked
    }
}

impl Design for NetlistDesign {
    fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn control_inputs(&self) -> Vec<(NetId, bool)> {
        self.forced.clone()
    }

    fn observation_outputs(&self) -> Vec<CellId> {
        self.masked.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::soc::SocBuilder;
    use netlist::NetlistBuilder;

    #[test]
    fn soc_control_inputs_are_the_specification_subset() {
        let soc = SocBuilder::small().build();
        let control = Design::control_inputs(&soc);
        assert!(!control.is_empty());
        // Exactly the mission-tied inputs minus the scan interface, which
        // scan_spec covers.
        let scan = soc.scan_spec().unwrap();
        let scan_nets: Vec<NetId> = scan
            .chains
            .iter()
            .map(|c| c.scan_in_net)
            .chain(scan.scan_enable_net)
            .collect();
        let expected: Vec<(NetId, bool)> = soc
            .mission_tied_inputs()
            .into_iter()
            .filter(|(net, _)| !scan_nets.contains(net))
            .collect();
        assert_eq!(control, expected);
    }

    #[test]
    fn soc_provides_every_capability() {
        let soc = SocBuilder::small().build();
        assert!(soc.scan_spec().is_some());
        assert!(soc.memory_map_spec().is_some());
        assert!(soc.provides_stimuli());
        let stimuli = soc.stimuli(50).unwrap();
        assert_eq!(stimuli.batches.len(), 4, "four SBST programs");
        assert!(!stimuli.observed_outputs.is_empty());
        assert!(!Design::functional_inputs(&soc).is_empty());
    }

    #[test]
    fn constraint_spec_parses_and_rejects() {
        let spec = ConstraintSpec::parse(
            "# header\nforce te 0\nforce burn_in 1  # inline comment\nmask dbg\n\n",
        )
        .unwrap();
        assert_eq!(
            spec,
            ConstraintSpec {
                forced: vec![("te".into(), false), ("burn_in".into(), true)],
                masked: vec!["dbg".into()],
            }
        );

        let err = ConstraintSpec::parse("force x 2\n").unwrap_err();
        assert!(err.message.contains("must be 0 or 1"), "{err}");
        assert_eq!(err.line, 1);
        let err = ConstraintSpec::parse("freeze x 0\n").unwrap_err();
        assert!(err.message.contains("unknown directive"), "{err}");
        assert_eq!(err.token.as_deref(), Some("freeze"));
        let err = ConstraintSpec::parse("force x 0 extra\n").unwrap_err();
        assert!(err.message.contains("trailing text"), "{err}");
    }

    fn tiny_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let te = b.input("te");
        let y = b.and2(a, te);
        b.output("y", y);
        b.output("dbg", te);
        b.finish()
    }

    #[test]
    fn netlist_design_resolves_names() {
        let spec = ConstraintSpec {
            forced: vec![("te".into(), false)],
            masked: vec!["dbg".into()],
        };
        let design = NetlistDesign::with_constraints(tiny_netlist(), &spec).unwrap();
        assert_eq!(design.forced_nets().len(), 1);
        assert_eq!(design.masked_outputs().len(), 1);
        assert_eq!(design.control_inputs(), design.forced_nets().to_vec());
        assert!(design.scan_spec().is_none());
        assert!(!design.provides_stimuli());
        assert!(design.stimuli(100).is_none());
    }

    #[test]
    fn netlist_design_reports_unknown_names() {
        let spec = ConstraintSpec {
            forced: vec![("nope".into(), false)],
            masked: vec![],
        };
        let err = NetlistDesign::with_constraints(tiny_netlist(), &spec).unwrap_err();
        assert!(matches!(err, SpecError::UnknownNet { .. }), "{err}");

        let spec = ConstraintSpec {
            forced: vec![],
            masked: vec!["a".into()], // an input net with no output load
        };
        let err = NetlistDesign::with_constraints(tiny_netlist(), &spec).unwrap_err();
        assert!(matches!(err, SpecError::UnknownOutput { .. }), "{err}");
    }

    #[test]
    fn masking_by_net_name_finds_the_port() {
        // `mask` may name the net an output observes rather than the port.
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a");
        let inv = b.not(a);
        b.output("obs_port", inv);
        let n = b.finish();
        let net_name = n.net(inv).name().to_string();
        let design = NetlistDesign::with_constraints(
            n,
            &ConstraintSpec {
                forced: vec![],
                masked: vec![net_name],
            },
        )
        .unwrap();
        assert_eq!(design.masked_outputs().len(), 1);
    }
}
