//! Coverage accounting and report formatting.

use crate::{FaultClass, UntestableSource};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-class fault counts, plus the per-source breakdown of the on-line
/// functionally untestable class.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Faults not yet classified.
    pub undetected: usize,
    /// Faults detected by a test.
    pub detected: usize,
    /// Faults possibly detected (X at an observation point).
    pub possibly_detected: usize,
    /// Structurally untestable: redundant.
    pub redundant: usize,
    /// Structurally untestable: tied.
    pub tied: usize,
    /// Structurally untestable: blocked.
    pub blocked: usize,
    /// Structurally untestable: unused.
    pub unused: usize,
    /// On-line functionally untestable, per source (indexed in
    /// [`UntestableSource::ALL`] order).
    pub online_untestable: [usize; 5],
}

impl ClassCounts {
    /// Adds `n` faults of the given class.
    pub fn add(&mut self, class: FaultClass, n: usize) {
        match class {
            FaultClass::Undetected => self.undetected += n,
            FaultClass::Detected => self.detected += n,
            FaultClass::PossiblyDetected => self.possibly_detected += n,
            FaultClass::Redundant => self.redundant += n,
            FaultClass::Tied => self.tied += n,
            FaultClass::Blocked => self.blocked += n,
            FaultClass::Unused => self.unused += n,
            FaultClass::OnlineUntestable(source) => {
                let idx = UntestableSource::ALL
                    .iter()
                    .position(|&s| s == source)
                    .expect("source in ALL");
                self.online_untestable[idx] += n;
            }
        }
    }

    /// Count for a single on-line untestable source.
    pub fn online(&self, source: UntestableSource) -> usize {
        let idx = UntestableSource::ALL
            .iter()
            .position(|&s| s == source)
            .expect("source in ALL");
        self.online_untestable[idx]
    }

    /// Total number of faults.
    pub fn total(&self) -> usize {
        self.undetected
            + self.detected
            + self.possibly_detected
            + self.redundant
            + self.tied
            + self.blocked
            + self.unused
            + self.online_untestable.iter().sum::<usize>()
    }

    /// Total faults in any structural untestable class.
    pub fn structurally_untestable(&self) -> usize {
        self.redundant + self.tied + self.blocked + self.unused
    }

    /// Total faults classified as on-line functionally untestable.
    pub fn online_untestable_total(&self) -> usize {
        self.online_untestable.iter().sum()
    }

    /// Total untestable faults of any kind.
    pub fn untestable_total(&self) -> usize {
        self.structurally_untestable() + self.online_untestable_total()
    }

    /// Raw fault coverage: detected / total.
    pub fn raw_coverage(&self) -> f64 {
        ratio(self.detected, self.total())
    }

    /// Testable fault coverage: detected / (total − untestable). This is the
    /// figure the paper raises by ≈13 % by pruning on-line untestable faults.
    pub fn testable_coverage(&self) -> f64 {
        ratio(self.detected, self.total() - self.untestable_total())
    }

    /// Fraction of the universe that is untestable (the paper's "coverage
    /// loss" figure, 13.8 % in Table I).
    pub fn untestable_fraction(&self) -> f64 {
        ratio(self.untestable_total(), self.total())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ClassCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total faults          : {}", self.total())?;
        writeln!(f, "  detected (DT)       : {}", self.detected)?;
        writeln!(f, "  possibly det. (PT)  : {}", self.possibly_detected)?;
        writeln!(f, "  undetected (ND)     : {}", self.undetected)?;
        writeln!(f, "  redundant (UR)      : {}", self.redundant)?;
        writeln!(f, "  tied (UT)           : {}", self.tied)?;
        writeln!(f, "  blocked (UB)        : {}", self.blocked)?;
        writeln!(f, "  unused (UU)         : {}", self.unused)?;
        for (i, source) in UntestableSource::ALL.iter().enumerate() {
            writeln!(
                f,
                "  on-line unt. [{:<17}]: {}",
                source.name(),
                self.online_untestable[i]
            )?;
        }
        writeln!(
            f,
            "untestable fraction   : {:.1}%",
            self.untestable_fraction() * 100.0
        )?;
        write!(
            f,
            "testable coverage     : {:.1}%",
            self.testable_coverage() * 100.0
        )
    }
}

/// One row of a Table-I-style summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Row label (e.g. "Scan", "Debug", "Memory", "TOTAL").
    pub label: String,
    /// Number of on-line functionally untestable faults attributed to the row.
    pub count: usize,
    /// Percentage of the full fault universe.
    pub percent: f64,
}

/// A Table-I-style summary: per-source counts of on-line functionally
/// untestable faults and their percentage of the fault universe.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UntestableSummary {
    /// Total number of faults in the universe.
    pub total_faults: usize,
    /// The rows, ending with the TOTAL row.
    pub rows: Vec<SummaryRow>,
}

impl UntestableSummary {
    /// Builds the summary from class counts, using the paper's row grouping
    /// (the two debug sub-sources are reported as a single "Debug" row, like
    /// Table I's "4,548+2,357") plus a "Proof" row for the faults proven
    /// untestable by the constraint-aware ATPG stage — this reproduction's
    /// extension over the paper's three sources.
    pub fn from_counts(counts: &ClassCounts) -> Self {
        let total = counts.total();
        let scan = counts.online(UntestableSource::Scan);
        let debug = counts.online(UntestableSource::DebugControl)
            + counts.online(UntestableSource::DebugObservation);
        let memory = counts.online(UntestableSource::MemoryMap);
        let proof = counts.online(UntestableSource::AtpgProof);
        let sum = scan + debug + memory + proof;
        let pct = |n: usize| ratio(n, total) * 100.0;
        UntestableSummary {
            total_faults: total,
            rows: vec![
                SummaryRow {
                    label: "Scan".to_string(),
                    count: scan,
                    percent: pct(scan),
                },
                SummaryRow {
                    label: "Debug".to_string(),
                    count: debug,
                    percent: pct(debug),
                },
                SummaryRow {
                    label: "Memory".to_string(),
                    count: memory,
                    percent: pct(memory),
                },
                SummaryRow {
                    label: "Proof".to_string(),
                    count: proof,
                    percent: pct(proof),
                },
                SummaryRow {
                    label: "TOTAL".to_string(),
                    count: sum,
                    percent: pct(sum),
                },
            ],
        }
    }

    /// The TOTAL row.
    pub fn total_row(&self) -> &SummaryRow {
        self.rows.last().expect("summary always has a TOTAL row")
    }
}

impl fmt::Display for UntestableSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "On-line functionally untestable faults")?;
        writeln!(f, "{:<10} {:>10} {:>8}", "", "[#]", "[%]")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10} {:>7.1}%",
                row.label, row.count, row.percent
            )?;
        }
        write!(f, "(fault universe: {} stuck-at faults)", self.total_faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> ClassCounts {
        let mut c = ClassCounts::default();
        c.add(FaultClass::Detected, 700);
        c.add(FaultClass::Undetected, 100);
        c.add(FaultClass::Tied, 20);
        c.add(FaultClass::Redundant, 10);
        c.add(FaultClass::OnlineUntestable(UntestableSource::Scan), 90);
        c.add(
            FaultClass::OnlineUntestable(UntestableSource::DebugControl),
            30,
        );
        c.add(
            FaultClass::OnlineUntestable(UntestableSource::DebugObservation),
            20,
        );
        c.add(
            FaultClass::OnlineUntestable(UntestableSource::MemoryMap),
            30,
        );
        c
    }

    #[test]
    fn totals_add_up() {
        let c = sample_counts();
        assert_eq!(c.total(), 1000);
        assert_eq!(c.structurally_untestable(), 30);
        assert_eq!(c.online_untestable_total(), 170);
        assert_eq!(c.untestable_total(), 200);
    }

    #[test]
    fn coverage_formulas() {
        let c = sample_counts();
        assert!((c.raw_coverage() - 0.7).abs() < 1e-12);
        assert!((c.testable_coverage() - 700.0 / 800.0).abs() < 1e-12);
        assert!((c.untestable_fraction() - 0.2).abs() < 1e-12);
        // Pruning untestable faults can only raise the coverage figure.
        assert!(c.testable_coverage() >= c.raw_coverage());
    }

    #[test]
    fn empty_counts_have_zero_coverage() {
        let c = ClassCounts::default();
        assert_eq!(c.total(), 0);
        assert_eq!(c.raw_coverage(), 0.0);
        assert_eq!(c.testable_coverage(), 0.0);
    }

    #[test]
    fn summary_groups_debug_rows() {
        let mut c = sample_counts();
        c.add(
            FaultClass::OnlineUntestable(UntestableSource::AtpgProof),
            10,
        );
        let summary = UntestableSummary::from_counts(&c);
        assert_eq!(summary.rows.len(), 5);
        assert_eq!(summary.rows[0].count, 90);
        assert_eq!(summary.rows[1].count, 50);
        assert_eq!(summary.rows[2].count, 30);
        assert_eq!(summary.rows[3].count, 10);
        assert_eq!(summary.total_row().count, 180);
        assert!((summary.total_row().percent - 180.0 / 1010.0 * 100.0).abs() < 1e-9);
        let text = summary.to_string();
        assert!(text.contains("Scan"));
        assert!(text.contains("Proof"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn display_contains_all_classes() {
        let c = sample_counts();
        let text = c.to_string();
        for label in ["DT", "UT", "UR", "scan", "memory-map", "testable coverage"] {
            assert!(text.contains(label), "missing {label} in\n{text}");
        }
    }

    #[test]
    fn online_accessor_matches_array() {
        let c = sample_counts();
        assert_eq!(c.online(UntestableSource::Scan), 90);
        assert_eq!(c.online(UntestableSource::MemoryMap), 30);
    }
}
