//! Stuck-at fault universe for the DATE 2013 on-line untestability
//! reproduction: fault sites, fault lists, equivalence collapsing, fault
//! classes (including the paper's *on-line functionally untestable* class)
//! and coverage reporting.
//!
//! # Examples
//!
//! ```
//! use faultmodel::{FaultClass, FaultList, StuckAt, UntestableSource};
//! use netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("demo");
//! let a = b.input("a");
//! let c = b.input("b");
//! let y = b.and2(a, c);
//! b.output("y", y);
//! let n = b.finish();
//!
//! let mut faults = FaultList::full_universe(&n);
//! let and = n.driver_of(y).unwrap();
//! faults.classify(
//!     StuckAt::input(and, 0, true),
//!     FaultClass::OnlineUntestable(UntestableSource::Scan),
//! );
//! assert_eq!(faults.counts().online_untestable_total(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod class;
mod collapse;
mod list;
mod report;
mod site;

pub use class::{FaultClass, UntestableSource};
pub use collapse::{collapse, collapse_with_barriers, CollapsedFaults};
pub use list::FaultList;
pub use report::{ClassCounts, SummaryRow, UntestableSummary};
pub use site::{FaultSite, StuckAt};
