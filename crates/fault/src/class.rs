//! Fault classification: the classical structural classes plus the paper's
//! *on-line functionally untestable* class, broken down by source.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The source of on-line functional untestability, as defined in §3 of the
/// paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum UntestableSource {
    /// Scan chain circuitry (§3.1): SI/SE pins, scan-path buffers.
    Scan,
    /// Debug control logic tied off in mission mode (§3.2.1).
    DebugControl,
    /// Debug observation logic never observed in mission mode (§3.2.2).
    DebugObservation,
    /// Memory-map restrictions on address logic (§3.3).
    MemoryMap,
    /// Proven untestable by the constraint-aware ATPG proof stage: PODEM
    /// exhausted the decision space under the mission constraints (tied
    /// debug/test inputs, masked observation outputs) without finding a test.
    /// This is the screening step of §4 applied to faults the structural
    /// rules leave unclassified.
    AtpgProof,
}

impl UntestableSource {
    /// All sources, in the order Table I reports them (the ATPG proof stage
    /// is this reproduction's extension and comes last).
    pub const ALL: [UntestableSource; 5] = [
        UntestableSource::Scan,
        UntestableSource::DebugControl,
        UntestableSource::DebugObservation,
        UntestableSource::MemoryMap,
        UntestableSource::AtpgProof,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            UntestableSource::Scan => "scan",
            UntestableSource::DebugControl => "debug-control",
            UntestableSource::DebugObservation => "debug-observation",
            UntestableSource::MemoryMap => "memory-map",
            UntestableSource::AtpgProof => "atpg-proof",
        }
    }
}

impl fmt::Display for UntestableSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classification of a single stuck-at fault.
///
/// The first group are the classes a conventional structural tool (the
/// paper's TetraMAX) reports; `OnlineUntestable` is the class this work adds
/// on top, produced by re-interpreting structural untestability after the
/// mission-mode circuit manipulation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum FaultClass {
    /// Not (yet) detected, no information — the initial state.
    #[default]
    Undetected,
    /// Detected by a test pattern or test program.
    Detected,
    /// Possibly detected (fault effect reaches an observation point as X).
    PossiblyDetected,
    /// Structurally untestable: proven redundant by ATPG.
    Redundant,
    /// Structurally untestable: unexcitable or unobservable because of a tied
    /// value (TetraMAX "UT — untestable due to tied value").
    Tied,
    /// Structurally untestable: propagation blocked by constant side inputs.
    Blocked,
    /// Structurally untestable: the site has no path to any observation point
    /// (unconnected / unused logic).
    Unused,
    /// On-line functionally untestable (the paper's contribution), with the
    /// source that caused it.
    OnlineUntestable(UntestableSource),
}

impl FaultClass {
    /// True for every flavour of structural untestability (excluding the
    /// on-line class).
    pub fn is_structurally_untestable(self) -> bool {
        matches!(
            self,
            FaultClass::Redundant | FaultClass::Tied | FaultClass::Blocked | FaultClass::Unused
        )
    }

    /// True for any untestable class, structural or on-line.
    pub fn is_untestable(self) -> bool {
        self.is_structurally_untestable() || matches!(self, FaultClass::OnlineUntestable(_))
    }

    /// True if the fault counts as covered for coverage computation
    /// (detected or possibly-detected with the usual 0.5 weight not applied —
    /// we follow the conservative convention and count only hard detections).
    pub fn is_detected(self) -> bool {
        matches!(self, FaultClass::Detected)
    }

    /// Two-letter code in the style of commercial ATPG fault reports.
    pub fn code(self) -> &'static str {
        match self {
            FaultClass::Undetected => "ND",
            FaultClass::Detected => "DT",
            FaultClass::PossiblyDetected => "PT",
            FaultClass::Redundant => "UR",
            FaultClass::Tied => "UT",
            FaultClass::Blocked => "UB",
            FaultClass::Unused => "UU",
            FaultClass::OnlineUntestable(_) => "OU",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::OnlineUntestable(src) => write!(f, "OU({src})"),
            other => f.write_str(other.code()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untestable_predicates() {
        assert!(FaultClass::Tied.is_structurally_untestable());
        assert!(FaultClass::Redundant.is_untestable());
        assert!(FaultClass::OnlineUntestable(UntestableSource::Scan).is_untestable());
        assert!(!FaultClass::OnlineUntestable(UntestableSource::Scan).is_structurally_untestable());
        assert!(!FaultClass::Detected.is_untestable());
        assert!(!FaultClass::Undetected.is_untestable());
        assert!(FaultClass::Detected.is_detected());
        assert!(!FaultClass::PossiblyDetected.is_detected());
    }

    #[test]
    fn codes_and_display() {
        assert_eq!(FaultClass::Tied.code(), "UT");
        assert_eq!(FaultClass::Detected.code(), "DT");
        assert_eq!(
            FaultClass::OnlineUntestable(UntestableSource::MemoryMap).to_string(),
            "OU(memory-map)"
        );
        assert_eq!(FaultClass::Blocked.to_string(), "UB");
    }

    #[test]
    fn default_is_undetected() {
        assert_eq!(FaultClass::default(), FaultClass::Undetected);
    }

    #[test]
    fn all_sources_listed_once() {
        let mut names: Vec<&str> = UntestableSource::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
