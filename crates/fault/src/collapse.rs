//! Classical structural fault-equivalence collapsing.
//!
//! Two rules are applied:
//!
//! 1. **Gate-local equivalence**: for a gate with a controlling value `c`
//!    and inversion `i`, every input stuck-at-`c` is equivalent to the output
//!    stuck-at-`c ⊕ i` (e.g. any AND input s-a-0 ≡ AND output s-a-0, any NAND
//!    input s-a-0 ≡ NAND output s-a-1). For buffers and inverters both input
//!    faults collapse onto the corresponding output faults.
//! 2. **Fanout-free stem/branch equivalence**: when a net has exactly one
//!    load, the driver's output-pin faults are equivalent to the load's
//!    input-pin faults of the same polarity.
//!
//! The result is a set of equivalence classes over the uncollapsed universe;
//! commercial tools typically report both numbers, and the paper's Table I is
//! expressed on the uncollapsed universe.

use crate::{FaultList, FaultSite, StuckAt};
use netlist::{CellKind, NetId, Netlist};

/// Union-find over fault indices.
#[derive(Clone, Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic: smaller index becomes the representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The result of fault collapsing: a representative fault index per
/// equivalence class.
#[derive(Clone, Debug)]
pub struct CollapsedFaults {
    representative: Vec<usize>,
    num_classes: usize,
}

impl CollapsedFaults {
    /// The universe index of the representative fault of the class `fault_index`
    /// belongs to.
    pub fn representative_of(&self, fault_index: usize) -> usize {
        self.representative[fault_index]
    }

    /// Number of equivalence classes (the "collapsed fault count").
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The collapse ratio `collapsed / uncollapsed` (1.0 when nothing
    /// collapsed, smaller otherwise).
    pub fn collapse_ratio(&self) -> f64 {
        if self.representative.is_empty() {
            1.0
        } else {
            self.num_classes as f64 / self.representative.len() as f64
        }
    }

    /// Indices of the representative faults, sorted.
    pub fn representatives(&self) -> Vec<usize> {
        let mut reps: Vec<usize> = self.representative.clone();
        reps.sort_unstable();
        reps.dedup();
        reps
    }
}

/// Collapses the fault universe of `list` over `netlist`.
///
/// Faults in the list that refer to cells outside the netlist are left in
/// singleton classes.
pub fn collapse(netlist: &Netlist, list: &FaultList) -> CollapsedFaults {
    collapse_with_barriers(netlist, list, |_| false)
}

/// [`collapse`] with *stem/branch barriers*: nets for which `barrier`
/// returns true never contribute a rule-2 (fanout-free stem/branch) union.
///
/// This is the form an environment-aware consumer needs: under a constraint
/// set that forces a gate-driven net to a constant, the net's stem fault is
/// masked (gates never overwrite a forced net) while the branch fault still
/// injects at the load's pin read — the two are structurally "equivalent"
/// but behave differently, so the union across the net must not be made.
/// Rule-1 (gate-local) unions stay valid on barrier nets: a forced gate
/// output masks the gate's input-pin faults and its output fault alike, so
/// those remain genuinely equivalent.
pub fn collapse_with_barriers(
    netlist: &Netlist,
    list: &FaultList,
    barrier: impl Fn(NetId) -> bool,
) -> CollapsedFaults {
    let mut uf = UnionFind::new(list.len());

    let fault_index = |fault: StuckAt| list.index_of(fault);

    // Rule 1: gate-local equivalences.
    for (cell_id, cell) in netlist.live_cells() {
        let kind = cell.kind();
        match kind {
            CellKind::Buf | CellKind::Not => {
                let inverting = kind == CellKind::Not;
                for value in [false, true] {
                    let input = StuckAt::input(cell_id, 0, value);
                    let output = StuckAt::output(cell_id, value ^ inverting);
                    if let (Some(a), Some(b)) = (fault_index(input), fault_index(output)) {
                        uf.union(a, b);
                    }
                }
            }
            _ => {
                if let (Some(cv), Some(inv)) = (kind.controlling_value(), kind.is_inverting()) {
                    let output = StuckAt::output(cell_id, cv ^ inv);
                    if let Some(out_idx) = fault_index(output) {
                        for pin in 0..cell.inputs().len() {
                            let input = StuckAt::input(cell_id, pin as netlist::PinIndex, cv);
                            if let Some(in_idx) = fault_index(input) {
                                uf.union(in_idx, out_idx);
                            }
                        }
                    }
                }
            }
        }
    }

    // Rule 2: fanout-free stem/branch equivalence.
    for net in netlist.net_ids() {
        if barrier(net) {
            continue;
        }
        let loads = netlist.loads_of(net);
        let live_loads: Vec<_> = loads
            .iter()
            .filter(|l| !netlist.cell(l.cell).is_dead())
            .collect();
        if live_loads.len() != 1 {
            continue;
        }
        let Some(driver) = netlist.driver_of(net) else {
            continue;
        };
        if netlist.cell(driver).is_dead() {
            continue;
        }
        let load = live_loads[0];
        for value in [false, true] {
            let stem = StuckAt::output(driver, value);
            let branch = StuckAt::new(
                FaultSite::CellInput {
                    cell: load.cell,
                    pin: load.pin,
                },
                value,
            );
            if let (Some(a), Some(b)) = (fault_index(stem), fault_index(branch)) {
                uf.union(a, b);
            }
        }
    }

    let representative: Vec<usize> = (0..list.len()).map(|i| uf.find(i)).collect();
    let mut reps: Vec<usize> = representative.clone();
    reps.sort_unstable();
    reps.dedup();
    CollapsedFaults {
        num_classes: reps.len(),
        representative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn inverter_chain_collapses_hard() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut cur = a;
        for _ in 0..4 {
            cur = b.not(cur);
        }
        b.output("y", cur);
        let n = b.finish();
        let list = FaultList::full_universe(&n);
        let collapsed = collapse(&n, &list);
        // Uncollapsed: input(1 pin) + 4 inverters(2 pins each) + output(1 pin) = 10 pins = 20 faults.
        assert_eq!(list.len(), 20);
        // Every inverter input fault collapses with its output fault, and every
        // stem collapses with its single branch: only 2 classes remain.
        assert_eq!(collapsed.num_classes(), 2);
        assert!(collapsed.collapse_ratio() < 0.2);
    }

    #[test]
    fn and_gate_collapse() {
        let mut b = NetlistBuilder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and2(x, y);
        b.output("z", z);
        let n = b.finish();
        let list = FaultList::full_universe(&n);
        let collapsed = collapse(&n, &list);
        // 12 uncollapsed faults; collapsing merges {A0/0, A1/0, Y/0} and each
        // stem/branch pair on the fanout-free nets.
        assert_eq!(list.len(), 12);
        let and = n.find_cell("u_and_1").unwrap();
        let a0_0 = list.index_of(StuckAt::input(and, 0, false)).unwrap();
        let a1_0 = list.index_of(StuckAt::input(and, 1, false)).unwrap();
        let y_0 = list.index_of(StuckAt::output(and, false)).unwrap();
        assert_eq!(
            collapsed.representative_of(a0_0),
            collapsed.representative_of(a1_0)
        );
        assert_eq!(
            collapsed.representative_of(a0_0),
            collapsed.representative_of(y_0)
        );
        // Stuck-at-1 on inputs are NOT equivalent to each other.
        let a0_1 = list.index_of(StuckAt::input(and, 0, true)).unwrap();
        let a1_1 = list.index_of(StuckAt::input(and, 1, true)).unwrap();
        assert_ne!(
            collapsed.representative_of(a0_1),
            collapsed.representative_of(a1_1)
        );
        assert!(collapsed.num_classes() < list.len());
    }

    #[test]
    fn fanout_stems_do_not_collapse_with_branches() {
        let mut b = NetlistBuilder::new("fanout");
        let a = b.input("a");
        let y1 = b.not(a);
        let y2 = b.buf(a);
        b.output("y1", y1);
        b.output("y2", y2);
        let n = b.finish();
        let list = FaultList::full_universe(&n);
        let collapsed = collapse(&n, &list);
        let input_cell = n.primary_inputs()[0];
        let inv = n.driver_of(y1).unwrap();
        let stem0 = list.index_of(StuckAt::output(input_cell, false)).unwrap();
        let branch0 = list.index_of(StuckAt::input(inv, 0, false)).unwrap();
        assert_ne!(
            collapsed.representative_of(stem0),
            collapsed.representative_of(branch0),
            "net `a` has two loads, stem and branch faults stay distinct"
        );
    }

    #[test]
    fn xor_gates_do_not_collapse_inputs() {
        let mut b = NetlistBuilder::new("xor");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.xor2(x, y);
        b.output("z", z);
        let n = b.finish();
        let list = FaultList::full_universe(&n);
        let collapsed = collapse(&n, &list);
        let g = n.find_cell("u_xor_1").unwrap();
        let a0_0 = list.index_of(StuckAt::input(g, 0, false)).unwrap();
        let y_0 = list.index_of(StuckAt::output(g, false)).unwrap();
        assert_ne!(
            collapsed.representative_of(a0_0),
            collapsed.representative_of(y_0)
        );
    }

    #[test]
    fn representatives_cover_all_faults() {
        let mut b = NetlistBuilder::new("misc");
        let a = b.input_bus("a", 3);
        let s = b.input("s");
        let m = b.mux2(a[0], a[1], s);
        let o = b.or2(m, a[2]);
        b.output("o", o);
        let n = b.finish();
        let list = FaultList::full_universe(&n);
        let collapsed = collapse(&n, &list);
        let reps = collapsed.representatives();
        assert_eq!(reps.len(), collapsed.num_classes());
        for i in 0..list.len() {
            assert!(reps.contains(&collapsed.representative_of(i)));
        }
    }
}
