//! The fault universe: generation and classification bookkeeping.

use crate::{FaultClass, FaultSite, StuckAt, UntestableSource};
use netlist::{CellId, Netlist, PinIndex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The complete stuck-at fault universe of a design, with a classification
/// per fault.
///
/// The list is generated under the *uncollapsed pin-fault model*: two faults
/// (stuck-at-0 and stuck-at-1) on every input pin and every output pin of
/// every live cell, including the `Input`/`Output` port pseudo-cells and tie
/// cells. This mirrors the way commercial tools report "total faults"
/// (the paper's 214,930 figure) before any collapsing.
///
/// # Examples
///
/// ```
/// use faultmodel::FaultList;
/// use netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let n = b.finish();
/// let faults = FaultList::full_universe(&n);
/// // input cell: 1 pin, inverter: 2 pins, output cell: 1 pin => 8 faults
/// assert_eq!(faults.len(), 8);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultList {
    faults: Vec<StuckAt>,
    classes: Vec<FaultClass>,
    #[serde(skip)]
    index: HashMap<StuckAt, usize>,
    #[serde(skip)]
    by_cell: HashMap<CellId, Vec<usize>>,
}

impl FaultList {
    /// Generates the full uncollapsed fault universe of `netlist`.
    pub fn full_universe(netlist: &Netlist) -> Self {
        let mut faults = Vec::new();
        for (id, cell) in netlist.live_cells() {
            for pin in 0..cell.inputs().len() {
                for value in [false, true] {
                    faults.push(StuckAt::input(id, pin as PinIndex, value));
                }
            }
            if cell.output().is_some() {
                for value in [false, true] {
                    faults.push(StuckAt::output(id, value));
                }
            }
        }
        Self::from_faults(faults)
    }

    /// Builds a fault list from an explicit set of faults (duplicates are
    /// removed, order preserved).
    pub fn from_faults(faults: Vec<StuckAt>) -> Self {
        let mut unique = Vec::with_capacity(faults.len());
        let mut index = HashMap::with_capacity(faults.len());
        for fault in faults {
            if let std::collections::hash_map::Entry::Vacant(entry) = index.entry(fault) {
                entry.insert(unique.len());
                unique.push(fault);
            }
        }
        let classes = vec![FaultClass::Undetected; unique.len()];
        let mut by_cell: HashMap<CellId, Vec<usize>> = HashMap::new();
        for (i, fault) in unique.iter().enumerate() {
            by_cell.entry(fault.site.cell()).or_default().push(i);
        }
        FaultList {
            faults: unique,
            classes,
            index,
            by_cell,
        }
    }

    /// Rebuilds the lookup indices (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        self.by_cell.clear();
        for (i, fault) in self.faults.iter().enumerate() {
            self.by_cell.entry(fault.site.cell()).or_default().push(i);
        }
    }

    /// Number of faults in the universe.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates over `(fault, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StuckAt, FaultClass)> + '_ {
        self.faults
            .iter()
            .zip(self.classes.iter())
            .map(|(&f, &c)| (f, c))
    }

    /// Iterates over the still-[`Undetected`](FaultClass::Undetected) faults
    /// as `(universe index, fault)` pairs — the targets a simulation campaign
    /// grades. The index can be fed back to
    /// [`classify_at`](Self::classify_at), so campaigns need no intermediate
    /// `(fault, class)` collection and no per-fault hash lookup to record
    /// detections.
    pub fn undetected(&self) -> impl Iterator<Item = (usize, StuckAt)> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == FaultClass::Undetected)
            .map(|(i, _)| (i, self.faults[i]))
    }

    /// The faults only, in universe order.
    pub fn faults(&self) -> &[StuckAt] {
        &self.faults
    }

    /// Index of a fault in the universe, if present.
    pub fn index_of(&self, fault: StuckAt) -> Option<usize> {
        self.index.get(&fault).copied()
    }

    /// Whether the universe contains `fault`.
    pub fn contains(&self, fault: StuckAt) -> bool {
        self.index.contains_key(&fault)
    }

    /// The current classification of `fault` (`None` if it is not part of the
    /// universe).
    pub fn class_of(&self, fault: StuckAt) -> Option<FaultClass> {
        self.index_of(fault).map(|i| self.classes[i])
    }

    /// Classification by universe index.
    pub fn class_at(&self, index: usize) -> FaultClass {
        self.classes[index]
    }

    /// Sets the classification of `fault` unconditionally. Returns `false`
    /// if the fault is not in the universe.
    pub fn classify(&mut self, fault: StuckAt, class: FaultClass) -> bool {
        match self.index_of(fault) {
            Some(i) => {
                self.classes[i] = class;
                true
            }
            None => false,
        }
    }

    /// Sets the classification only if the fault is still
    /// [`FaultClass::Undetected`]. Returns `true` if the classification was
    /// applied.
    pub fn classify_if_undetected(&mut self, fault: StuckAt, class: FaultClass) -> bool {
        match self.index_of(fault) {
            Some(i) if self.classes[i] == FaultClass::Undetected => {
                self.classes[i] = class;
                true
            }
            _ => false,
        }
    }

    /// Sets the classification by universe index.
    pub fn classify_at(&mut self, index: usize, class: FaultClass) {
        self.classes[index] = class;
    }

    /// All faults located on `cell` (any pin).
    pub fn faults_of_cell(&self, cell: CellId) -> Vec<StuckAt> {
        self.by_cell
            .get(&cell)
            .map(|v| v.iter().map(|&i| self.faults[i]).collect())
            .unwrap_or_default()
    }

    /// All faults with a given classification.
    pub fn faults_in_class(&self, class: FaultClass) -> Vec<StuckAt> {
        self.iter()
            .filter(|&(_, c)| c == class)
            .map(|(f, _)| f)
            .collect()
    }

    /// Number of faults currently classified as on-line functionally
    /// untestable for a given source.
    pub fn count_online_untestable(&self, source: UntestableSource) -> usize {
        self.classes
            .iter()
            .filter(|&&c| c == FaultClass::OnlineUntestable(source))
            .count()
    }

    /// Number of faults in each classification, as a [`crate::ClassCounts`].
    pub fn counts(&self) -> crate::ClassCounts {
        let mut counts = crate::ClassCounts::default();
        for &class in &self.classes {
            counts.add(class, 1);
        }
        counts
    }

    /// Returns a new fault list containing only the faults for which `keep`
    /// returns true, preserving their classifications.
    pub fn filtered(&self, mut keep: impl FnMut(StuckAt, FaultClass) -> bool) -> FaultList {
        let mut faults = Vec::new();
        let mut classes = Vec::new();
        for (f, c) in self.iter() {
            if keep(f, c) {
                faults.push(f);
                classes.push(c);
            }
        }
        let mut list = FaultList::from_faults(faults);
        list.classes = classes;
        list
    }

    /// Copies every non-`Undetected` classification from `other` into this
    /// list (for faults present in both). Returns how many classifications
    /// were imported.
    ///
    /// Used to merge the results of analyses run on manipulated copies of the
    /// design back into the master fault list, re-labelling structural
    /// untestability as on-line untestability where requested.
    pub fn import_classes(
        &mut self,
        other: &FaultList,
        mut map: impl FnMut(FaultClass) -> Option<FaultClass>,
    ) -> usize {
        let mut imported = 0;
        for (fault, class) in other.iter() {
            if class == FaultClass::Undetected {
                continue;
            }
            if let Some(new_class) = map(class) {
                if let Some(i) = self.index_of(fault) {
                    if self.classes[i] == FaultClass::Undetected {
                        self.classes[i] = new_class;
                        imported += 1;
                    }
                }
            }
        }
        imported
    }
}

impl FaultSite {
    /// Enumerates both stuck-at faults on this site.
    pub fn both_polarities(self) -> [StuckAt; 2] {
        [StuckAt::new(self, false), StuckAt::new(self, true)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    fn sample() -> (Netlist, FaultList) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let list = FaultList::full_universe(&n);
        (n, list)
    }

    #[test]
    fn universe_counts_every_pin_twice() {
        let (n, list) = sample();
        // input a: 1 pin, input b: 1 pin, and: 3 pins, output: 1 pin = 6 pins
        assert_eq!(list.len(), 12);
        assert_eq!(netlist::stats::stats(&n).stuck_at_faults(), list.len());
    }

    #[test]
    fn classify_and_query() {
        let (n, mut list) = sample();
        let and = n.find_cell("u_and_1").unwrap();
        let f = StuckAt::input(and, 0, true);
        assert_eq!(list.class_of(f), Some(FaultClass::Undetected));
        assert!(list.classify(f, FaultClass::Detected));
        assert_eq!(list.class_of(f), Some(FaultClass::Detected));
        assert!(!list.classify_if_undetected(f, FaultClass::Tied));
        assert_eq!(list.class_of(f), Some(FaultClass::Detected));
        assert_eq!(list.faults_in_class(FaultClass::Detected), vec![f]);
        assert_eq!(list.counts().detected, 1);
    }

    #[test]
    fn classify_unknown_fault_is_rejected() {
        let (_, mut list) = sample();
        // A fault on a cell id that does not exist in the universe.
        let bogus_cell = {
            let mut b2 = NetlistBuilder::new("other");
            let x = b2.input("x");
            let y = b2.not(x);
            b2.output("y", y);
            let n2 = b2.finish();
            n2.driver_of(y).unwrap()
        };
        // same numeric id likely exists, so craft an out-of-range pin instead
        let f = StuckAt::input(bogus_cell, 17, false);
        assert!(!list.classify(f, FaultClass::Detected));
    }

    #[test]
    fn faults_of_cell_returns_all_pins() {
        let (n, list) = sample();
        let and = n.find_cell("u_and_1").unwrap();
        assert_eq!(list.faults_of_cell(and).len(), 6);
    }

    #[test]
    fn filtered_keeps_classes() {
        let (n, mut list) = sample();
        let and = n.find_cell("u_and_1").unwrap();
        list.classify(StuckAt::output(and, true), FaultClass::Detected);
        let only_and = list.filtered(|f, _| f.site.cell() == and);
        assert_eq!(only_and.len(), 6);
        assert_eq!(
            only_and.class_of(StuckAt::output(and, true)),
            Some(FaultClass::Detected)
        );
    }

    #[test]
    fn import_classes_relabels() {
        let (n, mut master) = sample();
        let mut analysed = master.clone();
        let and = n.find_cell("u_and_1").unwrap();
        analysed.classify(StuckAt::input(and, 0, false), FaultClass::Tied);
        analysed.classify(StuckAt::input(and, 1, false), FaultClass::Blocked);
        let imported = master.import_classes(&analysed, |c| {
            if c.is_structurally_untestable() {
                Some(FaultClass::OnlineUntestable(UntestableSource::DebugControl))
            } else {
                None
            }
        });
        assert_eq!(imported, 2);
        assert_eq!(
            master.count_online_untestable(UntestableSource::DebugControl),
            2
        );
        // Already-classified faults in the master are not overwritten.
        let mut master2 = master.clone();
        let before = master2.class_of(StuckAt::input(and, 0, false)).unwrap();
        master2.import_classes(&analysed, |_| Some(FaultClass::Detected));
        assert_eq!(
            master2.class_of(StuckAt::input(and, 0, false)),
            Some(before)
        );
    }

    #[test]
    fn duplicates_removed_on_construction() {
        let (n, _) = sample();
        let and = n.find_cell("u_and_1").unwrap();
        let f = StuckAt::output(and, false);
        let list = FaultList::from_faults(vec![f, f, f]);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn both_polarities_helper() {
        let (n, _) = sample();
        let and = n.find_cell("u_and_1").unwrap();
        let site = FaultSite::CellOutput { cell: and };
        let faults = site.both_polarities();
        assert!(!faults[0].value);
        assert!(faults[1].value);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let (n, mut list) = sample();
        let and = n.find_cell("u_and_1").unwrap();
        list.rebuild_index();
        assert!(list.contains(StuckAt::output(and, true)));
        assert_eq!(list.faults_of_cell(and).len(), 6);
    }
}
