//! Stuck-at fault sites under the pin-fault model.

use netlist::{CellId, Netlist, PinIndex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A location where a stuck-at fault can occur: a cell input pin (a *branch*
/// of the driving net) or a cell output pin (the *stem*).
///
/// Primary-port faults are represented through the `Input` / `Output`
/// pseudo-cells of the netlist: a fault on a primary input is the output-pin
/// fault of its `Input` cell, a fault on a primary output is the input-pin
/// fault of its `Output` cell.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum FaultSite {
    /// Input pin `pin` of `cell`.
    CellInput {
        /// The cell owning the pin.
        cell: CellId,
        /// The input pin index.
        pin: PinIndex,
    },
    /// The output pin of `cell`.
    CellOutput {
        /// The cell owning the pin.
        cell: CellId,
    },
}

impl FaultSite {
    /// The cell this site belongs to.
    pub fn cell(self) -> CellId {
        match self {
            FaultSite::CellInput { cell, .. } | FaultSite::CellOutput { cell } => cell,
        }
    }

    /// Human-readable description of the site (`instance.PIN`).
    pub fn describe(self, netlist: &Netlist) -> String {
        match self {
            FaultSite::CellInput { cell, pin } => {
                let c = netlist.cell(cell);
                format!("{}.{}", c.name(), c.kind().input_pin_name(pin as usize))
            }
            FaultSite::CellOutput { cell } => {
                let c = netlist.cell(cell);
                format!("{}.{}", c.name(), c.kind().output_pin_name())
            }
        }
    }
}

/// A single stuck-at fault: a [`FaultSite`] stuck at a logic value.
///
/// # Examples
///
/// ```
/// use faultmodel::{FaultSite, StuckAt};
/// use netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let y = b.not(a);
/// b.output("y", y);
/// let n = b.finish();
/// let inv = n.driver_of(y).unwrap();
/// let fault = StuckAt::new(FaultSite::CellOutput { cell: inv }, true);
/// assert_eq!(fault.describe(&n), "u_inv_1.Y stuck-at-1");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct StuckAt {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The value the signal is stuck at.
    pub value: bool,
}

impl StuckAt {
    /// Creates a stuck-at fault.
    pub fn new(site: FaultSite, value: bool) -> Self {
        StuckAt { site, value }
    }

    /// Convenience constructor for an output-pin (stem) stuck-at fault.
    pub fn output(cell: CellId, value: bool) -> Self {
        StuckAt {
            site: FaultSite::CellOutput { cell },
            value,
        }
    }

    /// Convenience constructor for an input-pin (branch) stuck-at fault.
    pub fn input(cell: CellId, pin: PinIndex, value: bool) -> Self {
        StuckAt {
            site: FaultSite::CellInput { cell, pin },
            value,
        }
    }

    /// Human-readable description (`instance.PIN stuck-at-v`).
    pub fn describe(self, netlist: &Netlist) -> String {
        format!(
            "{} stuck-at-{}",
            self.site.describe(netlist),
            u8::from(self.value)
        )
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site {
            FaultSite::CellInput { cell, pin } => {
                write!(f, "{cell}.in{pin} s-a-{}", u8::from(self.value))
            }
            FaultSite::CellOutput { cell } => write!(f, "{cell}.out s-a-{}", u8::from(self.value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn describe_names_pins() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let n = b.finish();
        let and = n.driver_of(y).unwrap();
        assert_eq!(
            StuckAt::input(and, 1, false).describe(&n),
            format!("{}.A1 stuck-at-0", n.cell(and).name())
        );
        assert_eq!(
            StuckAt::output(and, true).describe(&n),
            format!("{}.Y stuck-at-1", n.cell(and).name())
        );
    }

    #[test]
    fn display_is_compact() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let n = b.finish();
        let inv = n.driver_of(y).unwrap();
        let f = StuckAt::output(inv, false);
        assert!(format!("{f}").contains("s-a-0"));
        assert_eq!(f.site.cell(), inv);
    }
}
