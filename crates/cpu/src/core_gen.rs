//! Assembly of the complete single-cycle `mini32` processor core at gate
//! level, from the datapath generators in [`crate::rtl`].

use crate::rtl::{
    agu::generate_agu,
    alu::{generate_alu, AluControl},
    btb::generate_btb,
    decode::{generate_controls, InstrFields},
    regfile::generate_regfile,
    sign_extend_16, zero_extend_16,
};
use netlist::{CellId, CellKind, NetId, NetlistBuilder, Reset, Word};
use serde::{Deserialize, Serialize};

/// Configuration of the generated core.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of physical general-purpose registers (2..=32).
    pub num_regs: usize,
    /// Number of branch-target-buffer entries (power of two); 0 disables the
    /// BTB entirely.
    pub btb_entries: usize,
    /// Include the free-running cycle counter special-purpose register.
    pub include_cycle_counter: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            num_regs: 32,
            btb_entries: 4,
            include_cycle_counter: true,
        }
    }
}

impl CoreConfig {
    /// A reduced configuration for fast tests and scaling studies.
    pub fn small() -> Self {
        CoreConfig {
            num_regs: 8,
            btb_entries: 2,
            include_cycle_counter: false,
        }
    }
}

/// The externally relevant nets and ports of a generated core.
#[derive(Clone, Debug)]
pub struct CoreInterface {
    /// Clock input net.
    pub clock: NetId,
    /// Active-low reset input net.
    pub reset_n: NetId,
    /// Instruction fetch address (equals the PC).
    pub imem_addr: Word,
    /// Instruction word input nets.
    pub imem_rdata: Word,
    /// Data address output nets.
    pub dmem_addr: Word,
    /// Data read input nets.
    pub dmem_rdata: Word,
    /// Data write output nets.
    pub dmem_wdata: Word,
    /// Data write strobe.
    pub dmem_we: NetId,
    /// Data read strobe.
    pub dmem_re: NetId,
    /// The PC register output nets.
    pub pc: Word,
    /// Register-file read port A (exposed to the debug observation bus).
    pub regfile_read_a: Word,
    /// The cycle-counter register outputs (empty when disabled).
    pub cycle_counter: Word,
    /// BTB hit flag (when a BTB is present).
    pub btb_hit: Option<NetId>,
    /// Asserted while a `halt` instruction is being executed.
    pub halted: NetId,
    /// The `Output` pseudo-cells of the system bus (the observation points a
    /// functional on-line test can actually use).
    pub bus_output_ports: Vec<CellId>,
}

fn placeholder_word(builder: &mut NetlistBuilder, prefix: &str, width: usize) -> Word {
    (0..width)
        .map(|i| builder.netlist_mut().add_net(format!("{prefix}{i}")))
        .collect()
}

fn drive_word(builder: &mut NetlistBuilder, prefix: &str, targets: &[NetId], sources: &[NetId]) {
    assert_eq!(targets.len(), sources.len());
    for (i, (&target, &source)) in targets.iter().zip(sources).enumerate() {
        let name = format!("u_{prefix}_drv{i}");
        builder
            .netlist_mut()
            .add_cell(CellKind::Buf, name, &[source], Some(target));
    }
}

/// Generates the complete core inside `builder` and returns its interface.
///
/// The generated logic is grouped by functional unit (`fetch.pc`, `decode`,
/// `regfile`, `alu`, `agu`, `btb`, `spr`); the primary ports are left
/// ungrouped. Primary outputs created here form the *system bus* — the only
/// observation points available to an on-line functional test.
pub fn generate_core(builder: &mut NetlistBuilder, config: &CoreConfig) -> CoreInterface {
    let clock = builder.input("clk");
    let reset_n = builder.input("rst_n");
    let imem_rdata = builder.input_bus("imem_rdata", 32);
    let dmem_rdata = builder.input_bus("dmem_rdata", 32);

    // ------------------------------------------------------------------
    // Program counter.
    // ------------------------------------------------------------------
    builder.push_group("fetch");
    builder.push_group("pc");
    let pc_d = placeholder_word(builder, "pc_d", 32);
    let pc: Word = pc_d
        .iter()
        .map(|&d| builder.dff_r(d, clock, reset_n, Reset::ActiveLow))
        .collect();
    for (i, &q) in pc.iter().enumerate() {
        if let Some(ff) = builder.netlist().driver_of(q) {
            builder.netlist_mut().set_address_bit(ff, i as u32);
        }
    }
    builder.pop_group();
    builder.pop_group();

    // ------------------------------------------------------------------
    // Decode.
    // ------------------------------------------------------------------
    let fields = InstrFields::split(&imem_rdata);
    let controls = generate_controls(builder, &fields);

    builder.push_group("decode");
    let const_31 = builder.const_word(31, 5);
    let mut dest = builder.mux2_word(&fields.rt, &fields.rd, controls.dest_is_rd);
    dest = builder.mux2_word(&dest, &const_31, controls.dest_is_link);
    let sign_ext = sign_extend_16(&fields.imm16);
    let zero_ext = zero_extend_16(builder, &fields.imm16);
    let imm_ext = builder.mux2_word(&sign_ext, &zero_ext, controls.imm_zero_extend);
    let zero16 = builder.const_word(0, 16);
    let mut lui_value: Word = zero16;
    lui_value.extend_from_slice(&fields.imm16);
    builder.pop_group();

    // ------------------------------------------------------------------
    // Register file (write-back data is driven later through placeholders).
    // ------------------------------------------------------------------
    let wb_data = placeholder_word(builder, "wb_data", 32);
    let regfile = generate_regfile(
        builder,
        clock,
        config.num_regs,
        &fields.rs,
        &fields.rt,
        &dest,
        controls.reg_write,
        &wb_data,
    );

    // ------------------------------------------------------------------
    // ALU.
    // ------------------------------------------------------------------
    builder.push_group("alu_ctl");
    let op_and = builder.or2(controls.fn_and, controls.is_andi);
    let op_or = builder.or2(controls.fn_or, controls.is_ori);
    let op_xor = builder.or2(controls.fn_xor, controls.is_xori);
    builder.pop_group();
    let alu_control = AluControl {
        op_sub: controls.fn_sub,
        op_and,
        op_or,
        op_xor,
        op_sltu: controls.fn_sltu,
        op_sll: controls.fn_sll,
        op_srl: controls.fn_srl,
    };
    let operand_b = {
        builder.push_group("alu_ctl");
        let w = builder.mux2_word(&regfile.read_b, &imm_ext, controls.alu_src_imm);
        builder.pop_group();
        w
    };
    let alu = generate_alu(
        builder,
        &regfile.read_a,
        &operand_b,
        &fields.shamt,
        &alu_control,
    );

    // ------------------------------------------------------------------
    // Address generation.
    // ------------------------------------------------------------------
    let agu = generate_agu(
        builder,
        &pc,
        &regfile.read_a,
        &fields.imm16,
        &fields.target26,
    );

    // ------------------------------------------------------------------
    // Branch resolution and next PC.
    // ------------------------------------------------------------------
    builder.push_group("fetch");
    let not_equal = builder.not(alu.equal);
    let take_beq = builder.and2(controls.is_beq, alu.equal);
    let take_bne = builder.and2(controls.is_bne, not_equal);
    let take_branch = builder.or2(take_beq, take_bne);
    let mut next_pc = builder.mux2_word(&agu.pc_plus_4, &agu.branch_target, take_branch);
    next_pc = builder.mux2_word(&next_pc, &agu.jump_target, controls.is_jump);
    next_pc = builder.mux2_word(&next_pc, &pc, controls.is_halt);
    drive_word(builder, "pc", &pc_d, &next_pc);
    builder.pop_group();

    // ------------------------------------------------------------------
    // Branch target buffer.
    // ------------------------------------------------------------------
    let btb_hit = if config.btb_entries >= 2 {
        builder.push_group("btb_ctl");
        let taken_transfer = builder.or2(take_branch, controls.is_jump);
        let update_target =
            builder.mux2_word(&agu.branch_target, &agu.jump_target, controls.is_jump);
        builder.pop_group();
        let btb = generate_btb(
            builder,
            clock,
            &pc,
            taken_transfer,
            &update_target,
            config.btb_entries,
        );
        // Export a compact view of the predictor so its logic stays
        // functionally observable: the hit flag and the target parity.
        builder.push_group("btb_ctl");
        let parity = builder.reduce_xor(&btb.predicted_target);
        builder.pop_group();
        builder.output("btb_pred_parity", parity);
        builder.output("btb_hit", btb.hit);
        Some(btb.hit)
    } else {
        None
    };

    // ------------------------------------------------------------------
    // Write-back selection.
    // ------------------------------------------------------------------
    builder.push_group("wb");
    let mut wb = alu.result.clone();
    wb = builder.mux2_word(&wb, &lui_value, controls.wb_from_lui);
    wb = builder.mux2_word(&wb, &dmem_rdata, controls.wb_from_mem);
    wb = builder.mux2_word(&wb, &agu.pc_plus_4, controls.wb_from_link);
    drive_word(builder, "wb", &wb_data, &wb);
    builder.pop_group();

    // ------------------------------------------------------------------
    // Cycle counter special-purpose register.
    // ------------------------------------------------------------------
    let cycle_counter = if config.include_cycle_counter {
        builder.push_group("spr");
        let d = placeholder_word(builder, "cycle_d", 32);
        let q: Word = d.iter().map(|&dn| builder.dff(dn, clock)).collect();
        let (inc, _) = builder.incrementer(&q);
        drive_word(builder, "cycle", &d, &inc);
        let parity = builder.reduce_xor(&q);
        builder.pop_group();
        builder.output("cycle_parity", parity);
        q
    } else {
        Vec::new()
    };

    // ------------------------------------------------------------------
    // System bus primary outputs.
    // ------------------------------------------------------------------
    let mut bus_output_ports = Vec::new();
    bus_output_ports.extend(builder.output_bus("imem_addr", &pc));
    bus_output_ports.extend(builder.output_bus("dmem_addr", &agu.data_address));
    bus_output_ports.extend(builder.output_bus("dmem_wdata", &regfile.read_b));
    bus_output_ports.push(builder.output("dmem_we", controls.mem_write));
    bus_output_ports.push(builder.output("dmem_re", controls.mem_read));
    bus_output_ports.push(builder.output("halted", controls.is_halt));

    CoreInterface {
        clock,
        reset_n,
        imem_addr: pc.clone(),
        imem_rdata,
        dmem_addr: agu.data_address,
        dmem_rdata,
        dmem_wdata: regfile.read_b,
        dmem_we: controls.mem_write,
        dmem_re: controls.mem_read,
        pc,
        regfile_read_a: regfile.read_a,
        cycle_counter,
        btb_hit,
        halted: controls.is_halt,
        bus_output_ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;
    use crate::iss::Iss;
    use crate::mem::Memory;
    use atpg::{FaultSim, InputVector};
    use netlist::stats::stats;

    fn build_core(config: &CoreConfig) -> (netlist::Netlist, CoreInterface) {
        let mut b = NetlistBuilder::new("mini32");
        let iface = generate_core(&mut b, config);
        (b.finish(), iface)
    }

    /// Store transactions `(address, data)` observed on the bus of one run.
    type StoreLog = Vec<(u32, u32)>;

    /// Runs a program on both the ISS and the gate-level core (testbench-fed
    /// memory) and compares the store transactions observed on the bus.
    fn cosimulate(program: &[Instr], cycles: usize) -> (StoreLog, StoreLog) {
        // Reference run.
        let mut memory = Memory::new();
        memory.load_words(0, &Instr::assemble(program));
        let mut iss = Iss::new(memory, 0);
        let trace = iss.run(cycles);

        // Gate-level run: per cycle, feed the instruction and load data the
        // ISS saw and observe the data-bus outputs. The full register file is
        // needed because some programs use r31 (the link register).
        let config = CoreConfig {
            num_regs: 32,
            btb_entries: 2,
            include_cycle_counter: false,
        };
        let (netlist, iface) = build_core(&config);
        let sim = FaultSim::new(&netlist).unwrap();
        let mut vectors: Vec<InputVector> = Vec::new();
        for cycle in &trace.cycles {
            let mut v = InputVector::new();
            v.insert(iface.clock, true);
            v.insert(iface.reset_n, true);
            for (i, &net) in iface.imem_rdata.iter().enumerate() {
                v.insert(net, (cycle.instruction >> i) & 1 == 1);
            }
            for (i, &net) in iface.dmem_rdata.iter().enumerate() {
                v.insert(net, (cycle.read_data >> i) & 1 == 1);
            }
            vectors.push(v);
        }
        let responses = sim.good_responses(&vectors);
        // Interpret the responses: find dmem_addr/dmem_wdata/dmem_we columns.
        let outputs = netlist.primary_outputs();
        let col = |name: &str| -> usize {
            outputs
                .iter()
                .position(|&po| netlist.cell(po).name() == name)
                .unwrap_or_else(|| panic!("missing output {name}"))
        };
        let we_col = col("dmem_we");
        let addr_cols: Vec<usize> = (0..32).map(|i| col(&format!("dmem_addr[{i}]"))).collect();
        let data_cols: Vec<usize> = (0..32).map(|i| col(&format!("dmem_wdata[{i}]"))).collect();
        let mut gate_stores = Vec::new();
        for row in &responses {
            if row[we_col] {
                let addr: u32 = addr_cols
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (row[c] as u32) << i)
                    .sum();
                let data: u32 = data_cols
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (row[c] as u32) << i)
                    .sum();
                gate_stores.push((addr, data));
            }
        }
        (trace.stores(), gate_stores)
    }

    #[test]
    fn core_has_expected_structure() {
        let (netlist, iface) = build_core(&CoreConfig::default());
        let s = stats(&netlist);
        assert!(
            s.flip_flops > 1000,
            "expected > 1000 FFs, got {}",
            s.flip_flops
        );
        assert!(s.combinational_cells > 4000);
        assert!(s.stuck_at_faults() > 20_000);
        assert_eq!(iface.pc.len(), 32);
        assert!(iface.btb_hit.is_some());
        // Functional groups exist.
        for group in [
            "regfile",
            "alu",
            "agu",
            "agu.branch",
            "btb",
            "decode",
            "fetch.pc",
            "spr",
        ] {
            assert!(
                !netlist.cells_in_group(group).is_empty(),
                "group {group} is empty"
            );
        }
        // The design levelizes and validates.
        let issues =
            netlist::validate::validate(&netlist, netlist::validate::ValidateOptions::default());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn small_config_is_smaller() {
        let (full, _) = build_core(&CoreConfig::default());
        let (small, iface) = build_core(&CoreConfig::small());
        assert!(stats(&small).total_cells < stats(&full).total_cells);
        assert!(iface.cycle_counter.is_empty());
    }

    #[test]
    fn gate_level_matches_iss_on_arithmetic_program() {
        let program = vec![
            Instr::Addi {
                rt: 1,
                rs: 0,
                imm: 10,
            },
            Instr::Addi {
                rt: 2,
                rs: 0,
                imm: 32,
            },
            Instr::Add {
                rd: 3,
                rs: 1,
                rt: 2,
            },
            Instr::Sub {
                rd: 4,
                rs: 2,
                rt: 1,
            },
            Instr::Xor {
                rd: 5,
                rs: 3,
                rt: 4,
            },
            Instr::Sltu {
                rd: 6,
                rs: 1,
                rt: 2,
            },
            Instr::Sll {
                rd: 7,
                rt: 1,
                shamt: 3,
            },
            Instr::Sw {
                rt: 3,
                rs: 0,
                imm: 0x100,
            },
            Instr::Sw {
                rt: 4,
                rs: 0,
                imm: 0x104,
            },
            Instr::Sw {
                rt: 5,
                rs: 0,
                imm: 0x108,
            },
            Instr::Sw {
                rt: 6,
                rs: 0,
                imm: 0x10c,
            },
            Instr::Sw {
                rt: 7,
                rs: 0,
                imm: 0x110,
            },
            Instr::Halt,
        ];
        let (iss_stores, gate_stores) = cosimulate(&program, 40);
        assert_eq!(iss_stores.len(), 5);
        assert_eq!(iss_stores, gate_stores);
    }

    #[test]
    fn gate_level_matches_iss_on_branchy_program() {
        let program = vec![
            Instr::Addi {
                rt: 1,
                rs: 0,
                imm: 5,
            },
            Instr::Addi {
                rt: 2,
                rs: 0,
                imm: 0,
            },
            // loop: r2 += r1; r1 -= 1; bne r1, r0, loop
            Instr::Add {
                rd: 2,
                rs: 2,
                rt: 1,
            },
            Instr::Addi {
                rt: 1,
                rs: 1,
                imm: -1,
            },
            Instr::Bne {
                rs: 1,
                rt: 0,
                imm: -3,
            },
            Instr::Sw {
                rt: 2,
                rs: 0,
                imm: 0x200,
            },
            Instr::Jal { target: 8 },
            Instr::Halt,
            Instr::Sw {
                rt: 31,
                rs: 0,
                imm: 0x204,
            }, // 8: store the link register
            Instr::J { target: 7 },
        ];
        let (iss_stores, gate_stores) = cosimulate(&program, 100);
        assert_eq!(iss_stores, gate_stores);
        // 5+4+3+2+1 = 15 and the link register value 28.
        assert_eq!(iss_stores[0], (0x200, 15));
        assert_eq!(iss_stores[1].1, 28);
    }

    #[test]
    fn gate_level_matches_iss_on_memory_program() {
        let program = vec![
            Instr::Lui { rt: 1, imm: 0x1234 },
            Instr::Ori {
                rt: 1,
                rs: 1,
                imm: 0x5678,
            },
            Instr::Sw {
                rt: 1,
                rs: 0,
                imm: 0x300,
            },
            Instr::Lw {
                rt: 2,
                rs: 0,
                imm: 0x300,
            },
            Instr::Addi {
                rt: 2,
                rs: 2,
                imm: 1,
            },
            Instr::Sw {
                rt: 2,
                rs: 0,
                imm: 0x304,
            },
            Instr::Andi {
                rt: 3,
                rs: 1,
                imm: 0xff00,
            },
            Instr::Sw {
                rt: 3,
                rs: 0,
                imm: 0x308,
            },
            Instr::Halt,
        ];
        let (iss_stores, gate_stores) = cosimulate(&program, 40);
        assert_eq!(iss_stores, gate_stores);
        assert_eq!(iss_stores[0], (0x300, 0x1234_5678));
        assert_eq!(iss_stores[1], (0x304, 0x1234_5679));
        assert_eq!(iss_stores[2], (0x308, 0x5600));
    }
}
