//! SoC assembly: the `mini32` core plus every design-for-test / design-for-
//! debug structure of the paper's industrial case study — full scan, a
//! Nexus-style debug unit with register access and observation buses, a JTAG
//! access port, a logic-BIST block — together with the mission memory map.

use crate::core_gen::{generate_core, CoreConfig, CoreInterface};
use crate::mem::MemoryMap;
use dft::bist::{generate_bist, BistBlock, BistConfig};
use dft::debug::{insert_debug_access, DebugConfig, DebugUnit};
use dft::jtag::{generate_jtag, JtagConfig, JtagPort};
use dft::scan::{insert_scan, ScanConfig, ScanInsertion};
use netlist::{CellId, CellKind, NetId, Netlist, NetlistBuilder};
use serde::{Deserialize, Serialize};

/// Configuration of the generated SoC.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SocConfig {
    /// The processor core configuration.
    pub core: CoreConfig,
    /// Scan-insertion configuration.
    pub scan: ScanConfig,
    /// Debug-unit configuration.
    pub debug: DebugConfig,
    /// JTAG port configuration (`None` omits the TAP).
    pub jtag: Option<JtagConfig>,
    /// BIST configuration (`None` omits the LFSR/MISR pair).
    pub bist: Option<BistConfig>,
    /// The mission memory map.
    pub memory_map: MemoryMap,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            core: CoreConfig::default(),
            scan: ScanConfig::default(),
            debug: DebugConfig::default(),
            jtag: Some(JtagConfig::default()),
            bist: Some(BistConfig::default()),
            memory_map: MemoryMap::date13_case_study(),
        }
    }
}

/// The assembled SoC: the flat netlist plus handles to every inserted
/// structure.
#[derive(Clone, Debug)]
pub struct Soc {
    /// The complete gate-level design.
    pub netlist: Netlist,
    /// The processor-core interface nets.
    pub interface: CoreInterface,
    /// The inserted scan structure.
    pub scan: ScanInsertion,
    /// The inserted debug unit.
    pub debug: DebugUnit,
    /// The JTAG port, when present.
    pub jtag: Option<JtagPort>,
    /// The BIST block, when present.
    pub bist: Option<BistBlock>,
    /// The mission memory map.
    pub memory_map: MemoryMap,
    /// The configuration the SoC was built from.
    pub config: SocConfig,
}

impl Soc {
    /// The debug/test control input nets that are tied off in mission mode,
    /// with the constant value they take: debug enable and data, JTAG pins,
    /// BIST enable, scan enable and scan inputs.
    ///
    /// This is the "ground truth" list; the identification flow re-derives an
    /// equivalent list from toggle analysis, as the paper does.
    pub fn mission_tied_inputs(&self) -> Vec<(NetId, bool)> {
        let mut tied = Vec::new();
        tied.push((
            self.debug.enable_net,
            self.debug.config.mission_enable_value,
        ));
        for &net in &self.debug.data_nets {
            tied.push((net, false));
        }
        if let Some(jtag) = &self.jtag {
            for &net in &jtag.input_nets {
                tied.push((net, false));
            }
        }
        if let Some(bist) = &self.bist {
            tied.push((bist.enable, false));
        }
        if let Some(se) = self.scan.scan_enable_net {
            tied.push((se, self.scan.config.mission_scan_enable_value));
        }
        for chain in &self.scan.chains {
            tied.push((chain.scan_in_net, false));
        }
        tied
    }

    /// The observation-only output ports that nothing reads in mission mode:
    /// the debug observation buses, the scan-out ports and the JTAG TDO.
    pub fn mission_unobserved_outputs(&self) -> Vec<CellId> {
        let mut outputs = self.debug.observation_ports.clone();
        for chain in &self.scan.chains {
            outputs.push(chain.scan_out_port);
        }
        if let Some(jtag) = &self.jtag {
            for load in self.netlist.loads_of(jtag.tdo) {
                if self.netlist.cell(load.cell).kind() == CellKind::Output {
                    outputs.push(load.cell);
                }
            }
        }
        outputs
    }

    /// Flip-flops that hold memory addresses (tagged with their address bit):
    /// the PC and the branch-target-buffer tag/target registers.
    pub fn address_registers(&self) -> Vec<(CellId, u32)> {
        self.netlist
            .live_cells()
            .filter(|(_, c)| c.kind().is_sequential())
            .filter_map(|(id, c)| c.attrs().address_bit.map(|bit| (id, bit)))
            .collect()
    }

    /// The primary input nets the mission application actually drives (clock,
    /// reset and the two memory read buses).
    pub fn functional_inputs(&self) -> Vec<NetId> {
        let mut nets = vec![self.interface.clock, self.interface.reset_n];
        nets.extend(&self.interface.imem_rdata);
        nets.extend(&self.interface.dmem_rdata);
        nets
    }
}

/// Builder for [`Soc`] instances.
#[derive(Clone, Debug, Default)]
pub struct SocBuilder {
    config: SocConfig,
}

impl SocBuilder {
    /// A builder with the given configuration.
    pub fn new(config: SocConfig) -> Self {
        SocBuilder { config }
    }

    /// The full-size industrial-like configuration used for the Table I
    /// reproduction: 32-register core, 4-entry BTB, full scan in four chains,
    /// Nexus-style debug unit, JTAG, BIST, and the case-study memory map.
    pub fn industrial() -> Self {
        SocBuilder {
            config: SocConfig::default(),
        }
    }

    /// A reduced configuration for quick tests and examples.
    pub fn small() -> Self {
        SocBuilder {
            config: SocConfig {
                core: CoreConfig::small(),
                scan: ScanConfig {
                    num_chains: 2,
                    ..ScanConfig::default()
                },
                debug: DebugConfig {
                    data_width: 8,
                    ..DebugConfig::default()
                },
                jtag: Some(JtagConfig::default()),
                bist: None,
                memory_map: MemoryMap::date13_case_study(),
            },
        }
    }

    /// Overrides the memory map.
    pub fn memory_map(mut self, map: MemoryMap) -> Self {
        self.config.memory_map = map;
        self
    }

    /// Overrides the core configuration.
    pub fn core_config(mut self, core: CoreConfig) -> Self {
        self.config.core = core;
        self
    }

    /// Overrides the scan configuration.
    pub fn scan_config(mut self, scan: ScanConfig) -> Self {
        self.config.scan = scan;
        self
    }

    /// The configuration that will be built.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Builds the SoC.
    pub fn build(&self) -> Soc {
        let config = self.config.clone();
        let mut builder = NetlistBuilder::new("soc_mini32");
        let interface = generate_core(&mut builder, &config.core);

        let jtag = config
            .jtag
            .as_ref()
            .map(|jtag_config| generate_jtag(&mut builder, interface.clock, jtag_config));

        let bist = config.bist.as_ref().map(|bist_config| {
            // The BIST compacts the low bits of the data-address bus.
            let observed: Vec<NetId> =
                interface.dmem_addr[..16.min(interface.dmem_addr.len())].to_vec();
            generate_bist(&mut builder, interface.clock, &observed, bist_config)
        });

        let mut netlist = builder.finish();

        // Debug register access: the external debugger can force the PC and
        // the special-purpose cycle counter, and observes the register-file
        // read port and the PC on two dedicated buses (the "general and
        // special purpose register values" of §4).
        let mut control_targets: Vec<CellId> = Vec::new();
        for group in ["fetch.pc", "spr"] {
            control_targets.extend(
                netlist
                    .cells_in_group(group)
                    .into_iter()
                    .filter(|&c| netlist.cell(c).kind().is_sequential()),
            );
        }
        let mut observe_nets: Vec<NetId> = Vec::new();
        observe_nets.extend(&interface.regfile_read_a);
        observe_nets.extend(&interface.pc);
        let debug =
            insert_debug_access(&mut netlist, &control_targets, &observe_nets, &config.debug);

        // Scan insertion last, so the debug and JTAG flip-flops are stitched
        // into the chains as well.
        let scan = insert_scan(&mut netlist, &config.scan);

        Soc {
            netlist,
            interface,
            scan,
            debug,
            jtag,
            bist,
            memory_map: config.memory_map.clone(),
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::stats::stats;
    use netlist::validate::{validate, ValidateOptions};

    #[test]
    fn small_soc_builds_and_validates() {
        let soc = SocBuilder::small().build();
        let s = stats(&soc.netlist);
        assert!(s.scan_flip_flops > 100);
        assert_eq!(s.flip_flops, 0, "every flip-flop must be scanned");
        let issues = validate(&soc.netlist, ValidateOptions::default());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn industrial_soc_is_large() {
        let soc = SocBuilder::industrial().build();
        let s = stats(&soc.netlist);
        assert!(
            s.stuck_at_faults() > 50_000,
            "expected a fault universe above 50k, got {}",
            s.stuck_at_faults()
        );
        assert!(s.scan_flip_flops > 1_000);
        assert!(soc.jtag.is_some());
        assert!(soc.bist.is_some());
    }

    #[test]
    fn mission_tied_inputs_cover_all_test_interfaces() {
        let soc = SocBuilder::small().build();
        let tied = soc.mission_tied_inputs();
        let names: Vec<String> = tied
            .iter()
            .map(|&(net, _)| soc.netlist.net(net).name().to_string())
            .collect();
        assert!(names.iter().any(|n| n.contains("dbg_enable")));
        assert!(names.iter().any(|n| n.contains("jtag_tms")));
        assert!(names.iter().any(|n| n.contains("scan_enable")));
        assert!(names.iter().any(|n| n.contains("scan_in")));
        // Every tied net is a primary input of the design.
        let pi_nets = soc.netlist.primary_input_nets();
        for (net, _) in tied {
            assert!(pi_nets.contains(&net));
        }
    }

    #[test]
    fn mission_unobserved_outputs_are_output_ports() {
        let soc = SocBuilder::small().build();
        let outputs = soc.mission_unobserved_outputs();
        assert!(!outputs.is_empty());
        for po in &outputs {
            assert_eq!(soc.netlist.cell(*po).kind(), netlist::CellKind::Output);
        }
        // Observation buses + scan outs + TDO.
        assert!(outputs.len() >= soc.debug.observation_ports.len() + soc.scan.chains.len());
    }

    #[test]
    fn address_registers_cover_pc_and_btb() {
        let soc = SocBuilder::small().build();
        let regs = soc.address_registers();
        assert!(
            regs.len() >= 32,
            "at least the 32 PC bits, got {}",
            regs.len()
        );
        let groups: Vec<String> = regs
            .iter()
            .map(|&(c, _)| soc.netlist.cell(c).attrs().group.clone())
            .collect();
        assert!(groups.iter().any(|g| g.starts_with("fetch.pc")));
        assert!(groups.iter().any(|g| g.starts_with("btb")));
    }

    #[test]
    fn functional_inputs_do_not_overlap_tied_inputs() {
        let soc = SocBuilder::small().build();
        let functional = soc.functional_inputs();
        for (net, _) in soc.mission_tied_inputs() {
            assert!(!functional.contains(&net));
        }
    }

    #[test]
    fn builder_overrides_apply() {
        let map = MemoryMap::date13_example();
        let soc = SocBuilder::small()
            .memory_map(map.clone())
            .core_config(CoreConfig {
                num_regs: 4,
                btb_entries: 2,
                include_cycle_counter: false,
            })
            .build();
        assert_eq!(soc.memory_map, map);
        assert!(soc.interface.cycle_counter.is_empty());
    }
}
