//! Instruction-set simulator (ISS) for the `mini32` core.
//!
//! The ISS is the architectural reference model: it executes programs one
//! instruction per cycle (exactly like the single-cycle gate-level core) and
//! records the bus transactions of every cycle. The recorded trace drives the
//! gate-level fault simulation of SBST programs and provides the expected
//! responses observed on the system bus.

use crate::isa::{DecodeError, Instr};
use crate::mem::Memory;
use serde::{Deserialize, Serialize};

/// The bus activity of one executed cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusCycle {
    /// Program counter of the executed instruction.
    pub pc: u32,
    /// The fetched instruction word.
    pub instruction: u32,
    /// Data address driven this cycle (0 when no data access).
    pub data_addr: u32,
    /// Data read from memory (for loads; 0 otherwise).
    pub read_data: u32,
    /// Data written to memory (for stores; 0 otherwise).
    pub write_data: u32,
    /// Whether the cycle performed a load.
    pub is_load: bool,
    /// Whether the cycle performed a store.
    pub is_store: bool,
}

/// Why the simulator stopped.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// A `halt` instruction was executed.
    Halted,
    /// The cycle budget ran out.
    MaxCycles,
    /// An instruction word could not be decoded.
    DecodeError(u32),
}

/// The result of running a program on the ISS.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Per-cycle bus activity, in execution order.
    pub cycles: Vec<BusCycle>,
    /// Why execution stopped.
    pub stop: StopReason,
    /// Final register file contents.
    pub registers: [u32; 32],
}

impl RunTrace {
    /// The store transactions of the run (address, value), in order — the
    /// test signature observed on the system bus.
    pub fn stores(&self) -> Vec<(u32, u32)> {
        self.cycles
            .iter()
            .filter(|c| c.is_store)
            .map(|c| (c.data_addr, c.write_data))
            .collect()
    }
}

/// The architectural state of the `mini32` processor.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Iss {
    /// General-purpose registers (r0 is hardwired to zero).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// The memory the processor executes from and operates on.
    pub memory: Memory,
    /// Whether a `halt` has been executed.
    pub halted: bool,
}

impl Iss {
    /// Creates a processor with zeroed registers and the given reset PC.
    pub fn new(memory: Memory, reset_pc: u32) -> Self {
        Iss {
            regs: [0; 32],
            pc: reset_pc,
            memory,
            halted: false,
        }
    }

    fn read_reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn write_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[r as usize] = value;
        }
    }

    /// Executes one instruction and returns its bus activity.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the fetched word is not a valid
    /// instruction.
    pub fn step(&mut self) -> Result<BusCycle, DecodeError> {
        let pc = self.pc;
        let word = self.memory.read_word(pc);
        let instr = Instr::decode(word)?;
        let mut cycle = BusCycle {
            pc,
            instruction: word,
            data_addr: 0,
            read_data: 0,
            write_data: 0,
            is_load: false,
            is_store: false,
        };
        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Instr::Nop => {}
            Instr::Add { rd, rs, rt } => {
                let v = self.read_reg(rs).wrapping_add(self.read_reg(rt));
                self.write_reg(rd, v);
            }
            Instr::Sub { rd, rs, rt } => {
                let v = self.read_reg(rs).wrapping_sub(self.read_reg(rt));
                self.write_reg(rd, v);
            }
            Instr::And { rd, rs, rt } => {
                let v = self.read_reg(rs) & self.read_reg(rt);
                self.write_reg(rd, v);
            }
            Instr::Or { rd, rs, rt } => {
                let v = self.read_reg(rs) | self.read_reg(rt);
                self.write_reg(rd, v);
            }
            Instr::Xor { rd, rs, rt } => {
                let v = self.read_reg(rs) ^ self.read_reg(rt);
                self.write_reg(rd, v);
            }
            Instr::Sltu { rd, rs, rt } => {
                let v = u32::from(self.read_reg(rs) < self.read_reg(rt));
                self.write_reg(rd, v);
            }
            Instr::Sll { rd, rt, shamt } => {
                let v = self.read_reg(rt) << (shamt & 0x1f);
                self.write_reg(rd, v);
            }
            Instr::Srl { rd, rt, shamt } => {
                let v = self.read_reg(rt) >> (shamt & 0x1f);
                self.write_reg(rd, v);
            }
            Instr::Addi { rt, rs, imm } => {
                let v = self.read_reg(rs).wrapping_add(imm as i32 as u32);
                self.write_reg(rt, v);
            }
            Instr::Andi { rt, rs, imm } => {
                let v = self.read_reg(rs) & imm as u32;
                self.write_reg(rt, v);
            }
            Instr::Ori { rt, rs, imm } => {
                let v = self.read_reg(rs) | imm as u32;
                self.write_reg(rt, v);
            }
            Instr::Xori { rt, rs, imm } => {
                let v = self.read_reg(rs) ^ imm as u32;
                self.write_reg(rt, v);
            }
            Instr::Lui { rt, imm } => {
                self.write_reg(rt, (imm as u32) << 16);
            }
            Instr::Lw { rt, rs, imm } => {
                let addr = self.read_reg(rs).wrapping_add(imm as i32 as u32) & !3;
                let value = self.memory.read_word(addr);
                self.write_reg(rt, value);
                cycle.data_addr = addr;
                cycle.read_data = value;
                cycle.is_load = true;
            }
            Instr::Sw { rt, rs, imm } => {
                let addr = self.read_reg(rs).wrapping_add(imm as i32 as u32) & !3;
                let value = self.read_reg(rt);
                self.memory.write_word(addr, value);
                cycle.data_addr = addr;
                cycle.write_data = value;
                cycle.is_store = true;
            }
            Instr::Beq { rs, rt, imm } => {
                if self.read_reg(rs) == self.read_reg(rt) {
                    next_pc = pc.wrapping_add(4).wrapping_add((imm as i32 as u32) << 2);
                }
            }
            Instr::Bne { rs, rt, imm } => {
                if self.read_reg(rs) != self.read_reg(rt) {
                    next_pc = pc.wrapping_add(4).wrapping_add((imm as i32 as u32) << 2);
                }
            }
            Instr::J { target } => {
                next_pc = (pc.wrapping_add(4) & 0xf000_0000) | (target << 2);
            }
            Instr::Jal { target } => {
                self.write_reg(31, pc.wrapping_add(4));
                next_pc = (pc.wrapping_add(4) & 0xf000_0000) | (target << 2);
            }
            Instr::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }
        self.pc = next_pc;
        Ok(cycle)
    }

    /// Runs until `halt`, a decode error, or `max_cycles` cycles.
    pub fn run(&mut self, max_cycles: usize) -> RunTrace {
        let mut cycles = Vec::new();
        let mut stop = StopReason::MaxCycles;
        for _ in 0..max_cycles {
            if self.halted {
                stop = StopReason::Halted;
                break;
            }
            match self.step() {
                Ok(cycle) => cycles.push(cycle),
                Err(e) => {
                    stop = StopReason::DecodeError(e.word);
                    break;
                }
            }
            if self.halted {
                stop = StopReason::Halted;
            }
        }
        RunTrace {
            cycles,
            stop,
            registers: self.regs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn run_program(program: &[Instr], max: usize) -> (Iss, RunTrace) {
        let mut mem = Memory::new();
        mem.load_words(0, &Instr::assemble(program));
        let mut iss = Iss::new(mem, 0);
        let trace = iss.run(max);
        (iss, trace)
    }

    #[test]
    fn arithmetic_and_logic() {
        let program = vec![
            Instr::Addi {
                rt: 1,
                rs: 0,
                imm: 10,
            },
            Instr::Addi {
                rt: 2,
                rs: 0,
                imm: -3,
            },
            Instr::Add {
                rd: 3,
                rs: 1,
                rt: 2,
            },
            Instr::Sub {
                rd: 4,
                rs: 1,
                rt: 2,
            },
            Instr::And {
                rd: 5,
                rs: 1,
                rt: 2,
            },
            Instr::Or {
                rd: 6,
                rs: 1,
                rt: 2,
            },
            Instr::Xor {
                rd: 7,
                rs: 1,
                rt: 2,
            },
            Instr::Sltu {
                rd: 8,
                rs: 1,
                rt: 2,
            },
            Instr::Sll {
                rd: 9,
                rt: 1,
                shamt: 4,
            },
            Instr::Srl {
                rd: 10,
                rt: 2,
                shamt: 1,
            },
            Instr::Halt,
        ];
        let (iss, trace) = run_program(&program, 100);
        assert_eq!(trace.stop, StopReason::Halted);
        assert_eq!(iss.regs[1], 10);
        assert_eq!(iss.regs[2], (-3i32) as u32);
        assert_eq!(iss.regs[3], 7);
        assert_eq!(iss.regs[4], 13);
        assert_eq!(iss.regs[5], 10 & (-3i32) as u32);
        assert_eq!(iss.regs[6], 10 | (-3i32) as u32);
        assert_eq!(iss.regs[7], 10 ^ (-3i32) as u32);
        assert_eq!(iss.regs[8], 1, "10 < 0xfffffffd unsigned");
        assert_eq!(iss.regs[9], 160);
        assert_eq!(iss.regs[10], ((-3i32) as u32) >> 1);
    }

    #[test]
    fn r0_is_hardwired_to_zero() {
        let program = vec![
            Instr::Addi {
                rt: 0,
                rs: 0,
                imm: 123,
            },
            Instr::Add {
                rd: 1,
                rs: 0,
                rt: 0,
            },
            Instr::Halt,
        ];
        let (iss, _) = run_program(&program, 10);
        assert_eq!(iss.regs[0], 0);
        assert_eq!(iss.regs[1], 0);
    }

    #[test]
    fn loads_and_stores_trace_the_bus() {
        let program = vec![
            Instr::Lui { rt: 1, imm: 0x4000 }, // r1 = 0x4000_0000
            Instr::Addi {
                rt: 2,
                rs: 0,
                imm: 77,
            },
            Instr::Sw {
                rt: 2,
                rs: 1,
                imm: 8,
            },
            Instr::Lw {
                rt: 3,
                rs: 1,
                imm: 8,
            },
            Instr::Sw {
                rt: 3,
                rs: 1,
                imm: 12,
            },
            Instr::Halt,
        ];
        let (iss, trace) = run_program(&program, 20);
        assert_eq!(iss.regs[3], 77);
        assert_eq!(iss.memory.read_word(0x4000_0008), 77);
        let stores = trace.stores();
        assert_eq!(stores, vec![(0x4000_0008, 77), (0x4000_000c, 77)]);
        let load_cycle = trace.cycles.iter().find(|c| c.is_load).unwrap();
        assert_eq!(load_cycle.read_data, 77);
        assert_eq!(load_cycle.data_addr, 0x4000_0008);
    }

    #[test]
    fn branches_and_jumps() {
        // A loop that counts down from 3 and then stores a marker.
        let program = vec![
            Instr::Addi {
                rt: 1,
                rs: 0,
                imm: 3,
            }, // 0: r1 = 3
            Instr::Addi {
                rt: 2,
                rs: 0,
                imm: 0,
            }, // 4: r2 = 0
            Instr::Addi {
                rt: 2,
                rs: 2,
                imm: 1,
            }, // 8: loop: r2 += 1
            Instr::Addi {
                rt: 1,
                rs: 1,
                imm: -1,
            }, // 12: r1 -= 1
            Instr::Bne {
                rs: 1,
                rt: 0,
                imm: -3,
            }, // 16: if r1 != 0 goto 8
            Instr::Sw {
                rt: 2,
                rs: 0,
                imm: 0x100,
            }, // 20: mem[0x100] = r2
            Instr::Halt, // 24
        ];
        let (iss, trace) = run_program(&program, 100);
        assert_eq!(trace.stop, StopReason::Halted);
        assert_eq!(iss.memory.read_word(0x100), 3);
        assert_eq!(iss.regs[2], 3);
    }

    #[test]
    fn jal_links_and_jumps() {
        let program = vec![
            Instr::Jal { target: 3 }, // 0: call 12
            Instr::Halt,              // 4 (return lands here)
            Instr::Nop,               // 8
            Instr::Addi {
                rt: 5,
                rs: 0,
                imm: 99,
            }, // 12: subroutine
            Instr::Jal { target: 1 }, // 16: jump back to 4 (link clobbered, fine)
        ];
        let (iss, trace) = run_program(&program, 20);
        assert_eq!(trace.stop, StopReason::Halted);
        assert_eq!(iss.regs[5], 99);
        // First JAL stored the return address 4.
        assert_eq!(trace.cycles[1].pc, 12);
    }

    #[test]
    fn decode_error_stops_the_run() {
        let mut mem = Memory::new();
        // Opcode 0x3a is not part of the ISA.
        mem.write_word(0, 0x3a << 26);
        let mut iss = Iss::new(mem, 0);
        let trace = iss.run(10);
        assert_eq!(trace.stop, StopReason::DecodeError(0x3a << 26));
        assert!(trace.cycles.is_empty());
    }

    #[test]
    fn max_cycles_stops_the_run() {
        let program = vec![Instr::J { target: 0 }];
        let (_, trace) = run_program(&program, 25);
        assert_eq!(trace.stop, StopReason::MaxCycles);
        assert_eq!(trace.cycles.len(), 25);
    }

    #[test]
    fn halted_processor_keeps_pc() {
        let program = vec![Instr::Halt];
        let (iss, _) = run_program(&program, 5);
        assert_eq!(iss.pc, 0);
        assert!(iss.halted);
    }
}
