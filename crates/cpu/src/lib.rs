//! The `mini32` embedded processor and SoC generator — the workspace's
//! substitute for the industrial automotive SoC (e200z0-based) of the paper's
//! case study.
//!
//! The crate provides:
//!
//! * the **ISA** ([`isa`]) and an **instruction-set simulator** ([`iss`]) used
//!   as the architectural reference model;
//! * **memory models** ([`mem`]): the sparse ISS memory and the SoC
//!   [`mem::MemoryMap`] with the address-bit analysis of §3.3;
//! * gate-level **datapath generators** ([`rtl`]) and the assembled
//!   single-cycle core ([`core_gen`]);
//! * the **SoC builder** ([`soc`]) that adds full scan, a Nexus-style debug
//!   unit, a JTAG port and a BIST block on top of the core;
//! * an **SBST program library** ([`sbst`]) with stimulus extraction for
//!   gate-level fault grading.
//!
//! # Examples
//!
//! ```
//! use cpu::soc::SocBuilder;
//!
//! let soc = SocBuilder::small().build();
//! assert!(netlist::stats::stats(&soc.netlist).stuck_at_faults() > 10_000);
//! assert!(!soc.mission_tied_inputs().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod core_gen;
pub mod isa;
pub mod iss;
pub mod mem;
pub mod rtl;
pub mod sbst;
pub mod soc;

pub use core_gen::{generate_core, CoreConfig, CoreInterface};
pub use isa::Instr;
pub use iss::Iss;
pub use mem::{MemRegion, Memory, MemoryMap, RegionKind};
pub use sbst::{standard_suite, SbstProgram};
pub use soc::{Soc, SocBuilder, SocConfig};
