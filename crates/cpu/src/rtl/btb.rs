//! Branch target buffer generator: a small direct-mapped prediction memory
//! holding branch addresses — the "prediction unit" §3.3 lists among the
//! modules whose registers freeze under a restricted memory map.

use netlist::{NetId, NetlistBuilder, Word};

/// The nets of a generated branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    /// Prediction hit for the currently fetched PC.
    pub hit: NetId,
    /// The predicted target of the indexed entry.
    pub predicted_target: Word,
    /// The tag registers of every entry (high PC bits).
    pub tag_registers: Vec<Word>,
    /// The target registers of every entry (full target addresses).
    pub target_registers: Vec<Word>,
    /// The valid bits of every entry.
    pub valid_bits: Vec<NetId>,
}

/// Generates a direct-mapped BTB with `entries` entries (must be a power of
/// two, at least 2).
///
/// * `pc`: the fetch PC.
/// * `update`: strobe asserted when a taken branch/jump commits.
/// * `update_target`: the resolved target address to store.
///
/// Entries are indexed by `pc[2 .. 2+log2(entries)]`; the tag is the rest of
/// the word-aligned PC. Cells are tagged with the `btb` group and every tag /
/// target flip-flop carries its address-bit attribute so that the memory-map
/// rule can find the frozen bits.
pub fn generate_btb(
    builder: &mut NetlistBuilder,
    clock: NetId,
    pc: &[NetId],
    update: NetId,
    update_target: &[NetId],
    entries: usize,
) -> Btb {
    assert!(
        entries.is_power_of_two() && entries >= 2,
        "entries must be a power of two >= 2"
    );
    assert_eq!(pc.len(), 32);
    assert_eq!(update_target.len(), 32);

    builder.push_group("btb");

    let index_bits = entries.trailing_zeros() as usize;
    let index: Word = pc[2..2 + index_bits].to_vec();
    let tag: Word = pc[2 + index_bits..].to_vec();
    let tag_width = tag.len();

    let entry_select = builder.decoder(&index);

    let mut tag_registers = Vec::with_capacity(entries);
    let mut target_registers = Vec::with_capacity(entries);
    let mut valid_bits = Vec::with_capacity(entries);
    let mut entry_hits = Vec::with_capacity(entries);

    for (entry, &select) in entry_select.iter().enumerate() {
        let write = builder.and2(update, select);
        // Valid bit: sticky once set.
        let valid_q = {
            let d = builder.netlist_mut().add_net(format!("btb_valid_d{entry}"));
            let q = builder.dff(d, clock);
            let set = builder.or2(q, write);
            let name = format!("u_btb_valid_buf{entry}");
            builder
                .netlist_mut()
                .add_cell(netlist::CellKind::Buf, name, &[set], Some(d));
            q
        };
        let tag_q = builder.register_en(&tag, write, clock);
        let target_q = builder.register_en(update_target, write, clock);

        // Attach address-bit attributes: tag bit i stores PC bit 2+index_bits+i,
        // target bit i stores target-address bit i.
        for (i, &q) in tag_q.iter().enumerate() {
            if let Some(ff) = builder.netlist().driver_of(q) {
                builder
                    .netlist_mut()
                    .set_address_bit(ff, (2 + index_bits + i) as u32);
            }
        }
        for (i, &q) in target_q.iter().enumerate() {
            if let Some(ff) = builder.netlist().driver_of(q) {
                builder.netlist_mut().set_address_bit(ff, i as u32);
            }
        }

        let tag_match = builder.eq_words(&tag_q, &tag);
        let hit = builder.and2(valid_q, tag_match);
        let gated_hit = builder.and2(hit, select);
        entry_hits.push(gated_hit);

        tag_registers.push(tag_q);
        target_registers.push(target_q);
        valid_bits.push(valid_q);
    }
    let _ = tag_width;

    let hit = builder.or(&entry_hits);
    let predicted_target = builder.mux_tree(&target_registers, &index);

    builder.pop_group();

    Btb {
        hit,
        predicted_target,
        tag_registers,
        target_registers,
        valid_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{Logic, SeqSim};
    use netlist::Netlist;
    use std::collections::HashMap;

    struct Harness {
        netlist: Netlist,
        clock: NetId,
        pc: Word,
        update: NetId,
        target: Word,
        btb: Btb,
    }

    fn build(entries: usize) -> Harness {
        let mut b = NetlistBuilder::new("btb");
        let clock = b.input("ck");
        let pc = b.input_bus("pc", 32);
        let update = b.input("update");
        let target = b.input_bus("target", 32);
        let btb = generate_btb(&mut b, clock, &pc, update, &target, entries);
        b.output("hit", btb.hit);
        b.output_bus("pred", &btb.predicted_target);
        Harness {
            netlist: b.finish(),
            clock,
            pc,
            update,
            target,
            btb,
        }
    }

    fn step(
        h: &Harness,
        sim: &SeqSim,
        state: &mut Vec<Logic>,
        pc: u32,
        update: bool,
        target: u32,
    ) -> Vec<Logic> {
        let mut v = HashMap::new();
        v.insert(h.clock, Logic::One);
        v.insert(h.update, Logic::from_bool(update));
        for (i, &net) in h.pc.iter().enumerate() {
            v.insert(net, Logic::from_bool((pc >> i) & 1 == 1));
        }
        for (i, &net) in h.target.iter().enumerate() {
            v.insert(net, Logic::from_bool((target >> i) & 1 == 1));
        }
        sim.step(state, &v, &HashMap::new(), None)
    }

    fn word_value(values: &[Logic], word: &[NetId]) -> u32 {
        word.iter()
            .enumerate()
            .map(|(i, &net)| (values[net.index()].to_bool().unwrap_or(false) as u32) << i)
            .sum()
    }

    #[test]
    fn miss_then_hit_after_update() {
        let h = build(4);
        let sim = SeqSim::new(&h.netlist).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        let pc = 0x0000_0104;
        // Initially a miss.
        let values = step(&h, &sim, &mut state, pc, false, 0);
        assert_eq!(values[h.btb.hit.index()], Logic::Zero);
        // Record a taken branch at this PC towards 0x200.
        step(&h, &sim, &mut state, pc, true, 0x200);
        // Now the same PC hits and predicts 0x200.
        let values = step(&h, &sim, &mut state, pc, false, 0);
        assert_eq!(values[h.btb.hit.index()], Logic::One);
        assert_eq!(word_value(&values, &h.btb.predicted_target), 0x200);
        // A different PC mapping to the same entry with a different tag misses.
        let values = step(&h, &sim, &mut state, pc + 0x1000, false, 0);
        assert_eq!(values[h.btb.hit.index()], Logic::Zero);
        // A different entry (different index bits) also misses.
        let values = step(&h, &sim, &mut state, pc + 4, false, 0);
        assert_eq!(values[h.btb.hit.index()], Logic::Zero);
    }

    #[test]
    fn entries_are_independent() {
        let h = build(4);
        let sim = SeqSim::new(&h.netlist).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        step(&h, &sim, &mut state, 0x100, true, 0xAAA0);
        step(&h, &sim, &mut state, 0x104, true, 0xBBB0);
        let values = step(&h, &sim, &mut state, 0x100, false, 0);
        assert_eq!(word_value(&values, &h.btb.predicted_target), 0xAAA0);
        let values = step(&h, &sim, &mut state, 0x104, false, 0);
        assert_eq!(word_value(&values, &h.btb.predicted_target), 0xBBB0);
    }

    #[test]
    fn address_bit_attributes_are_attached() {
        let h = build(2);
        let mut tagged = 0;
        for ff in h.netlist.sequential_cells() {
            if h.netlist.cell(ff).attrs().address_bit.is_some() {
                tagged += 1;
                assert!(h.netlist.cell(ff).attrs().in_group("btb"));
            }
        }
        // 2 entries x (29 tag bits + 32 target bits).
        assert_eq!(tagged, 2 * (29 + 32));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_rejected() {
        build(3);
    }
}
